"""Ontology-backed inference materialization over a triple store.

The join between the database substrate and the DL reasoner: instance
data lives as triples (``(herbie, type, car)`` plus role triples like
``(herbie, uses, fuel1)``), the terminology lives in a TBox, and
materialization writes every entailed ``type`` triple back into a copy of
the store, so that plain pattern queries afterwards see the inferred
facts.

By default materialization is *hierarchy-aware*: the TBox is classified
once (via the reasoner's cached :meth:`repro.dl.Reasoner.classify`
service) and each individual is tableau-checked only against candidate
concepts in a children-first walk down the classified hierarchy.  Told
types and their ancestors are derived by closing upward over
:meth:`ConceptHierarchy.ancestors` with no tableau call at all, a
negative answer prunes the candidate's whole subtree, and one check per
equivalence *group* covers every name in it.  The avoided tableau work
shows up as ``materialize.pruned_checks``; ``use_hierarchy=False`` keeps
the original exhaustive (individual × concept) loop as an oracle.

This is also where the paper's pragmatic warning (§4) becomes concrete:
whatever the TBox's taxonomy got wrong is now *in the data*, returned by
every query, with no trace of having been an inference.
"""

from __future__ import annotations

from ..obs import recorder as _obs
from ..dl import (
    ABox,
    Atomic,
    BOTTOM_NAME,
    Concept,
    ConceptAssertion,
    ConceptHierarchy,
    Reasoner,
    Role,
    RoleAssertion,
    TBox,
    TOP_NAME,
)
from .triples import TripleStore


class MaterializeError(Exception):
    """Raised when the store cannot be read as an ABox."""


def store_to_abox(
    store: TripleStore,
    tbox: TBox,
    *,
    type_predicate: str = "type",
) -> ABox:
    """Read a triple store as a DL ABox.

    ``(s, type, C)`` becomes a concept assertion when ``C`` names an
    atomic concept of the TBox; every other predicate that the TBox
    mentions as a role becomes a role assertion; the rest of the triples
    are ignored (they are plain data, not terminology-relevant).
    """
    concept_names = tbox.atomic_names()
    role_names = tbox.role_names()
    assertions: list = []
    for triple in store:
        s, p, o = triple
        if p == type_predicate:
            if not isinstance(o, str):
                raise MaterializeError(f"type object {o!r} is not a concept name")
            if o in concept_names:
                assertions.append(ConceptAssertion(str(s), Atomic(o)))
        elif isinstance(p, str) and p in role_names:
            assertions.append(RoleAssertion(str(s), str(o), Role(p)))
    return ABox(assertions)


def materialize(
    store: TripleStore,
    tbox: TBox,
    *,
    type_predicate: str = "type",
    reasoner: Reasoner | None = None,
    hierarchy: ConceptHierarchy | None = None,
    use_hierarchy: bool = True,
) -> TripleStore:
    """A copy of ``store`` with all entailed ``type`` triples added.

    With ``use_hierarchy=True`` (the default) the classified hierarchy
    prunes the instance checks; ``use_hierarchy=False`` runs one tableau
    instance check per (individual × concept) pair.  Both strategies
    produce the same store.  A pre-built ``hierarchy`` may be supplied to
    skip classification entirely.
    """
    reasoner = reasoner or Reasoner(tbox)
    abox = store_to_abox(store, tbox, type_predicate=type_predicate)
    out = store.copy()
    if not abox.individuals():
        return out
    if not reasoner.is_consistent(abox):
        raise MaterializeError(
            "the store is inconsistent with the TBox; refusing to materialize"
        )
    _obs.incr("materialize.runs")
    with _obs.trace("materialize.run"):
        if use_hierarchy:
            if hierarchy is None:
                hierarchy = reasoner.classify()
            _materialize_with_hierarchy(
                out, abox, hierarchy, reasoner, type_predicate
            )
        else:
            _materialize_exhaustive(out, abox, tbox, reasoner, type_predicate)
    return out


def _add_type(
    out: TripleStore, individual: str, name: str, type_predicate: str
) -> None:
    if (individual, type_predicate, name) in out:
        return  # told fact keeps its own (lack of) provenance
    _obs.incr("materialize.facts_added")
    out.add(individual, type_predicate, name, provenance="inferred")


def _materialize_exhaustive(
    out: TripleStore,
    abox: ABox,
    tbox: TBox,
    reasoner: Reasoner,
    type_predicate: str,
) -> None:
    """The original brute-force loop: every (individual, name) pair."""
    names = sorted(tbox.atomic_names())
    for individual in sorted(abox.individuals()):
        for name in names:
            _obs.incr("materialize.instance_checks")
            if reasoner.is_instance(abox, individual, Atomic(name)):
                _add_type(out, individual, name, type_predicate)


def _materialize_with_hierarchy(
    out: TripleStore,
    abox: ABox,
    hierarchy: ConceptHierarchy,
    reasoner: Reasoner,
    type_predicate: str,
) -> None:
    """Candidate-driven materialization over the classified hierarchy."""
    # children map of the hierarchy's Hasse diagram, computed once
    kids: dict[str, set[str]] = {}
    for low, high in hierarchy.poset.covers():
        kids.setdefault(high, set()).add(low)
    live_reps = [
        rep
        for rep in hierarchy.poset.elements
        if rep not in (TOP_NAME, BOTTOM_NAME)
    ]
    top_names = sorted(hierarchy.top_equivalents())

    told_types: dict[str, set[str]] = {}
    for assertion in abox.concept_assertions():
        if isinstance(assertion.concept, Atomic):
            told_types.setdefault(assertion.individual, set()).add(
                assertion.concept.name
            )

    for individual in sorted(abox.individuals()):
        # told types and their ancestors hold without any tableau call
        decided: dict[str, bool] = {}
        for name in told_types.get(individual, ()):
            rep = hierarchy.group_of.get(name)
            if rep is None or rep in (TOP_NAME, BOTTOM_NAME):
                continue
            decided[rep] = True
            for ancestor in hierarchy.ancestors(rep):
                if ancestor not in (TOP_NAME, BOTTOM_NAME):
                    decided[ancestor] = True

        checks = 0

        def is_instance(rep: str) -> bool:
            nonlocal checks
            known = decided.get(rep)
            if known is not None:
                return known
            checks += 1
            _obs.incr("materialize.instance_checks")
            decided[rep] = reasoner.is_instance(abox, individual, Atomic(rep))
            return decided[rep]

        # children-first walk: a negative answer prunes the whole subtree
        visited: set[str] = set()

        def walk(rep: str) -> None:
            for child in sorted(kids.get(rep, ())):
                if child == BOTTOM_NAME or child in visited:
                    continue
                visited.add(child)
                if is_instance(child):
                    walk(child)

        walk(TOP_NAME)
        _obs.incr("materialize.pruned_checks", len(live_reps) - checks)

        entailed = sorted(
            name
            for rep, positive in decided.items()
            if positive
            for name in hierarchy.equivalents(rep)
        )
        for name in entailed:
            _add_type(out, individual, name, type_predicate)
        for name in top_names:  # ⊤-equivalent names hold of everyone
            _add_type(out, individual, name, type_predicate)


def instances_of(
    store: TripleStore,
    tbox: TBox,
    concept: Concept,
    *,
    type_predicate: str = "type",
    reasoner: Reasoner | None = None,
) -> list[str]:
    """Certain answers: individuals entailed to be instances of ``concept``.

    Unlike :func:`materialize` this answers one (possibly complex)
    concept query directly, without writing anything back.
    """
    reasoner = reasoner or Reasoner(tbox)
    abox = store_to_abox(store, tbox, type_predicate=type_predicate)
    if not abox.individuals():
        return []
    if not reasoner.is_consistent(abox):
        raise MaterializeError("the store is inconsistent with the TBox")
    return reasoner.retrieve(abox, concept)
