"""Ontology-backed inference materialization over a triple store.

The join between the database substrate and the DL reasoner: instance
data lives as triples (``(herbie, type, car)`` plus role triples like
``(herbie, uses, fuel1)``), the terminology lives in a TBox, and
materialization writes every entailed ``type`` triple back into a copy of
the store, so that plain pattern queries afterwards see the inferred
facts.

By default materialization is *hierarchy-aware*: the TBox is classified
once (via the reasoner's cached :meth:`repro.dl.Reasoner.classify`
service) and each individual is tableau-checked only against candidate
concepts in a children-first walk down the classified hierarchy.  Told
types and their ancestors are derived by closing upward over
:meth:`ConceptHierarchy.ancestors` with no tableau call at all, a
negative answer prunes the candidate's whole subtree, and one check per
equivalence *group* covers every name in it.  The avoided tableau work
shows up as ``materialize.pruned_checks``; ``use_hierarchy=False`` keeps
the original exhaustive (individual × concept) loop as an oracle.

This is also where the paper's pragmatic warning (§4) becomes concrete:
whatever the TBox's taxonomy got wrong is now *in the data*, returned by
every query, with no trace of having been an inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import recorder as _obs
from ..robust import Budget, PROVED, Verdict, retry_with_escalation
from ..dl import (
    ABox,
    Atomic,
    BOTTOM_NAME,
    Concept,
    ConceptAssertion,
    ConceptHierarchy,
    Reasoner,
    Role,
    RoleAssertion,
    TBox,
    TOP_NAME,
)
from .triples import TripleStore


class MaterializeError(Exception):
    """Raised when the store cannot be read as an ABox."""


@dataclass
class MaterializeReport:
    """The outcome of :func:`materialize_governed`.

    ``store`` always holds a usable result: every told fact plus every
    inferred type that was *proved* within budget.  ``skipped`` maps each
    individual whose instance checks exhausted their budget to the
    exhaustion reason; ``hierarchy_incomplete`` carries the classified
    hierarchy's unresolved edges; ``consistency`` is the verdict of the
    up-front KB consistency check.
    """

    store: TripleStore
    consistency: Verdict
    skipped: dict[str, str] = field(default_factory=dict)
    hierarchy_incomplete: frozenset[tuple[str, str]] = frozenset()

    @property
    def complete(self) -> bool:
        """True iff nothing was skipped and every check was definite."""
        return (
            self.consistency.is_definite
            and not self.skipped
            and not self.hierarchy_incomplete
        )


def store_to_abox(
    store: TripleStore,
    tbox: TBox,
    *,
    type_predicate: str = "type",
) -> ABox:
    """Read a triple store as a DL ABox.

    ``(s, type, C)`` becomes a concept assertion when ``C`` names an
    atomic concept of the TBox; every other predicate that the TBox
    mentions as a role becomes a role assertion; the rest of the triples
    are ignored (they are plain data, not terminology-relevant).
    """
    concept_names = tbox.atomic_names()
    role_names = tbox.role_names()
    assertions: list = []
    for triple in store:
        s, p, o = triple
        if p == type_predicate:
            if not isinstance(o, str):
                raise MaterializeError(f"type object {o!r} is not a concept name")
            if o in concept_names:
                assertions.append(ConceptAssertion(str(s), Atomic(o)))
        elif isinstance(p, str) and p in role_names:
            assertions.append(RoleAssertion(str(s), str(o), Role(p)))
    return ABox(assertions)


def store_to_backend(
    store: TripleStore,
    backend,
    tbox: TBox,
    *,
    type_predicate: str = "type",
) -> int:
    """Load a triple store's terminology-relevant slice into an
    instance backend (:class:`repro.instdb.InstanceBackend`).

    The same reading discipline as :func:`store_to_abox` — ``(s, type,
    C)`` rows whose object names an atomic concept become told type
    assertions, predicates the TBox mentions as roles become role
    assertions, everything else is ignored — but written straight into
    the backend's indexed tables (one transaction) instead of a Python
    assertion list, so it scales to stores no ABox should hold.
    Returns the number of assertions loaded.
    """
    concept_names = tbox.atomic_names()
    role_names = tbox.role_names()
    count = 0
    with backend.transaction():
        for triple in store:
            s, p, o = triple
            if p == type_predicate:
                if not isinstance(o, str):
                    raise MaterializeError(
                        f"type object {o!r} is not a concept name"
                    )
                if o in concept_names:
                    backend.assert_type(str(s), o)
                    count += 1
            elif isinstance(p, str) and p in role_names:
                backend.assert_role(str(s), p, str(o))
                count += 1
    return count


def materialize(
    store: TripleStore,
    tbox: TBox,
    *,
    type_predicate: str = "type",
    reasoner: Reasoner | None = None,
    hierarchy: ConceptHierarchy | None = None,
    use_hierarchy: bool = True,
) -> TripleStore:
    """A copy of ``store`` with all entailed ``type`` triples added.

    With ``use_hierarchy=True`` (the default) the classified hierarchy
    prunes the instance checks; ``use_hierarchy=False`` runs one tableau
    instance check per (individual × concept) pair.  Both strategies
    produce the same store.  A pre-built ``hierarchy`` may be supplied to
    skip classification entirely.
    """
    reasoner = reasoner or Reasoner(tbox)
    abox = store_to_abox(store, tbox, type_predicate=type_predicate)
    out = store.copy()
    if not abox.individuals():
        return out
    if not reasoner.is_consistent(abox):
        raise MaterializeError(
            "the store is inconsistent with the TBox; refusing to materialize"
            f" ({_describe_inconsistency(reasoner, abox)})"
        )
    _obs.incr("materialize.runs")
    with _obs.trace("materialize.run"):
        if use_hierarchy:
            if hierarchy is None:
                hierarchy = reasoner.classify()
            _materialize_with_hierarchy(
                out, abox, hierarchy, reasoner, type_predicate
            )
        else:
            _materialize_exhaustive(out, abox, tbox, reasoner, type_predicate)
    return out


def _describe_inconsistency(
    reasoner: Reasoner, abox: ABox, *, probe_cap: int = 20
) -> str:
    """Name at least one individual implicated in an ABox inconsistency.

    Two bounded probes (at most ``probe_cap`` individuals each): first
    look for an individual whose own assertions are inconsistent in
    isolation; failing that, one whose removal restores consistency.
    Both are heuristics — a minimal conflict can span individuals in ways
    neither probe isolates — so the fallback names nothing rather than
    guessing wrong.
    """
    individuals = sorted(abox.individuals())[:probe_cap]
    for individual in individuals:
        own = [
            a
            for a in abox
            if (isinstance(a, ConceptAssertion) and a.individual == individual)
            or (isinstance(a, RoleAssertion) and individual in (a.subject, a.object))
        ]
        if not reasoner.is_consistent(ABox(own)):
            shown = ", ".join(str(a) for a in own if isinstance(a, ConceptAssertion))
            return (
                f"individual {individual!r} is unsatisfiable on its own"
                + (f": {shown}" if shown else "")
            )
    for individual in individuals:
        rest = [
            a
            for a in abox
            if not (
                (isinstance(a, ConceptAssertion) and a.individual == individual)
                or (isinstance(a, RoleAssertion) and individual in (a.subject, a.object))
            )
        ]
        if reasoner.is_consistent(ABox(rest)):
            return (
                f"assertions about individual {individual!r} conflict with "
                "the rest of the store"
            )
    return "no single-individual witness found within the probe cap"


def _add_type(
    out: TripleStore, individual: str, name: str, type_predicate: str
) -> None:
    if (individual, type_predicate, name) in out:
        return  # told fact keeps its own (lack of) provenance
    _obs.incr("materialize.facts_added")
    out.add(individual, type_predicate, name, provenance="inferred")


def _materialize_exhaustive(
    out: TripleStore,
    abox: ABox,
    tbox: TBox,
    reasoner: Reasoner,
    type_predicate: str,
) -> None:
    """The original brute-force loop: every (individual, name) pair."""
    names = sorted(tbox.atomic_names())
    for individual in sorted(abox.individuals()):
        for name in names:
            _obs.incr("materialize.instance_checks")
            if reasoner.is_instance(abox, individual, Atomic(name)):
                _add_type(out, individual, name, type_predicate)


class _IndividualSkipped(Exception):
    """Internal: this individual's instance checks exhausted their budget."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _materialize_with_hierarchy(
    out: TripleStore,
    abox: ABox,
    hierarchy: ConceptHierarchy,
    reasoner: Reasoner,
    type_predicate: str,
    *,
    budget: Budget | None = None,
    skipped: dict[str, str] | None = None,
) -> None:
    """Candidate-driven materialization over the classified hierarchy.

    With a ``budget``, instance checks run governed: an UNKNOWN verdict
    abandons the *individual* (its remaining candidate walk), records it
    in ``skipped``, and moves on — everything already proved for it (told
    types, their free ancestor closure, earlier positive checks) is still
    written, so the run never loses sound work.
    """
    # children map of the hierarchy's Hasse diagram, computed once
    kids: dict[str, set[str]] = {}
    for low, high in hierarchy.poset.covers():
        kids.setdefault(high, set()).add(low)
    live_reps = [
        rep
        for rep in hierarchy.poset.elements
        if rep not in (TOP_NAME, BOTTOM_NAME)
    ]
    top_names = sorted(hierarchy.top_equivalents())

    told_types: dict[str, set[str]] = {}
    for assertion in abox.concept_assertions():
        if isinstance(assertion.concept, Atomic):
            told_types.setdefault(assertion.individual, set()).add(
                assertion.concept.name
            )

    for individual in sorted(abox.individuals()):
        # told types and their ancestors hold without any tableau call
        decided: dict[str, bool] = {}
        for name in told_types.get(individual, ()):
            rep = hierarchy.group_of.get(name)
            if rep is None or rep in (TOP_NAME, BOTTOM_NAME):
                continue
            decided[rep] = True
            for ancestor in hierarchy.ancestors(rep):
                if ancestor not in (TOP_NAME, BOTTOM_NAME):
                    decided[ancestor] = True

        checks = 0

        def is_instance(rep: str) -> bool:
            nonlocal checks
            known = decided.get(rep)
            if known is not None:
                return known
            checks += 1
            _obs.incr("materialize.instance_checks")
            if budget is None:
                decided[rep] = reasoner.is_instance(abox, individual, Atomic(rep))
            else:
                verdict = reasoner.is_instance_governed(
                    abox, individual, Atomic(rep), budget.child()
                )
                if verdict.is_unknown:
                    raise _IndividualSkipped(f"{rep}: {verdict.reason}")
                decided[rep] = verdict.as_bool()
            return decided[rep]

        # children-first walk: a negative answer prunes the whole subtree
        visited: set[str] = set()

        def walk(rep: str) -> None:
            for child in sorted(kids.get(rep, ())):
                if child == BOTTOM_NAME or child in visited:
                    continue
                visited.add(child)
                if is_instance(child):
                    walk(child)

        try:
            walk(TOP_NAME)
        except _IndividualSkipped as skip:
            _obs.incr("materialize.skipped_individuals")
            assert skipped is not None  # only raised when a budget is set
            skipped[individual] = skip.reason
        _obs.incr("materialize.pruned_checks", len(live_reps) - checks)

        entailed = sorted(
            name
            for rep, positive in decided.items()
            if positive
            for name in hierarchy.equivalents(rep)
        )
        for name in entailed:
            _add_type(out, individual, name, type_predicate)
        for name in top_names:  # ⊤-equivalent names hold of everyone
            _add_type(out, individual, name, type_predicate)


def materialize_governed(
    store: TripleStore,
    tbox: TBox,
    *,
    budget: Budget,
    type_predicate: str = "type",
    reasoner: Reasoner | None = None,
    hierarchy: ConceptHierarchy | None = None,
) -> MaterializeReport:
    """Budget-governed materialization that never loses the whole run.

    The anytime counterpart of :func:`materialize`:

    * the up-front KB consistency check runs governed and, because every
      later instance check depends on it, is automatically retried with
      escalated budgets; if it still comes back UNKNOWN, the report says
      so and the told store is returned untouched;
    * a *provably* inconsistent store still raises
      :class:`MaterializeError` (with a named witness) — that is a data
      defect, not a resource problem;
    * classification runs under the same budget, its unresolved edges
      surfacing in ``report.hierarchy_incomplete``;
    * each individual whose instance checks exhaust their per-query
      budget is skipped and reported in ``report.skipped`` with the
      exhaustion reason, keeping every fact proved before the cutoff.
    """
    reasoner = reasoner or Reasoner(tbox)
    abox = store_to_abox(store, tbox, type_predicate=type_predicate)
    out = store.copy()
    if not abox.individuals():
        return MaterializeReport(out, PROVED)
    consistency = retry_with_escalation(
        lambda b: reasoner.is_consistent_governed(abox, b), budget.child()
    ).verdict
    if consistency.is_unknown:
        return MaterializeReport(
            out,
            consistency,
            skipped={
                individual: f"consistency check exhausted: {consistency.reason}"
                for individual in sorted(abox.individuals())
            },
        )
    if not consistency.as_bool():
        raise MaterializeError(
            "the store is inconsistent with the TBox; refusing to materialize"
            f" ({_describe_inconsistency(reasoner, abox)})"
        )
    _obs.incr("materialize.runs")
    skipped: dict[str, str] = {}
    with _obs.trace("materialize.run"):
        if hierarchy is None:
            hierarchy = reasoner.classify(budget=budget)
        _materialize_with_hierarchy(
            out,
            abox,
            hierarchy,
            reasoner,
            type_predicate,
            budget=budget,
            skipped=skipped,
        )
    return MaterializeReport(
        out,
        consistency,
        skipped=skipped,
        hierarchy_incomplete=frozenset(hierarchy.incomplete),
    )


def instances_of(
    store: TripleStore,
    tbox: TBox,
    concept: Concept,
    *,
    type_predicate: str = "type",
    reasoner: Reasoner | None = None,
) -> list[str]:
    """Certain answers: individuals entailed to be instances of ``concept``.

    Unlike :func:`materialize` this answers one (possibly complex)
    concept query directly, without writing anything back.
    """
    reasoner = reasoner or Reasoner(tbox)
    abox = store_to_abox(store, tbox, type_predicate=type_predicate)
    if not abox.individuals():
        return []
    if not reasoner.is_consistent(abox):
        raise MaterializeError(
            "the store is inconsistent with the TBox"
            f" ({_describe_inconsistency(reasoner, abox)})"
        )
    return reasoner.retrieve(abox, concept)
