"""Ontology-backed inference materialization over a triple store.

The join between the database substrate and the DL reasoner: instance
data lives as triples (``(herbie, type, car)`` plus role triples like
``(herbie, uses, fuel1)``), the terminology lives in a TBox, and
materialization writes every entailed ``type`` triple back into a copy of
the store, so that plain pattern queries afterwards see the inferred
facts.

This is also where the paper's pragmatic warning (§4) becomes concrete:
whatever the TBox's taxonomy got wrong is now *in the data*, returned by
every query, with no trace of having been an inference.
"""

from __future__ import annotations

from ..obs import recorder as _obs
from ..dl import (
    ABox,
    Atomic,
    Concept,
    ConceptAssertion,
    Reasoner,
    Role,
    RoleAssertion,
    TBox,
)
from .triples import TripleStore


class MaterializeError(Exception):
    """Raised when the store cannot be read as an ABox."""


def store_to_abox(
    store: TripleStore,
    tbox: TBox,
    *,
    type_predicate: str = "type",
) -> ABox:
    """Read a triple store as a DL ABox.

    ``(s, type, C)`` becomes a concept assertion when ``C`` names an
    atomic concept of the TBox; every other predicate that the TBox
    mentions as a role becomes a role assertion; the rest of the triples
    are ignored (they are plain data, not terminology-relevant).
    """
    concept_names = tbox.atomic_names()
    role_names = tbox.role_names()
    assertions: list = []
    for triple in store:
        s, p, o = triple
        if p == type_predicate:
            if not isinstance(o, str):
                raise MaterializeError(f"type object {o!r} is not a concept name")
            if o in concept_names:
                assertions.append(ConceptAssertion(str(s), Atomic(o)))
        elif isinstance(p, str) and p in role_names:
            assertions.append(RoleAssertion(str(s), str(o), Role(p)))
    return ABox(assertions)


def materialize(
    store: TripleStore,
    tbox: TBox,
    *,
    type_predicate: str = "type",
    reasoner: Reasoner | None = None,
) -> TripleStore:
    """A copy of ``store`` with all entailed ``type`` triples added.

    For every named individual and every satisfiable atomic concept of
    the TBox, the reasoner decides instance-hood; positive answers are
    written back as ``(individual, type, concept)`` triples.
    """
    reasoner = reasoner or Reasoner(tbox)
    abox = store_to_abox(store, tbox, type_predicate=type_predicate)
    out = store.copy()
    if not abox.individuals():
        return out
    if not reasoner.is_consistent(abox):
        raise MaterializeError(
            "the store is inconsistent with the TBox; refusing to materialize"
        )
    _obs.incr("materialize.runs")
    names = sorted(tbox.atomic_names())
    with _obs.trace("materialize.run"):
        for individual in sorted(abox.individuals()):
            for name in names:
                _obs.incr("materialize.instance_checks")
                if reasoner.is_instance(abox, individual, Atomic(name)):
                    if (individual, type_predicate, name) in out:
                        continue  # told fact keeps its own (lack of) provenance
                    _obs.incr("materialize.facts_added")
                    out.add(individual, type_predicate, name, provenance="inferred")
    return out


def instances_of(
    store: TripleStore,
    tbox: TBox,
    concept: Concept,
    *,
    type_predicate: str = "type",
    reasoner: Reasoner | None = None,
) -> list[str]:
    """Certain answers: individuals entailed to be instances of ``concept``.

    Unlike :func:`materialize` this answers one (possibly complex)
    concept query directly, without writing anything back.
    """
    reasoner = reasoner or Reasoner(tbox)
    abox = store_to_abox(store, tbox, type_predicate=type_predicate)
    if not abox.individuals():
        return []
    if not reasoner.is_consistent(abox):
        raise MaterializeError("the store is inconsistent with the TBox")
    return reasoner.retrieve(abox, concept)
