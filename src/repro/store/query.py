"""Basic graph pattern queries over a triple store.

A query is a conjunction of triple patterns whose positions may be
variables; evaluation is backtracking join with a most-bound-first
pattern ordering.  Optional Python-callable filters run on complete
bindings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from ..obs import recorder as _obs
from .triples import StoreError, TripleStore


@dataclass(frozen=True)
class Var:
    """A query variable."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


Term = object  # Var or a concrete value


@dataclass(frozen=True)
class Pattern:
    """A triple pattern: any position may be a :class:`Var`."""

    subject: Term
    predicate: Term
    object: Term

    def variables(self) -> frozenset[Var]:
        return frozenset(
            t for t in (self.subject, self.predicate, self.object) if isinstance(t, Var)
        )

    def bound_count(self, bindings: Mapping[Var, Hashable]) -> int:
        """How many positions are concrete under ``bindings``."""
        return sum(
            1
            for t in (self.subject, self.predicate, self.object)
            if not isinstance(t, Var) or t in bindings
        )

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.object})"


Bindings = dict[Var, Hashable]
Filter = Callable[[Bindings], bool]


def match(
    store: TripleStore,
    patterns: Sequence[Pattern],
    *,
    filters: Iterable[Filter] = (),
    order: str = "selectivity",
) -> Iterator[Bindings]:
    """All variable bindings satisfying every pattern (and every filter).

    Join order (``order``):

    * ``"selectivity"`` (default) — greedily pick the pattern with the
      smallest :meth:`TripleStore.estimate` under the current bindings;
    * ``"most-bound"`` — the syntactic heuristic: most concrete positions
      first;
    * ``"static"`` — evaluate in the given order (the ablation baseline).
    """
    filters = list(filters)
    if order not in ("selectivity", "most-bound", "static"):
        raise StoreError(f"unknown join order {order!r}")
    _obs.incr("store.query.joins")
    _obs.incr(f"store.query.order.{order}")

    def resolve(term: Term, bindings: Bindings):
        if isinstance(term, Var):
            return bindings.get(term)  # None = wildcard
        return term

    def rank(remaining: list[Pattern], bindings: Bindings) -> list[Pattern]:
        if order == "static":
            return remaining
        if order == "most-bound":
            return sorted(remaining, key=lambda p: -p.bound_count(bindings))
        return sorted(
            remaining,
            key=lambda p: store.estimate(
                resolve(p.subject, bindings),
                resolve(p.predicate, bindings),
                resolve(p.object, bindings),
            ),
        )

    def backtrack(remaining: list[Pattern], bindings: Bindings) -> Iterator[Bindings]:
        if not remaining:
            if all(f(bindings) for f in filters):
                _obs.incr("store.query.solutions")
                yield dict(bindings)
            return
        remaining = rank(remaining, bindings)
        _obs.incr("store.query.patterns_ranked")
        pattern, rest = remaining[0], remaining[1:]
        s = resolve(pattern.subject, bindings)
        p = resolve(pattern.predicate, bindings)
        o = resolve(pattern.object, bindings)
        for triple in store.triples(s, p, o):
            new_bindings = dict(bindings)
            consistent = True
            for term, value in (
                (pattern.subject, triple.subject),
                (pattern.predicate, triple.predicate),
                (pattern.object, triple.object),
            ):
                if isinstance(term, Var):
                    if term in new_bindings and new_bindings[term] != value:
                        consistent = False
                        break
                    new_bindings[term] = value
            if consistent:
                _obs.incr("store.query.intermediate_bindings")
                yield from backtrack(rest, new_bindings)

    yield from backtrack(list(patterns), {})


class Query:
    """A select query: patterns, filters, and a projection.

    >>> store = TripleStore()
    >>> store.add("herbie", "type", "car")
    >>> x = Var("x")
    >>> Query([Pattern(x, "type", "car")], select=[x]).run(store)
    [('herbie',)]
    """

    def __init__(
        self,
        patterns: Sequence[Pattern],
        *,
        select: Sequence[Var] | None = None,
        filters: Iterable[Filter] = (),
        order: str = "selectivity",
    ) -> None:
        self.order = order
        self.patterns = list(patterns)
        all_vars = frozenset(v for p in self.patterns for v in p.variables())
        self.select = list(select) if select is not None else sorted(all_vars, key=lambda v: v.name)
        unknown = [v for v in self.select if v not in all_vars]
        if unknown:
            raise StoreError(
                f"projected variables {[str(v) for v in unknown]} never occur in patterns"
            )
        self.filters = list(filters)

    def run(self, store: TripleStore) -> list[tuple]:
        """Evaluate and project; rows are deduplicated and sorted."""
        rows = {
            tuple(bindings[v] for v in self.select)
            for bindings in match(
                store, self.patterns, filters=self.filters, order=self.order
            )
        }
        return sorted(rows, key=repr)
