"""Database substrate: indexed triple store, pattern queries, DL-backed
materialization, JSONL persistence."""

from .materialize import (
    MaterializeError,
    MaterializeReport,
    instances_of,
    materialize,
    materialize_governed,
    store_to_abox,
    store_to_backend,
)
from .persistence import (
    append_verified_bytes,
    atomic_write_text,
    load_jsonl,
    save_jsonl,
)
from .query import Bindings, Pattern, Query, Var, match
from .triples import StoreError, Triple, TripleStore

__all__ = [
    "Triple", "TripleStore", "StoreError",
    "Var", "Pattern", "Query", "match", "Bindings",
    "store_to_abox", "store_to_backend", "materialize", "instances_of",
    "MaterializeError",
    "materialize_governed", "MaterializeReport",
    "save_jsonl", "load_jsonl", "atomic_write_text", "append_verified_bytes",
]
