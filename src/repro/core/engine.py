"""The critique engine: the paper's argument as a callable.

``critique(tbox, ...)`` runs all three analyses on a DL ontonomy and
returns a :class:`repro.core.report.CritiqueReport`:

I.   Syntactic — which definitions of 'ontonomy' can even classify the
     artifact, plus the discipline-level defects (Gruber's use-dependence,
     Guarino's circularity and over-breadth).
II.  Semantic — meaning collisions within the TBox and against contrast
     TBoxes; the confusable-sibling construction; the differentiation
     regress.
III. Pragmatic — taxonomy-confinement profile, orthodoxy, and (when
     lexical data is supplied) imposition losses across communities.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping, Sequence

from ..dl import Atomic, TBox
from ..obs import recorder as _obs
from ..intensional import Rigidity, check_taxonomy
from ..semiotics import (
    Lexicalization,
    granularity,
    interlingua,
    partial_overlaps,
    translation_report,
    variation_of_information,
)
from .pragmatic import imposition_report, pragmatic_profile
from .report import CritiqueReport, Finding, Section, Severity
from .semantic import (
    confusable_sibling,
    differentiation_regress,
    find_collisions,
    find_cross_collisions,
)
from .syntactic import definition_findings, discipline_findings


class _PhaseTimer:
    """Sequential phase stopwatch feeding both the report and the recorder."""

    def __init__(self, report: CritiqueReport) -> None:
        self.report = report
        self.name: str | None = None
        self.t0 = 0.0

    def start(self, name: str) -> None:
        self.stop()
        self.name = name
        self.t0 = time.perf_counter()

    def stop(self) -> None:
        if self.name is None:
            return
        elapsed = time.perf_counter() - self.t0
        self.report.timings[self.name] = (
            self.report.timings.get(self.name, 0.0) + elapsed
        )
        _obs.record_timing(f"critique.{self.name}", elapsed)
        self.name = None


def critique(
    tbox: TBox,
    *,
    label: str = "ontonomy",
    contrast_tboxes: Sequence[tuple[str, TBox]] = (),
    lexicalizations: Sequence[Lexicalization] = (),
    include_discipline_findings: bool = True,
    regress_term: str | None = None,
    regress_repairs: Sequence[Iterable] = (),
    rigidity: Mapping[str, Rigidity] | None = None,
) -> CritiqueReport:
    """Run the full three-part critique on ``tbox``.

    ``contrast_tboxes`` are (label, TBox) pairs to search for CAR/DOG-style
    cross collisions; ``lexicalizations`` enable the imposition-loss
    analysis; ``regress_term`` (+ optional ``regress_repairs``) runs the
    F5 regress on one defined name; ``rigidity`` (a name → Rigidity
    profile from ``repro.intensional.rigidity_profile``) enables the
    OntoClean backbone check on the TBox's told atomic subsumptions.
    """
    report = CritiqueReport(artifact=label)
    phases = _PhaseTimer(report)

    # I. syntactic -------------------------------------------------------
    phases.start("syntactic")
    report.extend(definition_findings(tbox, label))
    if include_discipline_findings:
        report.extend(discipline_findings(tbox))

    # II. semantic --------------------------------------------------------
    phases.start("semantic")
    internal = find_collisions(tbox, label=label)
    for collision in internal:
        report.add(
            Finding(
                section=Section.SEMANTIC,
                code="meaning-collision",
                severity=Severity.DEFECT,
                title=f"structural meaning cannot separate "
                f"{collision.term_a} from {collision.term_b}",
                details=str(collision),
                paper_ref="§3, structures (4)-(8)",
            )
        )
    for contrast_label, contrast in contrast_tboxes:
        for collision in find_cross_collisions(
            tbox, contrast, label_a=label, label_b=contrast_label
        ):
            report.add(
                Finding(
                    section=Section.SEMANTIC,
                    code="meaning-collision-cross",
                    severity=Severity.DEFECT,
                    title=f"{collision.term_a} means the same as "
                    f"{contrast_label}'s {collision.term_b}",
                    details=str(collision),
                    paper_ref="§3, CAR = DOG",
                )
            )

    sibling, name_map, _ = confusable_sibling(tbox)
    sample = sorted(tbox.defined_names())
    report.add(
        Finding(
            section=Section.SEMANTIC,
            code="confusable-sibling",
            severity=Severity.DEFECT,
            title="a structurally identical rival ontonomy always exists",
            details=(
                "systematic renaming yields a different-vocabulary TBox "
                "whose every term is meaning-identical to this one "
                f"(e.g. {sample[0]} ≡ {name_map[sample[0]]})"
                if sample
                else "the TBox defines no names; the sibling is trivial"
            ),
            paper_ref="§3 ('when can we stop? … we can't')",
        )
    )

    if regress_term is not None:
        steps = differentiation_regress(tbox, regress_term, list(regress_repairs))
        escaped = any(not s.rival_identical for s in steps)
        report.add(
            Finding(
                section=Section.SEMANTIC,
                code="differentiation-regress",
                severity=Severity.INFO if escaped else Severity.DEFECT,
                title=(
                    f"differentiation regress on {regress_term!r}: "
                    f"{len(steps)} rounds, "
                    + ("escaped" if escaped else "never escaped")
                ),
                details="\n".join(str(s) for s in steps),
                paper_ref="§3, structures (9)-(11)",
            )
        )

    # III. pragmatic -------------------------------------------------------
    phases.start("pragmatic")
    profile = pragmatic_profile(tbox)
    report.add(
        Finding(
            section=Section.PRAGMATIC,
            code="taxonomy-profile",
            severity=Severity.INFO,
            title=(
                f"taxonomy fraction {profile.taxonomy_fraction:.0%}, "
                f"hierarchy {'tree' if profile.hierarchy_is_tree else 'DAG'} "
                f"(height {profile.hierarchy_height}, width {profile.hierarchy_width})"
            ),
            details=(
                f"{profile.taxonomy_axioms} purely taxonomic axioms and "
                f"{profile.relational_axioms} relational axioms out of "
                f"{profile.axiom_count}"
            ),
            paper_ref="§4 (the debt to object-oriented taxonomies)",
        )
    )
    if profile.orthodoxy >= 0.5 and profile.axiom_count > 0:
        report.add(
            Finding(
                section=Section.PRAGMATIC,
                code="orthodoxy",
                severity=Severity.CAUTION,
                title=f"{profile.orthodoxy:.0%} of terms have a single normative definition",
                details=(
                    "every such term admits exactly one construal; adopting "
                    "this ontonomy closes the corresponding discourse"
                ),
                paper_ref="§4 (orthodoxy and the death of the reader)",
            )
        )

    if rigidity is not None:
        told = [
            (gci.lhs.name, gci.rhs.name)
            for gci in tbox.gcis()
            if isinstance(gci.lhs, Atomic)
            and isinstance(gci.rhs, Atomic)
            and gci.lhs.name in rigidity
            and gci.rhs.name in rigidity
        ]
        violations = check_taxonomy(rigidity, told)
        if violations:
            report.add(
                Finding(
                    section=Section.PRAGMATIC,
                    code="rigidity-violation",
                    severity=Severity.DEFECT,
                    title=f"{len(violations)} OntoClean backbone violation(s)",
                    details="\n".join(str(v) for v in violations),
                    paper_ref="§2/§4 (Guarino's own later methodology, applied)",
                )
            )

    if lexicalizations:
        imposition = imposition_report(list(lexicalizations))
        imposed, community, loss = imposition.worst()
        report.add(
            Finding(
                section=Section.PRAGMATIC,
                code="imposition-loss",
                severity=Severity.CAUTION if loss > 0 else Severity.INFO,
                title=(
                    f"adopting {imposed}'s carving erases {loss:.0%} of "
                    f"{community}'s distinctions (worst pair)"
                ),
                details="\n".join(
                    f"{a} imposed on {b}: {value:.0%} of distinctions lost"
                    for a, b, value in imposition.losses
                ),
                paper_ref="§4 (normative taxonomies on unsettled disciplines)",
            )
        )

    phases.stop()
    return report


def critique_fields(
    lexicalizations: Sequence[Lexicalization],
    *,
    label: str = "lexical field study",
) -> CritiqueReport:
    """The semiotic arm of the critique, standalone (no TBox required).

    Given two or more lexicalizations of one field, reports: the partial
    overlaps that refute extent-atomism (§3), pairwise translation
    distortions and their information-theoretic distances, the imposition
    losses of §4, and the cost of the interlingua a shared ontology would
    impose.
    """
    lexs = list(lexicalizations)
    if len(lexs) < 2:
        raise ValueError("field critique needs at least two lexicalizations")
    report = CritiqueReport(artifact=label)

    # II. semantic: atomism refutation and translation loss
    overlap_lines = []
    for i, a in enumerate(lexs):
        for b in lexs[i + 1:]:
            for term_a, term_b, shared in partial_overlaps(a, b):
                overlap_lines.append(
                    f"{a.language}:{term_a} / {b.language}:{term_b} "
                    f"share {sorted(shared)} while neither contains the other"
                )
    if overlap_lines:
        report.add(
            Finding(
                section=Section.SEMANTIC,
                code="partial-overlap",
                severity=Severity.DEFECT,
                title=f"{len(overlap_lines)} cross-language partial overlap(s): "
                "extent-atomism cannot state these meanings",
                details="\n".join(overlap_lines),
                paper_ref="§3 (doorknob/pomello)",
            )
        )

    loss_lines = []
    worst_distortion = 0.0
    for a in lexs:
        for b in lexs:
            if a.language == b.language:
                continue
            result = translation_report(a, b)
            worst_distortion = max(worst_distortion, result.mean_distortion)
            vi = variation_of_information(a, b)
            loss_lines.append(
                f"{a.language} → {b.language}: mean distortion "
                f"{result.mean_distortion:.2f}, VI {vi:.2f} bits"
            )
    report.add(
        Finding(
            section=Section.SEMANTIC,
            code="translation-loss",
            severity=Severity.DEFECT if worst_distortion > 0 else Severity.INFO,
            title=(
                f"translation is lossy (worst mean distortion {worst_distortion:.2f})"
                if worst_distortion > 0
                else "these lexicalizations are mutually lossless (aligned)"
            ),
            details="\n".join(loss_lines),
            paper_ref="§3 (meaning as position in a system)",
        )
    )

    # III. pragmatic: imposition and the interlingua's cost
    imposition = imposition_report(lexs)
    imposed, community, loss = imposition.worst()
    report.add(
        Finding(
            section=Section.PRAGMATIC,
            code="imposition-loss",
            severity=Severity.CAUTION if loss > 0 else Severity.INFO,
            title=(
                f"adopting {imposed}'s carving erases {loss:.0%} of "
                f"{community}'s distinctions (worst pair)"
            ),
            details="\n".join(
                f"{a} imposed on {b}: {value:.0%} lost"
                for a, b, value in imposition.losses
            ),
            paper_ref="§4 (normative taxonomies)",
        )
    )

    shared = interlingua(lexs)
    native_overlapping = [lex.language for lex in lexs if not lex.is_partition()]
    report.add(
        Finding(
            section=Section.PRAGMATIC,
            code="interlingua-cost",
            severity=Severity.CAUTION if native_overlapping else Severity.INFO,
            title=(
                f"a neutral taxonomy needs {granularity(shared)} terms "
                f"(vs {max(len(lex.terms) for lex in lexs)} in the richest language)"
            ),
            details=(
                "the interlingua is a partition; the overlap-borne register "
                "distinctions of "
                + (", ".join(native_overlapping) or "(none)")
                + " are legislated away"
            ),
            paper_ref="§4 (the semantic web's shared code)",
        )
    )
    return report
