"""The semantic critique, mechanized (paper §3, experiments F4/F5).

Three instruments:

* **collision detection** — pairs of defined terms whose structural
  meanings (definition-graph neighborhoods) are isomorphic: within one
  TBox, or across two (CAR vs DOG);
* **confusable siblings** — for ANY definitorial TBox, a systematic
  renaming produces a different-vocabulary ontonomy whose every term is
  meaning-identical to the original.  This is the mechanized form of the
  paper's regress conclusion: "if meaning is in the structure … then the
  meaning of a sign is given by the trace on it of all the other signs of
  the language, and no part of the system can self-sustain once detached
  from the whole."  However many predicates are added, the sibling tracks
  them;
* **the regress driver** — apply a sequence of repairs (the paper's
  (9)–(11) move and beyond) and record that after every round the rival
  reappears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..dl import (
    And,
    AtLeast,
    AtMost,
    Atomic,
    Concept,
    Equivalence,
    Exists,
    Forall,
    Not,
    Or,
    Role,
    Subsumption,
    TBox,
    meaning_isomorphic,
    meanings_identical,
    structural_meaning,
)
from ..dl.syntax import _Bottom, _Top


# ---------------------------------------------------------------------- #
# renaming machinery
# ---------------------------------------------------------------------- #


def rename_concept(
    concept: Concept, name_map: dict[str, str], role_map: dict[str, str]
) -> Concept:
    """Rename atomic concepts and roles throughout a concept expression."""
    if isinstance(concept, Atomic):
        return Atomic(name_map.get(concept.name, concept.name))
    if isinstance(concept, (_Top, _Bottom)):
        return concept
    if isinstance(concept, Not):
        return Not(rename_concept(concept.operand, name_map, role_map))
    if isinstance(concept, And):
        return And.of(rename_concept(op, name_map, role_map) for op in concept.operands)
    if isinstance(concept, Or):
        return Or.of(rename_concept(op, name_map, role_map) for op in concept.operands)
    if isinstance(concept, Exists):
        return Exists(
            Role(role_map.get(concept.role.name, concept.role.name)),
            rename_concept(concept.filler, name_map, role_map),
        )
    if isinstance(concept, Forall):
        return Forall(
            Role(role_map.get(concept.role.name, concept.role.name)),
            rename_concept(concept.filler, name_map, role_map),
        )
    if isinstance(concept, AtLeast):
        return AtLeast(
            concept.n,
            Role(role_map.get(concept.role.name, concept.role.name)),
            rename_concept(concept.filler, name_map, role_map),
        )
    if isinstance(concept, AtMost):
        return AtMost(
            concept.n,
            Role(role_map.get(concept.role.name, concept.role.name)),
            rename_concept(concept.filler, name_map, role_map),
        )
    raise TypeError(f"unknown concept node {concept!r}")


def rename_tbox(
    tbox: TBox, name_map: dict[str, str], role_map: dict[str, str]
) -> TBox:
    """Rename every axiom of a TBox."""
    axioms = []
    for axiom in tbox:
        lhs = rename_concept(axiom.lhs, name_map, role_map)
        rhs = rename_concept(axiom.rhs, name_map, role_map)
        ctor = Subsumption if isinstance(axiom, Subsumption) else Equivalence
        axioms.append(ctor(lhs, rhs))
    return TBox(axioms)


def confusable_sibling(
    tbox: TBox, *, suffix: str = "ʹ"
) -> tuple[TBox, dict[str, str], dict[str, str]]:
    """A different-vocabulary ontonomy structurally identical to ``tbox``.

    Returns ``(sibling, name_map, role_map)``.  By construction, for
    every defined name ``A`` of the original,
    ``meanings_identical(tbox, A, sibling, name_map[A])`` holds — the
    sibling is the "dog ontology" to any "car ontology", manufactured on
    demand.  Property-tested in ``tests/core``.
    """
    name_map = {name: f"{name}{suffix}" for name in sorted(tbox.atomic_names())}
    role_map = {role: f"{role}{suffix}" for role in sorted(tbox.role_names())}
    return rename_tbox(tbox, name_map, role_map), name_map, role_map


# ---------------------------------------------------------------------- #
# collisions
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class MeaningCollision:
    """Two terms a structural theory of meaning cannot distinguish."""

    term_a: str
    source_a: str
    term_b: str
    source_b: str

    def __str__(self) -> str:
        return (
            f"{self.term_a} ({self.source_a}) ≡ {self.term_b} ({self.source_b}) "
            "under structural meaning"
        )


def find_collisions(
    tbox: TBox, *, label: str = "tbox"
) -> list[MeaningCollision]:
    """Within-TBox collisions among defined names."""
    names = sorted(tbox.defined_names())
    out = []
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if meanings_identical(tbox, a, tbox, b):
                out.append(MeaningCollision(a, label, b, label))
    return out


def find_cross_collisions(
    tbox_a: TBox,
    tbox_b: TBox,
    *,
    label_a: str = "A",
    label_b: str = "B",
) -> list[MeaningCollision]:
    """Cross-TBox collisions: the CAR/DOG configuration."""
    out = []
    for a in sorted(tbox_a.defined_names()):
        for b in sorted(tbox_b.defined_names()):
            if meanings_identical(tbox_a, a, tbox_b, b):
                out.append(MeaningCollision(a, label_a, b, label_b))
    return out


# ---------------------------------------------------------------------- #
# the regress
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class RegressStep:
    """One round of the differentiation regress."""

    round: int
    axiom_count: int
    definition_size: int          # total constructor nodes across axioms
    rival_term: str               # the sibling's name for the probed term
    rival_identical: bool         # does the rival still collide? (always True)

    def __str__(self) -> str:
        status = "still confusable" if self.rival_identical else "distinguished"
        return (
            f"round {self.round}: {self.axiom_count} axioms "
            f"(size {self.definition_size}) — {status} with {self.rival_term}"
        )


def tbox_definition_size(tbox: TBox) -> int:
    """Total constructor nodes over all axioms (the regress's cost axis)."""
    return sum(gci.lhs.size() + gci.rhs.size() for gci in tbox.gcis())


def differentiation_regress(
    tbox: TBox,
    term: str,
    repairs: Sequence[Iterable],
) -> list[RegressStep]:
    """Run the paper's "when can we stop?" experiment (F5).

    Round 0 probes the original TBox; each subsequent round extends it
    with one repair (a list of axioms — e.g. the paper's
    ``quadruped ⊑ animal``) and re-probes.  At every round a confusable
    sibling for the CURRENT TBox is manufactured and the collision
    re-checked.  The answer to "when can we stop?" is read off the
    ``rival_identical`` column: never.
    """
    steps = []
    current = tbox
    for round_index in range(len(repairs) + 1):
        if round_index > 0:
            current = current.extended(list(repairs[round_index - 1]))
        if term not in current.defined_names():
            raise ValueError(f"{term!r} is not defined in the TBox")
        sibling, name_map, _ = confusable_sibling(current)
        rival = name_map[term]
        steps.append(
            RegressStep(
                round=round_index,
                axiom_count=len(current),
                definition_size=tbox_definition_size(current),
                rival_term=rival,
                rival_identical=meanings_identical(current, term, sibling, rival),
            )
        )
    return steps
