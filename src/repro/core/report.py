"""Critique reports: the structured output of the engine.

A report collects :class:`Finding` records across the paper's three
sections — syntactic (definition), semantic (meaning), pragmatic
(application) — and renders them as readable text.  Findings carry a
severity so downstream code can gate on them, and every finding points
back to the paper section it reproduces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable


class Section(enum.Enum):
    SYNTACTIC = "syntactic"   # paper §2: the definition of ontology
    SEMANTIC = "semantic"     # paper §3: ontology and semantics
    PRAGMATIC = "pragmatic"   # paper §4: the pragmatics of ontology


class Severity(enum.IntEnum):
    INFO = 0        # a measurement, no judgment
    CAUTION = 1     # a limitation the user should know about
    DEFECT = 2      # the artifact exhibits one of the paper's problems


@dataclass(frozen=True)
class Finding:
    """One critique finding."""

    section: Section
    code: str                   # stable identifier, e.g. "meaning-collision"
    severity: Severity
    title: str
    details: str
    paper_ref: str = ""         # e.g. "§3, structures (4)-(8)"

    def render(self) -> str:
        badge = {Severity.INFO: "·", Severity.CAUTION: "!", Severity.DEFECT: "✗"}[
            self.severity
        ]
        ref = f"  [{self.paper_ref}]" if self.paper_ref else ""
        body = "\n".join(f"    {line}" for line in self.details.splitlines())
        return f"  {badge} {self.title}{ref}\n{body}"


@dataclass
class CritiqueReport:
    """The engine's verdict on one artifact.

    ``timings`` holds per-phase wall times in seconds, keyed by phase
    name ("syntactic", "semantic", "pragmatic"); the engine fills it so
    perf regressions in any one arm of the critique are attributable.
    """

    artifact: str
    findings: list[Finding] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def section(self, section: Section) -> list[Finding]:
        return [f for f in self.findings if f.section == section]

    def by_code(self, code: str) -> list[Finding]:
        return [f for f in self.findings if f.code == code]

    def defects(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.DEFECT]

    @property
    def worst(self) -> Severity:
        return max((f.severity for f in self.findings), default=Severity.INFO)

    def render(self) -> str:
        """A readable, sectioned text report."""
        lines = [f"Critique of {self.artifact}", "=" * (12 + len(self.artifact))]
        titles = {
            Section.SYNTACTIC: "I. Syntactic: what kind of definition is this?",
            Section.SEMANTIC: "II. Semantic: does structure carry meaning?",
            Section.PRAGMATIC: "III. Pragmatic: what does adopting it do?",
        }
        for section in Section:
            findings = self.section(section)
            if not findings:
                continue
            lines.append("")
            lines.append(titles[section])
            lines.append("-" * len(titles[section]))
            for finding in findings:
                lines.append(finding.render())
        if not self.findings:
            lines.append("")
            lines.append("  (no findings)")
        if self.timings:
            lines.append("")
            lines.append("phase timings: " + ", ".join(
                f"{name} {seconds * 1000:.1f} ms"
                for name, seconds in self.timings.items()
            ))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """A GitHub-flavored-markdown rendering (for docs and CI summaries)."""
        badge = {
            Severity.INFO: "ℹ️",
            Severity.CAUTION: "⚠️",
            Severity.DEFECT: "❌",
        }
        titles = {
            Section.SYNTACTIC: "I. Syntactic — what kind of definition is this?",
            Section.SEMANTIC: "II. Semantic — does structure carry meaning?",
            Section.PRAGMATIC: "III. Pragmatic — what does adopting it do?",
        }
        lines = [f"# Critique of {self.artifact}", ""]
        for section in Section:
            findings = self.section(section)
            if not findings:
                continue
            lines.append(f"## {titles[section]}")
            lines.append("")
            for finding in findings:
                ref = f" *({finding.paper_ref})*" if finding.paper_ref else ""
                lines.append(f"- {badge[finding.severity]} **{finding.title}**{ref}")
                for detail_line in finding.details.splitlines():
                    lines.append(f"  {detail_line}")
            lines.append("")
        if not self.findings:
            lines.append("*(no findings)*")
        return "\n".join(lines).rstrip() + "\n"
