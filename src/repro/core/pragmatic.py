"""The pragmatic critique, mechanized (paper §4, experiment Q4/Q5 support).

Measurements of what adopting an ontonomy *does*:

* **taxonomy confinement** — how much of the artifact is pure taxonomy
  (atomic names under atomic names) versus genuinely relational; shape
  statistics of the inferred hierarchy.  "A lot of the ontological
  vocabulary … shows a definite debt to [object-oriented programming]";
* **orthodoxy** — the fraction of terms given exactly one normative
  definition, leaving no room for competing construals ("the wide
  adoption of a taxonomy … tends to … establish an orthodoxy which might
  stifle alternative discourses");
* **imposition loss** — when one community's lexicalization of a field is
  adopted as THE taxonomy, the fraction of another community's
  distinctions that become inexpressible.  The computational form of
  "by forcing computerized data bases, normative semantics, and
  taxonomies on a vital but not yet settled discipline we might take away
  its vitality more than help it."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..dl import Atomic, ConceptHierarchy, TBox, classify
from ..dl.syntax import And
from ..semiotics import Lexicalization


@dataclass(frozen=True)
class PragmaticProfile:
    """Shape measurements of one ontonomy."""

    axiom_count: int
    taxonomy_axioms: int          # atomic ⊑ (conjunction of) atomics
    relational_axioms: int        # axioms mentioning roles
    hierarchy_is_tree: bool
    hierarchy_height: int
    hierarchy_width: int
    orthodoxy: float              # fraction of defined names with exactly 1 axiom

    @property
    def taxonomy_fraction(self) -> float:
        if self.axiom_count == 0:
            return 0.0
        return self.taxonomy_axioms / self.axiom_count


def pragmatic_profile(tbox: TBox, *, hierarchy: ConceptHierarchy | None = None) -> PragmaticProfile:
    """Measure the taxonomy-confinement profile of ``tbox``."""
    taxonomy = 0
    relational = 0
    gcis = tbox.gcis()
    for gci in gcis:
        roles = gci.lhs.role_names() | gci.rhs.role_names()
        if roles:
            relational += 1
            continue
        rhs_parts = gci.rhs.operands if isinstance(gci.rhs, And) else (gci.rhs,)
        if isinstance(gci.lhs, Atomic) and all(isinstance(p, Atomic) for p in rhs_parts):
            taxonomy += 1
    hierarchy = hierarchy or classify(tbox)
    defined = sorted(tbox.defined_names())
    single = sum(1 for name in defined if len(tbox.definitions_of(name)) == 1)
    # shape statistics exclude ⊥: every branching taxonomy gives ⊥ several
    # covers, which would make is_tree vacuously false
    from ..dl import BOTTOM_NAME

    shape = hierarchy.poset.subposet(
        set(hierarchy.poset.elements) - {BOTTOM_NAME}
    )
    return PragmaticProfile(
        axiom_count=len(gcis),
        taxonomy_axioms=taxonomy,
        relational_axioms=relational,
        hierarchy_is_tree=shape.is_tree(),
        hierarchy_height=shape.height(),
        hierarchy_width=shape.width(),
        orthodoxy=single / len(defined) if defined else 0.0,
    )


def imposition_loss(imposed: Lexicalization, community: Lexicalization) -> float:
    """Distinctions of ``community`` erased by adopting ``imposed``'s terms.

    Over all point pairs the community's lexicon separates (the two
    points bear different term sets), the fraction that the imposed
    lexicon merges (same term set).  0.0 = nothing lost; 1.0 = every
    native distinction erased.
    """
    if imposed.field != community.field:
        raise ValueError("lexicalizations must share a field")
    points = sorted(community.field.points)
    separated = 0
    erased = 0
    for p, q in itertools.combinations(points, 2):
        if community.terms_for(p) != community.terms_for(q):
            separated += 1
            if imposed.terms_for(p) == imposed.terms_for(q):
                erased += 1
    if separated == 0:
        return 0.0
    return erased / separated


@dataclass(frozen=True)
class ImpositionReport:
    """Pairwise imposition losses among a set of communities."""

    losses: tuple[tuple[str, str, float], ...]  # (imposed, community, loss)

    def worst(self) -> tuple[str, str, float]:
        return max(self.losses, key=lambda row: row[2])

    def symmetric(self) -> bool:
        """Is the loss the same in both directions for every pair?"""
        table = {(a, b): loss for a, b, loss in self.losses}
        return all(
            abs(loss - table[(b, a)]) < 1e-12
            for (a, b), loss in table.items()
            if (b, a) in table
        )


def imposition_report(lexicalizations: list[Lexicalization]) -> ImpositionReport:
    """All ordered pairs: what each language's taxonomy costs the others."""
    rows = []
    for imposed in lexicalizations:
        for community in lexicalizations:
            if imposed.language == community.language:
                continue
            rows.append(
                (
                    imposed.language,
                    community.language,
                    imposition_loss(imposed, community),
                )
            )
    return ImpositionReport(losses=tuple(rows))
