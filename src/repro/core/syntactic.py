"""The syntactic critique, mechanized (paper §2, experiments Q1–Q4).

Given an artifact (a TBox, an OSA ontonomy, anything), ask each candidate
definition of 'ontonomy' what it makes of it, and attach the
discipline-level results: Gruber's functionalism (the verdict flips with
the declared use), Guarino's circularity (the SCC witness) and
over-breadth (the grocery list passes), and the BCM formalism's
decidable-but-confined profile.
"""

from __future__ import annotations

from typing import Iterable

from ..intensional import guarino_circularity, paper_exhibits, qualifies
from .definitions import (
    ALL_DEFINITIONS,
    GRUBER_DEFINITION,
    FunctionalDefinition,
    StructuralDefinition,
    Verdict,
)
from .report import Finding, Section, Severity


def definition_findings(artifact: object, artifact_label: str) -> list[Finding]:
    """One finding per candidate definition, applied to the artifact."""
    findings = []
    for definition in ALL_DEFINITIONS:
        classification = definition.classify(artifact)
        if isinstance(definition, FunctionalDefinition):
            severity = Severity.DEFECT
            title = (
                f"'{definition.name}' cannot classify this artifact: "
                f"{classification.verdict.value}"
            )
        else:
            severity = Severity.INFO
            title = (
                f"'{definition.name}': {classification.verdict.value} "
                "(decided structurally)"
            )
        findings.append(
            Finding(
                section=Section.SYNTACTIC,
                code=f"definition:{definition.kind}",
                severity=severity,
                title=title,
                details=classification.reason,
                paper_ref="§2",
            )
        )
    return findings


def functionalism_finding(artifact: object) -> Finding:
    """Gruber's definition judged by its own behavior: the verdict is a
    function of the declaration, not of the artifact."""
    as_conceptualization = GRUBER_DEFINITION.classify(
        artifact, "formalizing a conceptualization"
    ).verdict
    as_grocery_list = GRUBER_DEFINITION.classify(
        artifact, "remembering what to buy"
    ).verdict
    flipped = as_conceptualization != as_grocery_list
    return Finding(
        section=Section.SYNTACTIC,
        code="gruber-use-dependence",
        severity=Severity.DEFECT if flipped else Severity.INFO,
        title="membership under Gruber's definition flips with the declared use",
        details=(
            f"declared 'formalizing a conceptualization' → {as_conceptualization.value}; "
            f"declared 'remembering what to buy' → {as_grocery_list.value}. "
            "The same artifact cannot both be and not be an ontonomy; the "
            "definition is teleological, not structural."
        ),
        paper_ref="§2 (the formal-grammar contrast)",
    )


def circularity_finding() -> Finding:
    """Guarino's definitional circle, found by the SCC analyzer."""
    report = guarino_circularity()
    component = max(report.components, key=len) if report.components else frozenset()
    return Finding(
        section=Section.SYNTACTIC,
        code="guarino-circularity",
        severity=Severity.DEFECT if report.is_circular else Severity.INFO,
        title="Guarino's intensional construction is definitionally circular",
        details=(
            "mutually presupposing notions: "
            + ", ".join(sorted(component))
            + "\n"
            + report.explain()
        ),
        paper_ref="§2 (first objection to Guarino)",
    )


def overbreadth_finding() -> Finding:
    """The grocery list (and friends) pass Guarino's membership test."""
    exhibits = paper_exhibits()
    verdicts = [(c.title, qualifies(c)) for c in exhibits]
    passing = [title for title, ok in verdicts if ok]
    failing = [title for title, ok in verdicts if not ok]
    return Finding(
        section=Section.SYNTACTIC,
        code="guarino-overbreadth",
        severity=Severity.DEFECT,
        title="'admits a model' admits nearly everything",
        details=(
            f"qualify as ontonomies: {', '.join(passing)}. "
            f"rejected: {', '.join(failing) or 'nothing'}. "
            "Only outright contradiction is excluded; tautologies, a "
            "grocery list, a tax form and a C program all pass."
        ),
        paper_ref="§2 (third objection: 'approximates')",
    )


def discipline_findings(artifact: object) -> list[Finding]:
    """The §2 findings that hold regardless of the artifact."""
    return [
        functionalism_finding(artifact),
        circularity_finding(),
        overbreadth_finding(),
    ]
