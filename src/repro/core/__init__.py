"""The paper's contribution as code: the three-part critique engine."""

from .definitions import (
    ALL_DEFINITIONS,
    AI_VOCABULARY_DEFINITION,
    BCM_ONTONOMY_DEFINITION,
    Classification,
    FunctionalDefinition,
    GRAMMAR_DEFINITION,
    GRUBER_DEFINITION,
    StructuralDefinition,
    Verdict,
    decidability_table,
    use_dependence_demonstration,
)
from .engine import critique, critique_fields
from .pragmatic import (
    ImpositionReport,
    PragmaticProfile,
    imposition_loss,
    imposition_report,
    pragmatic_profile,
)
from .report import CritiqueReport, Finding, Section, Severity
from .semantic import (
    MeaningCollision,
    RegressStep,
    confusable_sibling,
    differentiation_regress,
    find_collisions,
    find_cross_collisions,
    rename_concept,
    rename_tbox,
    tbox_definition_size,
)
from .syntactic import (
    circularity_finding,
    definition_findings,
    discipline_findings,
    functionalism_finding,
    overbreadth_finding,
)

__all__ = [
    "critique", "critique_fields",
    "CritiqueReport", "Finding", "Section", "Severity",
    "Verdict", "Classification", "StructuralDefinition", "FunctionalDefinition",
    "GRAMMAR_DEFINITION", "BCM_ONTONOMY_DEFINITION", "AI_VOCABULARY_DEFINITION",
    "GRUBER_DEFINITION", "ALL_DEFINITIONS", "decidability_table",
    "use_dependence_demonstration",
    "MeaningCollision", "RegressStep", "find_collisions",
    "find_cross_collisions", "confusable_sibling", "differentiation_regress",
    "rename_concept", "rename_tbox", "tbox_definition_size",
    "PragmaticProfile", "pragmatic_profile", "imposition_loss",
    "imposition_report", "ImpositionReport",
    "definition_findings", "discipline_findings", "functionalism_finding",
    "circularity_finding", "overbreadth_finding",
]
