"""Structural versus functional definitions (paper §2, experiment Q1).

"A functional definition describes the use of an artifact, but it doesn't
specify its nature and structure … given an arbitrary string of symbols,
a definition should allow one to determine whether the string is a formal
grammar or not."

A :class:`StructuralDefinition` wraps a decision procedure over
artifacts; a :class:`FunctionalDefinition` can only answer when told what
the artifact is *used for* — from the artifact alone its verdict is
:data:`Verdict.UNDECIDABLE`.  The registry at the bottom holds the four
definitions the paper discusses, so the Q1 experiment is one function
call: :func:`decidability_table`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from ..grammar import is_formal_grammar
from ..logic import Vocabulary
from ..osa import is_ontonomy


class Verdict(enum.Enum):
    MEMBER = "member"
    NON_MEMBER = "non-member"
    UNDECIDABLE = "undecidable"


@dataclass(frozen=True)
class Classification:
    """The outcome of asking a definition about one artifact."""

    definition: str
    verdict: Verdict
    reason: str


class StructuralDefinition:
    """A definition with a decision procedure: artifact in, verdict out."""

    kind = "structural"

    def __init__(self, name: str, decide: Callable[[object], bool], source: str = "") -> None:
        self.name = name
        self.decide = decide
        self.source = source

    def classify(self, artifact: object, declared_use: Optional[str] = None) -> Classification:
        """Decide membership from structure alone; ``declared_use`` is ignored —
        that is the point."""
        member = self.decide(artifact)
        return Classification(
            definition=self.name,
            verdict=Verdict.MEMBER if member else Verdict.NON_MEMBER,
            reason="decided by structural inspection of the artifact",
        )


class FunctionalDefinition:
    """A definition by intended use: 'an X is something used to Y'.

    Given only the artifact, membership cannot be decided; given a
    declared use, the 'decision' merely echoes the declaration —
    the definition contributes nothing.
    """

    kind = "functional"

    def __init__(self, name: str, purpose: str, source: str = "") -> None:
        self.name = name
        self.purpose = purpose
        self.source = source

    def classify(self, artifact: object, declared_use: Optional[str] = None) -> Classification:
        if declared_use is None:
            return Classification(
                definition=self.name,
                verdict=Verdict.UNDECIDABLE,
                reason=(
                    f"the definition ('{self.purpose}') mentions only use; "
                    "the artifact alone cannot settle membership"
                ),
            )
        member = declared_use == self.purpose
        return Classification(
            definition=self.name,
            verdict=Verdict.MEMBER if member else Verdict.NON_MEMBER,
            reason=(
                "decided by the DECLARED use, not by the artifact: "
                "the verdict changes when the declaration changes"
            ),
        )


# ---------------------------------------------------------------------- #
# the registry: the four definitions the paper examines
# ---------------------------------------------------------------------- #

GRAMMAR_DEFINITION = StructuralDefinition(
    "formal grammar (4-tuple)",
    is_formal_grammar,
    source="the standard (N, T, S, P) definition, paper §2",
)

BCM_ONTONOMY_DEFINITION = StructuralDefinition(
    "BCM ontonomy (Σ, A)",
    is_ontonomy,
    source="Bench-Capon & Malcolm 1999, paper Definition 1",
)

AI_VOCABULARY_DEFINITION = StructuralDefinition(
    "AI ontonomy (symbol collection)",
    lambda artifact: isinstance(artifact, Vocabulary),
    source="Russell & Norvig, as cited in paper §2",
)

GRUBER_DEFINITION = FunctionalDefinition(
    "Gruber ontology",
    "formalizing a conceptualization",
    source="Gruber 1993, paper §2",
)

ALL_DEFINITIONS = (
    GRAMMAR_DEFINITION,
    AI_VOCABULARY_DEFINITION,
    BCM_ONTONOMY_DEFINITION,
    GRUBER_DEFINITION,
)


def decidability_table(
    artifacts: dict[str, object],
    definitions: tuple = ALL_DEFINITIONS,
) -> list[dict[str, str]]:
    """The Q1 table: every artifact against every definition.

    Structural definitions produce a MEMBER/NON-MEMBER column; Gruber's
    produces a column of UNDECIDABLE — the paper's §2 in one table.
    """
    rows = []
    for label, artifact in artifacts.items():
        row = {"artifact": label}
        for definition in definitions:
            row[definition.name] = definition.classify(artifact).verdict.value
        rows.append(row)
    return rows


def use_dependence_demonstration(
    definition: FunctionalDefinition, artifact: object, uses: list[str]
) -> list[Verdict]:
    """Show that one artifact's membership flips with the declared use.

    For a functional definition the SAME artifact is a member under one
    declaration and a non-member under another — which no definition of a
    class of mathematical objects may allow.
    """
    return [definition.classify(artifact, use).verdict for use in uses]
