"""Test package."""
