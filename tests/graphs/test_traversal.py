"""Unit tests for traversals, cycles, SCCs."""

import pytest

from repro.graphs import (
    DiGraph,
    GraphError,
    bfs_order,
    condensation,
    dfs_order,
    find_cycle,
    has_path,
    is_acyclic,
    reachable_from,
    shortest_path,
    strongly_connected_components,
    topological_sort,
)


def dag() -> DiGraph:
    g = DiGraph()
    for u, v in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "e")]:
        g.add_edge(u, v)
    return g


def cyclic() -> DiGraph:
    # the paper's circularity shape: intensional -> world -> extensional -> intensional
    g = DiGraph()
    g.add_edge("intensional", "world")
    g.add_edge("world", "extensional")
    g.add_edge("extensional", "intensional")
    g.add_edge("commitment", "intensional")
    return g


class TestSearch:
    def test_bfs_order_starts_at_root(self):
        order = bfs_order(dag(), "a")
        assert order[0] == "a"
        assert set(order) == {"a", "b", "c", "d", "e"}
        assert order.index("d") > order.index("b")

    def test_dfs_reaches_everything(self):
        assert set(dfs_order(dag(), "a")) == {"a", "b", "c", "d", "e"}

    def test_search_from_unknown_raises(self):
        with pytest.raises(GraphError):
            bfs_order(dag(), "zz")
        with pytest.raises(GraphError):
            dfs_order(dag(), "zz")

    def test_reachable_from(self):
        assert reachable_from(dag(), "b") == frozenset({"b", "d", "e"})

    def test_shortest_path(self):
        assert shortest_path(dag(), "a", "e") in (
            ["a", "b", "d", "e"],
            ["a", "c", "d", "e"],
        )

    def test_shortest_path_to_self(self):
        assert shortest_path(dag(), "a", "a") == ["a"]

    def test_shortest_path_absent(self):
        assert shortest_path(dag(), "e", "a") is None

    def test_has_path(self):
        g = dag()
        assert has_path(g, "a", "e")
        assert not has_path(g, "e", "a")


class TestTopologyAndCycles:
    def test_topological_sort_respects_edges(self):
        g = dag()
        order = topological_sort(g)
        pos = {n: i for i, n in enumerate(order)}
        for u, v, _ in g.edges():
            assert pos[u] < pos[v]

    def test_topological_sort_rejects_cycle(self):
        with pytest.raises(GraphError):
            topological_sort(cyclic())

    def test_is_acyclic(self):
        assert is_acyclic(dag())
        assert not is_acyclic(cyclic())

    def test_find_cycle_returns_closed_walk(self):
        cycle = find_cycle(cyclic())
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        g = cyclic()
        for u, v in zip(cycle, cycle[1:]):
            assert g.has_edge(u, v)

    def test_find_cycle_none_on_dag(self):
        assert find_cycle(dag()) is None

    def test_self_loop_cycle(self):
        g = DiGraph()
        g.add_edge("x", "x")
        assert find_cycle(g) == ["x", "x"]
        assert not is_acyclic(g)


class TestSCC:
    def test_scc_finds_the_circularity(self):
        comps = strongly_connected_components(cyclic())
        big = [c for c in comps if len(c) > 1]
        assert big == [frozenset({"intensional", "world", "extensional"})]

    def test_scc_on_dag_is_singletons(self):
        comps = strongly_connected_components(dag())
        assert all(len(c) == 1 for c in comps)
        assert len(comps) == 5

    def test_scc_reverse_topological(self):
        comps = strongly_connected_components(dag())
        pos = {next(iter(c)): i for i, c in enumerate(comps)}
        # edges go from later components to earlier ones in the list
        for u, v, _ in dag().edges():
            assert pos[u] > pos[v]

    def test_condensation_is_dag(self):
        dag_graph, member = condensation(cyclic())
        assert is_acyclic(dag_graph)
        assert member["world"] == member["intensional"]
        assert member["commitment"] != member["world"]
        assert dag_graph.has_edge(member["commitment"], member["intensional"])

    def test_scc_two_cycles(self):
        g = DiGraph()
        for u, v in [("a", "b"), ("b", "a"), ("c", "d"), ("d", "c"), ("b", "c")]:
            g.add_edge(u, v)
        comps = {frozenset(c) for c in strongly_connected_components(g)}
        assert comps == {frozenset({"a", "b"}), frozenset({"c", "d"})}

    def test_scc_deep_chain_no_recursion_error(self):
        g = DiGraph()
        for i in range(5000):
            g.add_edge(i, i + 1)
        comps = strongly_connected_components(g)
        assert len(comps) == 5001
