"""Unit tests for the labeled digraph."""

import pytest

from repro.graphs import DiGraph, GraphError


def build_sample() -> DiGraph:
    g = DiGraph()
    g.add_node("car", label="concept")
    g.add_edge("car", "motorvehicle", label="isa")
    g.add_edge("car", "roadvehicle", label="isa")
    g.add_edge("car", "small", label="size")
    g.add_edge("motorvehicle", "gasoline", label="uses")
    return g


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph()
        assert len(g) == 0
        assert g.edge_count() == 0
        assert list(g.nodes()) == []

    def test_add_node_with_label(self):
        g = DiGraph()
        g.add_node("a", label="x")
        assert g.node_label("a") == "x"

    def test_add_node_idempotent_keeps_label(self):
        g = DiGraph()
        g.add_node("a", label="x")
        g.add_node("a")
        assert g.node_label("a") == "x"

    def test_add_node_updates_label(self):
        g = DiGraph()
        g.add_node("a", label="x")
        g.add_node("a", label="y")
        assert g.node_label("a") == "y"

    def test_add_edge_creates_endpoints(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g

    def test_add_edge_idempotent(self):
        g = DiGraph()
        g.add_edge("a", "b", label="r")
        g.add_edge("a", "b", label="r")
        assert g.edge_count() == 1

    def test_parallel_edges_different_labels(self):
        g = DiGraph()
        g.add_edge("a", "b", label="r")
        g.add_edge("a", "b", label="s")
        assert g.edge_count() == 2
        assert g.edge_labels("a", "b") == frozenset({"r", "s"})


class TestQueries:
    def test_successors_and_predecessors(self):
        g = build_sample()
        assert set(g.successors("car")) == {"motorvehicle", "roadvehicle", "small"}
        assert set(g.predecessors("gasoline")) == {"motorvehicle"}

    def test_degrees(self):
        g = build_sample()
        assert g.out_degree("car") == 3
        assert g.in_degree("motorvehicle") == 1
        assert g.in_degree("car") == 0

    def test_has_edge_with_and_without_label(self):
        g = build_sample()
        assert g.has_edge("car", "small")
        assert g.has_edge("car", "small", label="size")
        assert not g.has_edge("car", "small", label="isa")
        assert not g.has_edge("small", "car")

    def test_out_edges_in_edges(self):
        g = build_sample()
        assert ("gasoline", "uses") in set(g.out_edges("motorvehicle"))
        assert ("car", "isa") in set(g.in_edges("motorvehicle"))

    def test_unknown_node_raises(self):
        g = build_sample()
        with pytest.raises(GraphError):
            list(g.successors("ghost"))
        with pytest.raises(GraphError):
            g.node_label("ghost")


class TestMutation:
    def test_remove_edge(self):
        g = build_sample()
        g.remove_edge("car", "small", label="size")
        assert not g.has_edge("car", "small")

    def test_remove_missing_edge_raises(self):
        g = build_sample()
        with pytest.raises(GraphError):
            g.remove_edge("car", "small", label="nope")

    def test_remove_node_drops_incident_edges(self):
        g = build_sample()
        g.remove_node("motorvehicle")
        assert "motorvehicle" not in g
        assert not g.has_edge("car", "motorvehicle")
        assert g.in_degree("gasoline") == 0

    def test_remove_missing_node_raises(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.remove_node("ghost")


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = build_sample()
        h = g.copy()
        h.add_edge("car", "new", label="x")
        assert not g.has_edge("car", "new")
        assert len(h) == len(g) + 1

    def test_subgraph_induced(self):
        g = build_sample()
        sub = g.subgraph(["car", "motorvehicle", "gasoline"])
        assert len(sub) == 3
        assert sub.has_edge("car", "motorvehicle", label="isa")
        assert sub.has_edge("motorvehicle", "gasoline", label="uses")
        assert not sub.has_edge("car", "small")

    def test_reversed_flips_edges(self):
        g = build_sample()
        r = g.reversed()
        assert r.has_edge("motorvehicle", "car", label="isa")
        assert not r.has_edge("car", "motorvehicle")
        assert r.edge_count() == g.edge_count()

    def test_relabel_nodes(self):
        g = build_sample()
        h = g.relabel_nodes({"car": "dog"})
        assert "dog" in h and "car" not in h
        assert h.has_edge("dog", "small", label="size")
        assert h.node_label("dog") == "concept"

    def test_relabel_merge_rejected(self):
        g = build_sample()
        with pytest.raises(GraphError):
            g.relabel_nodes({"car": "small"})

    def test_anonymized_erases_node_labels(self):
        g = build_sample()
        a = g.anonymized()
        assert all(a.node_label(n) is None for n in a.nodes())
        assert a.edge_count() == g.edge_count()

    def test_to_dot_mentions_every_edge(self):
        g = build_sample()
        dot = g.to_dot()
        assert '"car" -> "motorvehicle"' in dot
        assert dot.startswith("digraph G {")
