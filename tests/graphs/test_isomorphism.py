"""Unit and property tests for WL invariants and VF2 isomorphism."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    DiGraph,
    are_isomorphic,
    count_automorphisms,
    degree_profile,
    find_isomorphism,
    is_isomorphism,
    wl_certificate,
    wl_distinguishes,
)


def path(labels=("r", "r")) -> DiGraph:
    g = DiGraph()
    g.add_edge(0, 1, label=labels[0])
    g.add_edge(1, 2, label=labels[1])
    return g


def vehicle_shape(names) -> DiGraph:
    """The paper's diagram (6)/(7) shape with parameterized node names."""
    a, b, c, d, e, f, g_, h = names
    g = DiGraph()
    g.add_edge(d, b, label="isa")
    g.add_edge(d, c, label="isa")
    g.add_edge(e, b, label="isa")
    g.add_edge(e, c, label="isa")
    g.add_edge(d, f, label="size")
    g.add_edge(e, g_, label="size")
    g.add_edge(b, a, label="r1")
    g.add_edge(c, h, label="r2")
    return g


class TestInvariants:
    def test_degree_profile_invariant_under_renaming(self):
        g1 = vehicle_shape(list("ABCDEFGH"))
        g2 = vehicle_shape(list("STUVWXYZ"))
        assert degree_profile(g1) == degree_profile(g2)

    def test_degree_profile_differs_on_different_shape(self):
        g1 = path()
        g2 = DiGraph()
        g2.add_edge(0, 1, label="r")
        g2.add_edge(0, 2, label="r")
        assert degree_profile(g1) != degree_profile(g2)

    def test_wl_certificate_isomorphic_graphs_equal(self):
        g1 = vehicle_shape(list("ABCDEFGH"))
        g2 = vehicle_shape(list("STUVWXYZ"))
        assert wl_certificate(g1) == wl_certificate(g2)

    def test_wl_distinguishes_shape_difference(self):
        g1 = path(("r", "r"))
        g2 = path(("r", "s"))
        assert wl_distinguishes(g1, g2)

    def test_wl_does_not_distinguish_isomorphic(self):
        g1 = vehicle_shape(list("ABCDEFGH"))
        g2 = vehicle_shape(list("HGFEDCBA"))
        assert not wl_distinguishes(g1, g2)

    def test_wl_distinguishes_size_mismatch(self):
        g1 = path()
        g2 = DiGraph()
        g2.add_edge(0, 1, label="r")
        assert wl_distinguishes(g1, g2)


class TestVF2:
    def test_identity_isomorphism(self):
        g = vehicle_shape(list("ABCDEFGH"))
        mapping = find_isomorphism(g, g)
        assert mapping is not None
        assert is_isomorphism(g, g, mapping)

    def test_renamed_graphs_isomorphic_when_labels_ignored(self):
        g1 = vehicle_shape(list("ABCDEFGH"))
        g2 = vehicle_shape(list("STUVWXYZ"))
        mapping = find_isomorphism(g1, g2, respect_node_labels=False)
        assert mapping is not None
        assert is_isomorphism(g1, g2, mapping)  # labels are all None here

    def test_node_labels_respected(self):
        g1 = DiGraph()
        g1.add_node("x", label="car")
        g2 = DiGraph()
        g2.add_node("y", label="dog")
        assert find_isomorphism(g1, g2) is None
        assert find_isomorphism(g1, g2, respect_node_labels=False) is not None

    def test_edge_labels_respected(self):
        g1 = path(("r", "r"))
        g2 = path(("r", "s"))
        assert not are_isomorphic(g1, g2)

    def test_different_sizes_not_isomorphic(self):
        g1 = path()
        g2 = DiGraph()
        g2.add_edge(0, 1, label="r")
        assert not are_isomorphic(g1, g2)

    def test_direction_matters(self):
        g1 = DiGraph()
        g1.add_edge("a", "b")
        g1.add_edge("a", "c")
        g2 = DiGraph()
        g2.add_edge("b", "a")
        g2.add_edge("c", "a")
        assert not are_isomorphic(g1, g2, respect_node_labels=False)

    def test_wl_prefilter_agrees_with_exact(self):
        g1 = vehicle_shape(list("ABCDEFGH"))
        g2 = vehicle_shape(list("STUVWXYZ"))
        with_wl = find_isomorphism(g1, g2, respect_node_labels=False, use_wl_prefilter=True)
        without = find_isomorphism(g1, g2, respect_node_labels=False, use_wl_prefilter=False)
        assert (with_wl is None) == (without is None)

    def test_is_isomorphism_rejects_bad_mapping(self):
        g1 = path()
        g2 = path()
        assert not is_isomorphism(g1, g2, {0: 2, 1: 1, 2: 0})
        assert not is_isomorphism(g1, g2, {0: 0, 1: 1})  # incomplete


class TestAutomorphisms:
    def test_asymmetric_graph_has_one_automorphism(self):
        assert count_automorphisms(path()) == 1

    def test_star_automorphisms(self):
        g = DiGraph()
        for leaf in ("x", "y", "z"):
            g.add_edge("hub", leaf, label="r")
        # leaves are interchangeable when labels are ignored: 3! = 6
        assert count_automorphisms(g, respect_node_labels=False) == 6

    def test_limit_respected(self):
        g = DiGraph()
        for leaf in range(6):
            g.add_edge("hub", leaf, label="r")
        assert count_automorphisms(g, respect_node_labels=False, limit=10) == 10


# ---------------------------------------------------------------------- #
# property-based: VF2 agrees with brute force on small graphs
# ---------------------------------------------------------------------- #


@st.composite
def small_digraph(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    nodes = list(range(n))
    edges = draw(
        st.lists(
            st.tuples(
                st.sampled_from(nodes),
                st.sampled_from(nodes),
                st.sampled_from(["r", "s"]),
            ),
            max_size=8,
        )
    )
    g = DiGraph()
    for node in nodes:
        g.add_node(node)
    for u, v, label in edges:
        g.add_edge(u, v, label)
    return g


def brute_force_isomorphic(g1: DiGraph, g2: DiGraph) -> bool:
    n1, n2 = list(g1.nodes()), list(g2.nodes())
    if len(n1) != len(n2) or g1.edge_count() != g2.edge_count():
        return False
    for perm in itertools.permutations(n2):
        mapping = dict(zip(n1, perm))
        if all(
            g2.has_edge(mapping[u], mapping[v], label) for u, v, label in g1.edges()
        ):
            return True
    return False


@settings(max_examples=60, deadline=None)
@given(small_digraph(), small_digraph())
def test_vf2_matches_brute_force(g1, g2):
    assert are_isomorphic(g1, g2, respect_node_labels=False) == brute_force_isomorphic(g1, g2)


@settings(max_examples=40, deadline=None)
@given(small_digraph(), st.permutations(list(range(5))))
def test_vf2_finds_isomorphism_after_renaming(g, perm):
    mapping = {i: f"n{p}" for i, p in enumerate(perm)}
    h = g.relabel_nodes(mapping)
    found = find_isomorphism(g, h)
    assert found is not None
    assert is_isomorphism(g, h, found)


@settings(max_examples=40, deadline=None)
@given(small_digraph(), st.permutations(list(range(5))))
def test_wl_never_separates_isomorphic_graphs(g, perm):
    mapping = {i: f"n{p}" for i, p in enumerate(perm)}
    h = g.relabel_nodes(mapping)
    assert not wl_distinguishes(g, h)
