"""Additional edge-case tests for graph invariants and exports."""

from repro.graphs import (
    DiGraph,
    edge_label_profile,
    wl_certificate,
    wl_colors,
)


def labeled_triangle() -> DiGraph:
    g = DiGraph()
    g.add_edge("a", "b", label="x")
    g.add_edge("b", "c", label="y")
    g.add_edge("c", "a", label="x")
    return g


class TestEdgeLabelProfile:
    def test_multiset_of_labels(self):
        profile = edge_label_profile(labeled_triangle())
        assert len(profile) == 3
        # two x's, one y — invariant under renaming
        renamed = labeled_triangle().relabel_nodes({"a": "z"})
        assert edge_label_profile(renamed) == profile

    def test_none_labels_sort_first(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3, label="r")
        profile = edge_label_profile(g)
        assert profile[0] == ""  # None encodes as the empty key


class TestWLColors:
    def test_cycle_is_monochrome_modulo_labels(self):
        g = DiGraph()
        for u, v in [("a", "b"), ("b", "c"), ("c", "a")]:
            g.add_edge(u, v, label="r")
        colors = wl_colors(g)
        assert len(set(colors.values())) == 1  # perfectly symmetric

    def test_degree_asymmetry_splits_colors(self):
        g = DiGraph()
        g.add_edge("hub", "leaf1", label="r")
        g.add_edge("hub", "leaf2", label="r")
        colors = wl_colors(g)
        assert colors["leaf1"] == colors["leaf2"]
        assert colors["hub"] != colors["leaf1"]

    def test_bounded_rounds(self):
        g = labeled_triangle()
        # one round is already stable here; certificate must not change
        assert wl_certificate(g, rounds=1) == wl_certificate(g)

    def test_empty_graph_certificate(self):
        assert wl_certificate(DiGraph()) == ()


class TestDotExport:
    def test_node_labels_in_dot(self):
        g = DiGraph()
        g.add_node("x", label="concept")
        dot = g.to_dot(name="Meaning")
        assert "digraph Meaning" in dot
        assert "[concept]" in dot

    def test_edge_labels_in_dot(self):
        g = labeled_triangle()
        dot = g.to_dot()
        assert '[label="x"]' in dot
        assert '[label="y"]' in dot
