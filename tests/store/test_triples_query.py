"""Unit and property tests for the triple store and query engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import Pattern, Query, StoreError, Triple, TripleStore, Var, match


def sample_store(use_indexes: bool = True) -> TripleStore:
    store = TripleStore(use_indexes=use_indexes)
    store.update(
        [
            ("herbie", "type", "car"),
            ("herbie", "size", "small"),
            ("herbie", "uses", "gasoline"),
            ("bigfoot", "type", "pickup"),
            ("bigfoot", "size", "big"),
            ("rex", "type", "dog"),
            ("rex", "size", "small"),
        ]
    )
    return store


class TestTripleStore:
    def test_add_and_len(self):
        assert len(sample_store()) == 7

    def test_add_idempotent(self):
        store = sample_store()
        store.add("herbie", "type", "car")
        assert len(store) == 7

    def test_contains(self):
        store = sample_store()
        assert ("herbie", "type", "car") in store
        assert ("herbie", "type", "dog") not in store

    def test_remove(self):
        store = sample_store()
        store.remove("rex", "type", "dog")
        assert ("rex", "type", "dog") not in store
        assert len(store) == 6

    def test_remove_missing_raises(self):
        with pytest.raises(StoreError):
            sample_store().remove("ghost", "type", "car")

    def test_pattern_queries_every_shape(self):
        store = sample_store()
        assert store.count(subject="herbie") == 3
        assert store.count(predicate="type") == 3
        assert store.count(object="small") == 2
        assert store.count(subject="herbie", predicate="size") == 1
        assert store.count(predicate="type", object="car") == 1
        assert store.count(subject="herbie", object="small") == 1
        assert store.count() == 7
        assert store.count(subject="ghost") == 0

    def test_fully_bound_pattern(self):
        store = sample_store()
        assert store.count(subject="herbie", predicate="type", object="car") == 1
        assert store.count(subject="herbie", predicate="type", object="dog") == 0

    def test_vocabulary_views(self):
        store = sample_store()
        assert "herbie" in store.subjects()
        assert store.predicates() == frozenset({"type", "size", "uses"})
        assert "gasoline" in store.objects()

    def test_copy_independent(self):
        store = sample_store()
        clone = store.copy()
        clone.add("new", "type", "car")
        assert len(store) == 7
        assert len(clone) == 8

    def test_scan_mode_matches_indexed_mode(self):
        indexed = sample_store(use_indexes=True)
        scanning = sample_store(use_indexes=False)
        for pattern in [
            {}, {"subject": "herbie"}, {"predicate": "type"},
            {"object": "small"}, {"subject": "herbie", "predicate": "size"},
        ]:
            a = sorted(map(str, indexed.triples(**pattern)))
            b = sorted(map(str, scanning.triples(**pattern)))
            assert a == b

    def test_remove_cleans_indexes(self):
        store = TripleStore()
        store.add("a", "p", "b")
        store.remove("a", "p", "b")
        assert store.count(subject="a") == 0
        assert store.count(predicate="p") == 0
        assert store.count(object="b") == 0


class TestQuery:
    def test_single_pattern(self):
        x = Var("x")
        rows = Query([Pattern(x, "type", "car")]).run(sample_store())
        assert rows == [("herbie",)]

    def test_join_two_patterns(self):
        x = Var("x")
        rows = Query(
            [Pattern(x, "type", "car"), Pattern(x, "size", "small")]
        ).run(sample_store())
        assert rows == [("herbie",)]

    def test_join_is_selective(self):
        x = Var("x")
        # small things that are dogs
        rows = Query(
            [Pattern(x, "size", "small"), Pattern(x, "type", "dog")]
        ).run(sample_store())
        assert rows == [("rex",)]

    def test_multi_variable(self):
        x, y = Var("x"), Var("y")
        rows = Query(
            [Pattern(x, "type", y)], select=[x, y]
        ).run(sample_store())
        assert ("herbie", "car") in rows
        assert ("rex", "dog") in rows
        assert len(rows) == 3

    def test_variable_in_predicate_position(self):
        p = Var("p")
        rows = Query([Pattern("herbie", p, "small")]).run(sample_store())
        assert rows == [("small",)] if False else rows == [("size",)]

    def test_shared_variable_consistency(self):
        x = Var("x")
        # x must be the same in both: size(x) = type-object(x) never holds
        rows = Query(
            [Pattern(x, "size", x)]
        ).run(sample_store())
        assert rows == []

    def test_filters(self):
        x, s = Var("x"), Var("s")
        rows = Query(
            [Pattern(x, "size", s)],
            select=[x],
            filters=[lambda b: b[s] == "big"],
        ).run(sample_store())
        assert rows == [("bigfoot",)]

    def test_projection_unknown_variable_rejected(self):
        x = Var("x")
        with pytest.raises(StoreError):
            Query([Pattern(x, "type", "car")], select=[Var("nope")])

    def test_default_projection_sorted_by_name(self):
        x, y = Var("b"), Var("a")
        query = Query([Pattern(x, "type", y)])
        assert [v.name for v in query.select] == ["a", "b"]

    def test_match_generator_bindings(self):
        x = Var("x")
        bindings = list(match(sample_store(), [Pattern(x, "type", "car")]))
        assert bindings == [{x: "herbie"}]

    def test_empty_patterns_yield_one_empty_binding(self):
        assert list(match(sample_store(), [])) == [{}]


# ---------------------------------------------------------------------- #
# property-based: index coherence — all access paths agree
# ---------------------------------------------------------------------- #

values = st.sampled_from(["a", "b", "c", "d"])
triples_strategy = st.lists(st.tuples(values, values, values), max_size=20)


@settings(max_examples=60, deadline=None)
@given(triples_strategy)
def test_indexed_and_scan_agree(rows):
    indexed = TripleStore(use_indexes=True)
    scanning = TripleStore(use_indexes=False)
    indexed.update(rows)
    scanning.update(rows)
    assert len(indexed) == len(scanning) == len(set(rows))
    for s in (None, "a", "b"):
        for p in (None, "a", "c"):
            for o in (None, "b", "d"):
                a = sorted(map(str, indexed.triples(s, p, o)))
                b = sorted(map(str, scanning.triples(s, p, o)))
                assert a == b


@settings(max_examples=60, deadline=None)
@given(triples_strategy, triples_strategy)
def test_add_remove_roundtrip(keep, drop):
    store = TripleStore()
    store.update(keep)
    store.update(drop)
    for s, p, o in set(drop):
        store.remove(s, p, o)
        # removing must never disturb other triples
    survivors = {tuple(t) for t in store}
    assert survivors == set(map(tuple, keep)) - set(map(tuple, drop))


class TestProvenance:
    def test_untagged_by_default(self):
        store = sample_store()
        assert store.provenance("herbie", "type", "car") is None

    def test_tag_on_add(self):
        store = TripleStore()
        store.add("a", "type", "car", provenance="told")
        assert store.provenance("a", "type", "car") == "told"

    def test_retag_existing(self):
        store = TripleStore()
        store.add("a", "type", "car")
        store.add("a", "type", "car", provenance="imported")
        assert store.provenance("a", "type", "car") == "imported"
        assert len(store) == 1

    def test_remove_clears_tag(self):
        store = TripleStore()
        store.add("a", "type", "car", provenance="told")
        store.remove("a", "type", "car")
        store.add("a", "type", "car")
        assert store.provenance("a", "type", "car") is None

    def test_copy_preserves_tags(self):
        store = TripleStore()
        store.add("a", "type", "car", provenance="told")
        clone = store.copy()
        assert clone.provenance("a", "type", "car") == "told"

    def test_materialize_marks_inferences(self):
        from repro.corpora import vehicle_tbox
        from repro.store import materialize

        store = TripleStore()
        store.add("herbie", "type", "car")
        inferred = materialize(store, vehicle_tbox())
        # the told fact stays untagged; the entailed ones are marked
        assert inferred.provenance("herbie", "type", "car") is None
        assert inferred.provenance("herbie", "type", "motorvehicle") == "inferred"
        assert inferred.provenance("herbie", "type", "roadvehicle") == "inferred"


class TestTransactions:
    def test_commit_on_success(self):
        store = TripleStore()
        with store.transaction():
            store.add("a", "p", "b")
            store.add("c", "p", "d")
        assert len(store) == 2

    def test_rollback_on_exception(self):
        store = TripleStore()
        store.add("keep", "p", "v")
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.add("a", "p", "b")
                store.remove("keep", "p", "v")
                raise RuntimeError("abort")
        assert ("keep", "p", "v") in store
        assert ("a", "p", "b") not in store
        assert len(store) == 1

    def test_rollback_restores_provenance(self):
        store = TripleStore()
        store.add("a", "p", "b", provenance="told")
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.remove("a", "p", "b")
                store.add("a", "p", "b", provenance="inferred")
                raise RuntimeError("abort")
        assert store.provenance("a", "p", "b") == "told"

    def test_rollback_restores_retag(self):
        store = TripleStore()
        store.add("a", "p", "b")
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.add("a", "p", "b", provenance="sneaky")
                raise RuntimeError("abort")
        assert store.provenance("a", "p", "b") is None

    def test_nested_transactions_rejected(self):
        store = TripleStore()
        with pytest.raises(StoreError):
            with store.transaction():
                with store.transaction():
                    pass

    def test_store_usable_after_rollback(self):
        store = TripleStore()
        with pytest.raises(ValueError):
            with store.transaction():
                store.add("a", "p", "b")
                raise ValueError
        with store.transaction():
            store.add("x", "p", "y")
        assert ("x", "p", "y") in store
        assert ("a", "p", "b") not in store

    def test_indexes_consistent_after_rollback(self):
        store = TripleStore()
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.add("a", "p", "b")
                raise RuntimeError
        assert store.count(subject="a") == 0
        assert store.count(predicate="p") == 0
        assert store.estimate(subject="a") == 0


class TestDeleteMatching:
    def test_delete_by_predicate(self):
        store = sample_store()
        removed = store.delete_matching(predicate="size")
        assert removed == 3
        assert store.count(predicate="size") == 0
        assert store.count(predicate="type") == 3

    def test_delete_fully_bound(self):
        store = sample_store()
        assert store.delete_matching("herbie", "type", "car") == 1
        assert store.delete_matching("herbie", "type", "car") == 0

    def test_delete_everything(self):
        store = sample_store()
        assert store.delete_matching() == 7
        assert len(store) == 0

    def test_delete_inside_transaction_rolls_back(self):
        store = sample_store()
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.delete_matching(predicate="type")
                raise RuntimeError("abort")
        assert store.count(predicate="type") == 3
