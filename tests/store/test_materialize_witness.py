"""Inconsistency diagnostics: MaterializeError must name a witness."""

import pytest

from repro.dl import Atomic, Not, only
from repro.dl.tbox import Subsumption, TBox
from repro.robust import Budget
from repro.store import (
    MaterializeError,
    TripleStore,
    instances_of,
    materialize,
    materialize_governed,
)


def disjointness_tbox() -> TBox:
    return TBox([Subsumption(Atomic("A"), Not(Atomic("B")))])


def self_conflicted_store() -> TripleStore:
    store = TripleStore()
    store.update([("ghost", "type", "A"), ("ghost", "type", "B")])
    return store


class TestInconsistencyWitness:
    def test_self_conflicted_individual_named_with_its_assertions(self):
        with pytest.raises(MaterializeError) as excinfo:
            materialize(self_conflicted_store(), disjointness_tbox())
        message = str(excinfo.value)
        assert "'ghost'" in message
        assert "unsatisfiable on its own" in message
        # the message lists the conflicting concept assertions themselves
        assert "A" in message and "B" in message

    def test_cross_individual_conflict_named(self):
        # x : A with A ⊑ ∀r.B forces B onto y, but y : C with C ⊑ ¬B
        tbox = TBox(
            [
                Subsumption(Atomic("A"), only("r", Atomic("B"))),
                Subsumption(Atomic("C"), Not(Atomic("B"))),
            ]
        )
        store = TripleStore()
        store.update([("x", "type", "A"), ("x", "r", "y"), ("y", "type", "C")])
        with pytest.raises(MaterializeError) as excinfo:
            materialize(store, tbox)
        message = str(excinfo.value)
        assert "conflict with" in message
        assert "'x'" in message or "'y'" in message

    def test_instances_of_carries_the_same_witness(self):
        with pytest.raises(MaterializeError) as excinfo:
            instances_of(self_conflicted_store(), disjointness_tbox(), Atomic("A"))
        assert "'ghost'" in str(excinfo.value)

    def test_governed_materialization_still_raises_on_real_inconsistency(self):
        # a provably inconsistent store is a data defect, not a resource
        # problem: the governed path must raise, not report UNKNOWN
        with pytest.raises(MaterializeError) as excinfo:
            materialize_governed(
                self_conflicted_store(),
                disjointness_tbox(),
                budget=Budget(max_nodes=2000),
            )
        assert "'ghost'" in str(excinfo.value)
