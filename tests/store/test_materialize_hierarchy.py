"""Tests for hierarchy-propagated materialization.

The hierarchy-aware path (classify once, candidate-driven instance
checks, upward closure over ancestors) must be a pure optimisation: the
resulting store is identical to the exhaustive (individual × concept)
oracle, only cheaper.  The counters ``materialize.instance_checks`` and
``materialize.pruned_checks`` make "cheaper" checkable.
"""

from repro.corpora.generators import random_tbox
from repro.corpora.vehicles import vehicle_tbox
from repro.dl import Reasoner, classify
from repro.obs import Recorder, use_recorder
from repro.store import TripleStore, materialize


def vehicle_store() -> TripleStore:
    store = TripleStore()
    store.update(
        [
            ("herbie", "type", "car"),
            ("bigfoot", "type", "pickup"),
            ("kitt", "type", "motorvehicle"),
            ("herbie", "uses", "premium_gasoline"),
        ]
    )
    return store


def random_store(tbox, n_individuals: int = 8) -> TripleStore:
    names = sorted(tbox.atomic_names())
    store = TripleStore()
    for i in range(n_individuals):
        store.add(f"x{i}", "type", names[i % len(names)])
    return store


def _materialize_counting(store, tbox, **kwargs):
    recorder = Recorder()
    with use_recorder(recorder):
        result = materialize(store, tbox, **kwargs)
    return result, recorder.counters


class TestHierarchyMatchesExhaustive:
    def test_vehicles_identical_stores(self):
        store = vehicle_store()
        fast = materialize(store, vehicle_tbox())
        slow = materialize(store, vehicle_tbox(), use_hierarchy=False)
        assert set(fast) == set(slow)

    def test_random_tboxes_identical_stores(self):
        for seed in (1, 5, 9):
            tbox = random_tbox(seed, n_defined=6, n_primitive=4, n_roles=2)
            store = random_store(tbox)
            fast = materialize(store, tbox)
            slow = materialize(store, tbox, use_hierarchy=False)
            assert set(fast) == set(slow), f"seed {seed}"

    def test_provenance_preserved(self):
        result = materialize(vehicle_store(), vehicle_tbox())
        inferred = {
            tuple(t) for t in result if result.provenance(*t) == "inferred"
        }
        assert ("herbie", "type", "motorvehicle") in inferred
        assert ("herbie", "type", "car") not in inferred


class TestPruning:
    def test_hierarchy_spends_fewer_instance_checks(self):
        store = vehicle_store()
        _, fast = _materialize_counting(store, vehicle_tbox())
        _, slow = _materialize_counting(
            store, vehicle_tbox(), use_hierarchy=False
        )
        assert fast["materialize.instance_checks"] < slow[
            "materialize.instance_checks"
        ]
        assert fast["materialize.pruned_checks"] > 0
        assert "materialize.pruned_checks" not in slow

    def test_told_types_cost_no_checks(self):
        # an individual told to be a leaf concept gets its whole ancestor
        # chain for free; only sibling subtrees still need probing
        tbox = vehicle_tbox()
        store = TripleStore()
        store.add("herbie", "type", "car")
        _, counters = _materialize_counting(store, tbox)
        hierarchy = classify(tbox)
        free = {"car"} | {
            a for a in hierarchy.ancestors("car") if a not in ("⊤", "⊥")
        }
        live = len(tbox.atomic_names())
        assert counters["materialize.instance_checks"] <= live - len(free)

    def test_facts_added_counted(self):
        _, counters = _materialize_counting(vehicle_store(), vehicle_tbox())
        assert counters["materialize.facts_added"] > 0
        assert counters["materialize.runs"] == 1


class TestHierarchyReuse:
    def test_prebuilt_hierarchy_skips_classification(self):
        tbox = vehicle_tbox()
        reasoner = Reasoner(tbox)
        hierarchy = reasoner.classify()
        _, counters = _materialize_counting(
            vehicle_store(), tbox, reasoner=reasoner, hierarchy=hierarchy
        )
        assert "hierarchy.classifications" not in counters
        assert "reasoner.classify_cache_misses" not in counters

    def test_shared_reasoner_classifies_once(self):
        tbox = vehicle_tbox()
        reasoner = Reasoner(tbox)
        recorder = Recorder()
        with use_recorder(recorder):
            materialize(vehicle_store(), tbox, reasoner=reasoner)
            materialize(vehicle_store(), tbox, reasoner=reasoner)
        assert recorder.counters["reasoner.classify_cache_misses"] == 1
        assert recorder.counters["reasoner.classify_cache_hits"] == 1

    def test_explicit_hierarchy_param_used(self):
        tbox = vehicle_tbox()
        hierarchy = classify(tbox)
        result = materialize(vehicle_store(), tbox, hierarchy=hierarchy)
        baseline = materialize(vehicle_store(), tbox)
        assert set(result) == set(baseline)
