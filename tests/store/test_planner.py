"""Tests for cardinality estimation and join ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import Pattern, Query, StoreError, TripleStore, Var, match


def skewed_store() -> TripleStore:
    """One huge predicate, one tiny: join order matters here."""
    store = TripleStore()
    for i in range(300):
        store.add(f"s{i}", "common", f"o{i % 10}")
    store.add("s5", "rare", "target")
    store.add("s6", "rare", "other")
    return store


class TestEstimate:
    def test_unbound_is_store_size(self):
        store = skewed_store()
        assert store.estimate() == len(store)

    def test_bound_subject(self):
        store = skewed_store()
        assert store.estimate(subject="s5") == 2  # one common + one rare triple
        assert store.estimate(subject="ghost") == 0

    def test_bound_predicate(self):
        store = skewed_store()
        assert store.estimate(predicate="rare") == 2
        assert store.estimate(predicate="common") == 300
        assert store.estimate(predicate="ghost") == 0

    def test_bound_subject_predicate(self):
        store = skewed_store()
        assert store.estimate(subject="s5", predicate="rare") == 1
        assert store.estimate(subject="s5", predicate="ghost") == 0

    def test_bound_predicate_object(self):
        store = skewed_store()
        assert store.estimate(predicate="rare", object="target") == 1

    def test_bound_object_only(self):
        store = skewed_store()
        assert store.estimate(object="target") == 1
        assert store.estimate(object="ghost") == 0

    def test_estimate_is_upper_bound(self):
        store = skewed_store()
        patterns = [
            {}, {"subject": "s5"}, {"predicate": "rare"},
            {"object": "o1"}, {"subject": "s5", "predicate": "common"},
        ]
        for kw in patterns:
            assert store.count(**kw) <= store.estimate(**kw)


class TestJoinOrdering:
    def query(self, order):
        x, y = Var("x"), Var("y")
        return Query(
            [Pattern(x, "common", y), Pattern(x, "rare", "target")],
            select=[x],
            order=order,
        )

    def test_all_orders_same_answers(self):
        store = skewed_store()
        results = {
            order: self.query(order).run(store)
            for order in ("selectivity", "most-bound", "static")
        }
        assert results["selectivity"] == results["most-bound"] == results["static"]
        assert results["selectivity"] == [("s5",)]

    def test_unknown_order_rejected(self):
        store = skewed_store()
        x = Var("x")
        with pytest.raises(StoreError):
            list(match(store, [Pattern(x, "rare", "target")], order="chaotic"))

    def test_selectivity_explores_less(self):
        """Count store accesses: selectivity order must touch fewer triples."""

        class CountingStore(TripleStore):
            def __init__(self):
                super().__init__()
                self.scanned = 0

            def triples(self, subject=None, predicate=None, object=None):
                for t in super().triples(subject, predicate, object):
                    self.scanned += 1
                    yield t

        def run(order):
            store = CountingStore()
            for i in range(300):
                store.add(f"s{i}", "common", f"o{i % 10}")
            store.add("s5", "rare", "target")
            x, y = Var("x"), Var("y")
            list(
                match(
                    store,
                    [Pattern(x, "common", y), Pattern(x, "rare", "target")],
                    order=order,
                )
            )
            return store.scanned

        assert run("selectivity") < run("static")


# ---------------------------------------------------------------------- #
# property-based: all join orders agree
# ---------------------------------------------------------------------- #

values = st.sampled_from(["a", "b", "c"])
triples_strategy = st.lists(st.tuples(values, values, values), max_size=15)


@settings(max_examples=50, deadline=None)
@given(triples_strategy)
def test_orders_agree_on_random_data(rows):
    store = TripleStore()
    store.update(rows)
    x, y = Var("x"), Var("y")
    patterns = [Pattern(x, "a", y), Pattern(y, "b", x)]
    expected = None
    for order in ("selectivity", "most-bound", "static"):
        got = sorted(
            tuple(sorted((v.name, val) for v, val in b.items()))
            for b in match(store, patterns, order=order)
        )
        if expected is None:
            expected = got
        assert got == expected


@settings(max_examples=50, deadline=None)
@given(triples_strategy)
def test_estimate_never_undercounts(rows):
    store = TripleStore()
    store.update(rows)
    for s in (None, "a"):
        for p in (None, "b"):
            for o in (None, "c"):
                assert store.count(s, p, o) <= store.estimate(s, p, o)
