"""Crash-safe persistence: atomic replace, torn-write recovery, hardened loads."""

import pytest

from repro.obs import Recorder, use_recorder
from repro.robust.faults import FaultPlan, use_faults
from repro.store import StoreError, TripleStore, load_jsonl, save_jsonl
from repro.store import persistence as persistence_module


def plain(store: TripleStore) -> set:
    """Triples as plain tuples, for comparison against literals."""
    return {tuple(triple) for triple in store}


def small_store() -> TripleStore:
    store = TripleStore()
    store.update(
        [
            ("herbie", "type", "car"),
            ("herbie", "wheels", 4),
            ("bigfoot", "type", "pickup"),
        ]
    )
    return store


class TestAtomicSave:
    def test_roundtrip_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "store.jsonl"
        assert save_jsonl(small_store(), path) == 3
        assert plain(load_jsonl(path)) == plain(small_store())
        assert [p.name for p in tmp_path.iterdir()] == ["store.jsonl"]

    def test_crash_during_replace_preserves_old_content(self, tmp_path, monkeypatch):
        path = tmp_path / "store.jsonl"
        save_jsonl(small_store(), path)
        before = path.read_text(encoding="utf-8")

        def exploding_replace(src, dst):
            raise OSError("simulated crash at the rename boundary")

        bigger = small_store()
        bigger.add("herbie", "color", "white")
        monkeypatch.setattr(persistence_module.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_jsonl(bigger, path)
        # the destination kept its previous complete payload...
        assert path.read_text(encoding="utf-8") == before
        # ...and the temp file was cleaned up on the way out
        assert [p.name for p in tmp_path.iterdir()] == ["store.jsonl"]

    def test_torn_write_recovered_transparently(self, tmp_path):
        path = tmp_path / "store.jsonl"
        recorder = Recorder()
        with use_recorder(recorder), use_faults(FaultPlan.always("torn-write")):
            save_jsonl(small_store(), path)
        assert recorder.counters["store.torn_writes_recovered"] == 1
        assert recorder.counters["faults.fired.torn-write"] == 1
        assert plain(load_jsonl(path)) == plain(small_store())

    def test_non_scalar_value_rejected_before_touching_disk(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_jsonl(small_store(), path)
        before = path.read_text(encoding="utf-8")
        bad = TripleStore()
        bad.add("x", "payload", ("not", "a", "scalar"))
        with pytest.raises(StoreError):
            save_jsonl(bad, path)
        assert path.read_text(encoding="utf-8") == before


class TestHardenedLoad:
    def _corrupt_file(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(
            "\n".join(
                [
                    '["herbie", "type", "car"]',
                    '{"not": "an array"}',
                    '["too", "short"]',
                    "this is not json at all",
                    '["ok", "after", "garbage"]',
                    '["x", "y", ["nested", "value"]]',
                ]
            )
            + "\n",
            encoding="utf-8",
        )
        return path

    def test_strict_load_names_file_and_line(self, tmp_path):
        path = self._corrupt_file(tmp_path)
        with pytest.raises(StoreError) as excinfo:
            load_jsonl(path)
        assert f"{path}:2" in str(excinfo.value)

    def test_strict_is_the_default(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text("garbage\n", encoding="utf-8")
        with pytest.raises(StoreError) as excinfo:
            load_jsonl(path)
        assert "invalid JSON" in str(excinfo.value)

    def test_non_strict_skips_and_counts(self, tmp_path):
        path = self._corrupt_file(tmp_path)
        recorder = Recorder()
        with use_recorder(recorder):
            store = load_jsonl(path, strict=False)
        assert plain(store) == {
            ("herbie", "type", "car"),
            ("ok", "after", "garbage"),
        }
        assert recorder.counters["store.corrupt_lines_skipped"] == 4

    def test_blank_lines_are_not_corruption(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('\n["a", "b", "c"]\n\n', encoding="utf-8")
        assert plain(load_jsonl(path)) == {("a", "b", "c")}
