"""Focused coverage for :mod:`repro.store.query`.

Complements ``test_triples_query.py`` (which exercises the store/query
happy paths) with the edge matrix this PR's checklist calls out: filter
combinations, empty-result paths, and malformed patterns/orders.
"""

import pytest

from repro.obs import Recorder, use_recorder
from repro.store import Pattern, Query, StoreError, TripleStore, Var, match

X, Y, Z = Var("x"), Var("y"), Var("z")


def garage():
    store = TripleStore()
    store.add("herbie", "type", "car")
    store.add("rex", "type", "pickup")
    store.add("bessie", "type", "pickup")
    store.add("herbie", "uses", "gasoline")
    store.add("rex", "uses", "diesel")
    store.add("bessie", "uses", "diesel")
    store.add("herbie", "year", 1963)
    store.add("rex", "year", 1979)
    return store


class TestFilterCombinations:
    def test_two_filters_conjoin(self):
        rows = Query(
            [Pattern(X, "type", Y)],
            select=[X],
            filters=[
                lambda b: b[Y] == "pickup",
                lambda b: b[X] != "rex",
            ],
        ).run(garage())
        assert rows == [("bessie",)]

    def test_filter_across_joined_variables(self):
        rows = Query(
            [Pattern(X, "type", Y), Pattern(X, "uses", Z)],
            select=[X],
            filters=[lambda b: (b[Y], b[Z]) == ("pickup", "diesel")],
        ).run(garage())
        assert rows == [("bessie",), ("rex",)]

    def test_filter_on_non_string_values(self):
        rows = Query(
            [Pattern(X, "year", Y)],
            select=[X],
            filters=[lambda b: b[Y] < 1970],
        ).run(garage())
        assert rows == [("herbie",)]

    def test_filters_see_complete_bindings_only(self):
        seen = []

        def spy(bindings):
            seen.append(set(bindings))
            return True

        Query(
            [Pattern(X, "type", Y), Pattern(X, "uses", Z)], filters=[spy]
        ).run(garage())
        assert seen and all(keys == {X, Y, Z} for keys in seen)


class TestEmptyResults:
    def test_no_matching_triples(self):
        assert Query([Pattern(X, "type", "submarine")]).run(garage()) == []

    def test_empty_store(self):
        assert Query([Pattern(X, Y, Z)]).run(TripleStore()) == []

    def test_filter_rejects_everything(self):
        rows = Query(
            [Pattern(X, "type", Y)], filters=[lambda b: False]
        ).run(garage())
        assert rows == []

    def test_inconsistent_shared_variable(self):
        # no x has type "car" AND uses "diesel"
        rows = Query(
            [Pattern(X, "type", "car"), Pattern(X, "uses", "diesel")]
        ).run(garage())
        assert rows == []

    def test_no_solutions_counter_stays_zero(self):
        recorder = Recorder()
        with use_recorder(recorder):
            list(match(garage(), [Pattern(X, "type", "submarine")]))
        assert recorder.counters["store.query.joins"] == 1
        assert "store.query.solutions" not in recorder.counters


class TestMalformedQueries:
    def test_unknown_join_order_raises(self):
        with pytest.raises(StoreError) as info:
            list(match(garage(), [Pattern(X, "type", Y)], order="sideways"))
        assert "sideways" in str(info.value)

    def test_query_ctor_rejects_unknown_order_at_run(self):
        query = Query([Pattern(X, "type", Y)], order="sideways")
        with pytest.raises(StoreError):
            query.run(garage())

    def test_projection_of_unused_variable_raises(self):
        with pytest.raises(StoreError) as info:
            Query([Pattern(X, "type", "car")], select=[X, Z])
        assert "?z" in str(info.value)

    def test_fully_concrete_pattern_is_a_membership_test(self):
        rows = list(match(garage(), [Pattern("herbie", "type", "car")]))
        assert rows == [{}]
        assert list(match(garage(), [Pattern("herbie", "type", "boat")])) == []


class TestJoinOrders:
    @pytest.mark.parametrize("order", ["selectivity", "most-bound", "static"])
    def test_all_orders_agree(self, order):
        rows = Query(
            [Pattern(X, "type", Y), Pattern(X, "uses", Z)], order=order
        ).run(garage())
        assert rows == [
            ("bessie", "pickup", "diesel"),
            ("herbie", "car", "gasoline"),
            ("rex", "pickup", "diesel"),
        ]

    def test_order_choice_is_recorded(self):
        recorder = Recorder()
        with use_recorder(recorder):
            Query([Pattern(X, "type", Y)], order="static").run(garage())
        assert recorder.counters["store.query.order.static"] == 1

    def test_run_deduplicates_projection(self):
        # two pickups project onto the same ("pickup",) row
        rows = Query([Pattern(X, "type", Y)], select=[Y]).run(garage())
        assert rows == [("car",), ("pickup",)]
