"""Unit tests for DL-backed materialization and JSONL persistence."""

import pytest

from repro.corpora.vehicles import vehicle_tbox
from repro.dl import Atomic, parse_concept
from repro.store import (
    MaterializeError,
    StoreError,
    TripleStore,
    instances_of,
    load_jsonl,
    materialize,
    save_jsonl,
    store_to_abox,
)


def instance_store() -> TripleStore:
    store = TripleStore()
    store.update(
        [
            ("herbie", "type", "car"),
            ("bigfoot", "type", "pickup"),
            ("herbie", "color", "white"),  # not terminology-relevant
            ("herbie", "uses", "premium_gasoline"),
        ]
    )
    return store


class TestStoreToABox:
    def test_concept_and_role_assertions_extracted(self):
        abox = store_to_abox(instance_store(), vehicle_tbox())
        assert len(abox.concept_assertions()) == 2
        assert len(abox.role_assertions()) == 1  # uses is a TBox role
        assert abox.individuals() >= {"herbie", "bigfoot"}

    def test_unknown_concepts_ignored(self):
        store = TripleStore()
        store.add("x", "type", "spaceship")
        abox = store_to_abox(store, vehicle_tbox())
        assert len(abox) == 0

    def test_non_string_type_object_rejected(self):
        store = TripleStore()
        store.add("x", "type", 42)
        with pytest.raises(MaterializeError):
            store_to_abox(store, vehicle_tbox())


class TestMaterialize:
    def test_inferred_types_written_back(self):
        result = materialize(instance_store(), vehicle_tbox())
        # car ⊑ motorvehicle ⊓ roadvehicle: both inferred
        assert ("herbie", "type", "motorvehicle") in result
        assert ("herbie", "type", "roadvehicle") in result
        assert ("bigfoot", "type", "motorvehicle") in result
        # told facts and plain data survive
        assert ("herbie", "type", "car") in result
        assert ("herbie", "color", "white") in result

    def test_original_store_untouched(self):
        store = instance_store()
        materialize(store, vehicle_tbox())
        assert ("herbie", "type", "motorvehicle") not in store

    def test_no_cross_contamination(self):
        result = materialize(instance_store(), vehicle_tbox())
        assert ("herbie", "type", "pickup") not in result
        assert ("bigfoot", "type", "car") not in result

    def test_empty_store(self):
        result = materialize(TripleStore(), vehicle_tbox())
        assert len(result) == 0

    def test_queries_after_materialization(self):
        from repro.store import Pattern, Query, Var

        result = materialize(instance_store(), vehicle_tbox())
        x = Var("x")
        rows = Query([Pattern(x, "type", "motorvehicle")]).run(result)
        assert rows == [("bigfoot",), ("herbie",)]


class TestInstancesOf:
    def test_atomic_query(self):
        rows = instances_of(instance_store(), vehicle_tbox(), Atomic("motorvehicle"))
        assert rows == ["bigfoot", "herbie"]

    def test_complex_concept_query(self):
        concept = parse_concept("some uses.gasoline")
        rows = instances_of(instance_store(), vehicle_tbox(), concept)
        assert "herbie" in rows and "bigfoot" in rows

    def test_empty_store_no_answers(self):
        assert instances_of(TripleStore(), vehicle_tbox(), Atomic("car")) == []


class TestPersistence:
    def test_round_trip(self, tmp_path):
        store = instance_store()
        path = tmp_path / "facts.jsonl"
        written = save_jsonl(store, path)
        assert written == len(store)
        loaded = load_jsonl(path)
        assert {tuple(t) for t in loaded} == {tuple(t) for t in store}

    def test_empty_round_trip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_jsonl(TripleStore(), path)
        assert len(load_jsonl(path)) == 0

    def test_numbers_and_none_survive(self, tmp_path):
        store = TripleStore()
        store.add("x", "count", 4)
        store.add("x", "ratio", 0.5)
        store.add("x", "note", None)
        path = tmp_path / "mixed.jsonl"
        save_jsonl(store, path)
        loaded = load_jsonl(path)
        assert ("x", "count", 4) in loaded
        assert ("x", "ratio", 0.5) in loaded
        assert ("x", "note", None) in loaded

    def test_non_scalar_rejected(self, tmp_path):
        store = TripleStore()
        store.add("x", "p", ("tu", "ple"))
        with pytest.raises(StoreError):
            save_jsonl(store, tmp_path / "bad.jsonl")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('["a", "b", "c"]\nnot json\n', encoding="utf-8")
        with pytest.raises(StoreError):
            load_jsonl(path)

    def test_wrong_arity_rejected(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text('["a", "b"]\n', encoding="utf-8")
        with pytest.raises(StoreError):
            load_jsonl(path)
