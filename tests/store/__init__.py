"""Test package."""
