"""Integration tests: pipelines spanning several subpackages.

Each test exercises a realistic end-to-end flow — the library as a
downstream user would compose it — rather than one module's contract.
"""

import pytest

from repro import (
    Atomic,
    Pattern,
    Query,
    Reasoner,
    TripleStore,
    Var,
    classify,
    critique,
    instances_of,
    materialize,
    parse_concept,
    parse_tbox,
)
from repro.core import Section, Severity
from repro.corpora import (
    age_lexicalizations,
    animal_tbox,
    vehicle_tbox,
)
from repro.order import Poset
from repro.osa import (
    AttributeValueAxiom,
    DataDomain,
    DisjointAxiom,
    Equation,
    EquationalTheory,
    OntologySignature,
    Ontonomy,
    OpDecl,
    OrderSortedSignature,
    OSApp,
    OSVar,
    SignatureModel,
    constant,
    term_algebra,
)


class TestInformationSystemPipeline:
    """store → materialize → query → critique: the EDBT scenario."""

    def build_fleet(self) -> TripleStore:
        store = TripleStore()
        store.update(
            [
                ("herbie", "type", "car"),
                ("bigfoot", "type", "pickup"),
                ("van", "type", "motorvehicle"),
            ]
        )
        return store

    def test_materialized_store_answers_taxonomic_queries(self):
        tbox = vehicle_tbox()
        inferred = materialize(self.build_fleet(), tbox)
        x = Var("x")
        motor = Query([Pattern(x, "type", "motorvehicle")]).run(inferred)
        assert motor == [("bigfoot",), ("herbie",), ("van",)]
        road = Query([Pattern(x, "type", "roadvehicle")]).run(inferred)
        assert road == [("bigfoot",), ("herbie",)]

    def test_complex_concept_queries_without_materializing(self):
        tbox = vehicle_tbox()
        rows = instances_of(
            self.build_fleet(), tbox, parse_concept("some uses.gasoline")
        )
        assert rows == ["bigfoot", "herbie", "van"]

    def test_critique_of_the_deployed_ontology(self):
        tbox = vehicle_tbox()
        report = critique(
            tbox,
            label="fleet ontology",
            contrast_tboxes=[("animals", animal_tbox())],
            lexicalizations=age_lexicalizations(),
            regress_term="car",
        )
        # the deployed ontology has the full §2+§3 defect set
        codes = {f.code for f in report.defects()}
        assert "meaning-collision-cross" in codes
        assert "confusable-sibling" in codes
        assert "guarino-overbreadth" in codes
        # and the render names the artifact
        assert "fleet ontology" in report.render()


class TestDLtoBCMBridge:
    """Rebuild the vehicle taxonomy in the BCM formalism and cross-check
    the inferred DL hierarchy against the declared class hierarchy."""

    def size_domain(self) -> DataDomain:
        sig = OrderSortedSignature(
            Poset(["Size"], []),
            [OpDecl("small", (), "Size"), OpDecl("big", (), "Size")],
        )
        theory = EquationalTheory(sig, [])
        return DataDomain(theory, term_algebra(theory))

    def test_hierarchies_agree(self):
        hierarchy = classify(vehicle_tbox())
        classes = ["car", "pickup", "motorvehicle", "roadvehicle"]
        pairs = [
            (a, b)
            for a in classes
            for b in classes
            if a != b and hierarchy.is_subsumed_by(a, b)
        ]
        bcm_classes = Poset(classes, pairs)
        signature = OntologySignature(
            self.size_domain(),
            bcm_classes,
            {(c, "Size"): {"size"} for c in classes},
        )
        # the DL-inferred order IS the BCM class hierarchy
        assert signature.classes.leq("car", "motorvehicle")
        assert signature.classes.leq("pickup", "roadvehicle")
        assert not signature.classes.leq("motorvehicle", "car")

    def test_bcm_model_checks_the_same_facts(self):
        hierarchy = classify(vehicle_tbox())
        classes = ["car", "pickup", "motorvehicle", "roadvehicle"]
        pairs = [
            (a, b)
            for a in classes
            for b in classes
            if a != b and hierarchy.is_subsumed_by(a, b)
        ]
        signature = OntologySignature(
            self.size_domain(),
            Poset(classes, pairs),
            {(c, "Size"): {"size"} for c in classes},
        )
        onto = Ontonomy(
            signature,
            [
                DisjointAxiom("car", "pickup"),
                AttributeValueAxiom("car", "size", frozenset({constant("small")})),
            ],
        )
        small, big = constant("small"), constant("big")
        model = SignatureModel(
            signature,
            {
                "car": ["herbie"],
                "pickup": ["bigfoot"],
                "motorvehicle": ["herbie", "bigfoot"],
                "roadvehicle": ["herbie", "bigfoot"],
            },
            {
                ("car", "size"): {"herbie": small},
                ("pickup", "size"): {"bigfoot": big},
                ("motorvehicle", "size"): {"herbie": small, "bigfoot": big},
                ("roadvehicle", "size"): {"herbie": small, "bigfoot": big},
            },
        )
        assert onto.is_model(model)


class TestOSAFullStack:
    """theory → initial algebra → data domain → signature → ontonomy."""

    def test_end_to_end(self):
        sig = OrderSortedSignature(
            Poset(["Flag"], []),
            [
                OpDecl("yes", (), "Flag"),
                OpDecl("no", (), "Flag"),
                OpDecl("neg", ("Flag",), "Flag"),
            ],
        )
        theory = EquationalTheory(
            sig,
            [
                Equation(OSApp("neg", (constant("yes"),)), constant("no")),
                Equation(OSApp("neg", (constant("no"),)), constant("yes")),
            ],
        )
        domain = DataDomain(theory, term_algebra(theory))
        classes = Poset(["thing", "gadget"], [("gadget", "thing")])
        signature = OntologySignature(
            domain,
            classes,
            {("thing", "Flag"): {"powered"}, ("gadget", "Flag"): {"powered"}},
        )
        onto = Ontonomy(
            signature,
            [AttributeValueAxiom("gadget", "powered", frozenset({constant("yes")}))],
        )
        model = SignatureModel(
            signature,
            {"thing": ["rock", "phone"], "gadget": ["phone"]},
            {
                ("thing", "powered"): {"rock": constant("no"), "phone": constant("yes")},
                ("gadget", "powered"): {"phone": constant("yes")},
            },
        )
        assert onto.is_model(model)
        # flipping the phone's flag breaks the axiom
        broken = SignatureModel(
            signature,
            {"thing": ["rock", "phone"], "gadget": ["phone"]},
            {
                ("thing", "powered"): {"rock": constant("no"), "phone": constant("no")},
                ("gadget", "powered"): {"phone": constant("no")},
            },
        )
        assert not onto.is_model(broken)


class TestCritiqueAgainstItsOwnSubstrates:
    """The engine run over artifacts the other substrates produced."""

    def test_random_information_system_roundtrip(self, tmp_path):
        from repro.corpora import random_tbox
        from repro.store import load_jsonl, save_jsonl

        tbox = random_tbox(99, n_defined=4, n_primitive=3, n_roles=2)
        defined = sorted(tbox.defined_names())
        store = TripleStore()
        for i, name in enumerate(defined):
            store.add(f"item{i}", "type", name)
        inferred = materialize(store, tbox)
        path = tmp_path / "system.jsonl"
        save_jsonl(inferred, path)
        reloaded = load_jsonl(path)
        assert {tuple(t) for t in reloaded} == {tuple(t) for t in inferred}

        report = critique(tbox, label="generated ontology")
        assert report.by_code("confusable-sibling")
        assert report.section(Section.PRAGMATIC)

    def test_reasoner_and_engine_agree_on_collisions(self):
        # if the engine says car ≡ pickup structurally, the REASONER must
        # still distinguish them (they are not logically equivalent) —
        # the whole point: structure identifies what logic separates
        tbox = vehicle_tbox()
        report = critique(tbox, label="v")
        internal = [
            f for f in report.by_code("meaning-collision") if "car" in f.title
        ]
        assert internal  # structural identity found
        r = Reasoner(tbox)
        assert not r.equivalent(Atomic("car"), Atomic("pickup"))


class TestFullCircleSerialization:
    """Build a sibling programmatically, serialize it, critique via CLI."""

    def test_sibling_round_trip_through_cli(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.core import confusable_sibling
        from repro.dl import tbox_to_text

        tbox = vehicle_tbox()
        sibling, name_map, _ = confusable_sibling(tbox, suffix="_x")

        original_path = tmp_path / "vehicles.tbox"
        sibling_path = tmp_path / "sibling.tbox"
        original_path.write_text(tbox_to_text(tbox), encoding="utf-8")
        sibling_path.write_text(tbox_to_text(sibling), encoding="utf-8")

        code = main(
            ["critique", str(original_path), "--contrast", str(sibling_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        # the CLI finds the cross-collision with the manufactured rival
        assert f"car means the same as sibling's {name_map['car']}" in out

    def test_serialized_tbox_reasoner_equivalent(self, tmp_path):
        from repro.dl import Atomic, classify, parse_tbox, tbox_to_text

        tbox = vehicle_tbox()
        reparsed = parse_tbox(tbox_to_text(tbox))
        h1, h2 = classify(tbox), classify(reparsed)
        assert h1.poset == h2.poset
