"""Test package."""
