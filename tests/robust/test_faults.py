"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.obs import Recorder, use_recorder
from repro.robust import Budget, BudgetExhausted, faults
from repro.robust.faults import (
    FaultPlan,
    NULL_PLAN,
    get_plan,
    plan_from_env,
    should_fire,
    use_faults,
)


class TestFaultPlan:
    def test_rejects_unknown_kinds(self):
        with pytest.raises(ValueError):
            FaultPlan({"exhaustion", "disk-on-fire"})
        with pytest.raises(ValueError):
            FaultPlan({"exhaustion"}, period=0)

    def test_schedule_is_deterministic(self):
        first = FaultPlan({"exhaustion"}, period=3, seed=7)
        second = FaultPlan({"exhaustion"}, period=3, seed=7)
        pattern = [first.fires("exhaustion") for _ in range(30)]
        assert pattern == [second.fires("exhaustion") for _ in range(30)]
        assert pattern.count(True) == 10  # every period-th activation

    def test_seed_shifts_the_schedule(self):
        base = FaultPlan({"deadline"}, period=5, seed=0)
        shifted = FaultPlan({"deadline"}, period=5, seed=1)
        base_pattern = [base.fires("deadline") for _ in range(20)]
        shifted_pattern = [shifted.fires("deadline") for _ in range(20)]
        assert base_pattern != shifted_pattern
        assert base_pattern.count(True) == shifted_pattern.count(True) == 4

    def test_unarmed_kind_never_fires(self):
        plan = FaultPlan.always("torn-write")
        assert not any(plan.fires("exhaustion") for _ in range(10))
        assert all(plan.fires("torn-write") for _ in range(10))


class TestCurrentPlan:
    def test_use_faults_restores_previous(self):
        before = get_plan()
        with use_faults(FaultPlan.always("exhaustion")) as plan:
            assert get_plan() is plan
        assert get_plan() is before

    def test_suspended_disarms(self):
        with use_faults(FaultPlan.always("exhaustion")):
            with faults.suspended():
                assert get_plan() is NULL_PLAN
                assert not should_fire("exhaustion")
            assert should_fire("exhaustion")

    def test_firing_increments_counter(self):
        recorder = Recorder()
        with use_recorder(recorder), use_faults(FaultPlan.always("torn-write")):
            assert should_fire("torn-write")
            assert should_fire("torn-write")
        assert recorder.counters["faults.fired.torn-write"] == 2

    def test_budget_consults_plan_on_first_generation_only(self):
        with use_faults(FaultPlan.always("exhaustion")):
            with pytest.raises(BudgetExhausted) as excinfo:
                Budget(max_nodes=1000).note_nodes(1)
            assert "injected" in excinfo.value.reason
            # escalated budgets bypass injection so recovery can converge
            Budget(max_nodes=1000).escalated().note_nodes(1)

    def test_deadline_injection(self):
        with use_faults(FaultPlan.always("deadline")):
            with pytest.raises(BudgetExhausted):
                Budget(max_ms=60_000).check_deadline()


class TestPlanFromEnv:
    def test_unset_yields_null_plan(self):
        assert plan_from_env({}) is NULL_PLAN
        assert plan_from_env({"REPRO_FAULTS": ""}) is NULL_PLAN

    def test_kinds_and_tuning(self):
        plan = plan_from_env(
            {
                "REPRO_FAULTS": "exhaustion, torn-write",
                "REPRO_FAULTS_PERIOD": "9",
                "REPRO_FAULTS_SEED": "4",
            }
        )
        assert plan.kinds == {"exhaustion", "torn-write"}
        assert plan.period == 9
        assert plan.seed == 4

    def test_unknown_kinds_ignored_not_fatal(self):
        plan = plan_from_env({"REPRO_FAULTS": "exhaustion,typo-kind"})
        assert plan.kinds == {"exhaustion"}
        assert plan_from_env({"REPRO_FAULTS": "typo-kind"}) is NULL_PLAN
