"""Unit tests for Budget and Verdict mechanics."""

import time

import pytest

from repro.robust import (
    Budget,
    BudgetExhausted,
    DISPROVED,
    PROVED,
    Verdict,
    faults,
    retry_with_escalation,
)


@pytest.fixture(autouse=True)
def quiet_faults():
    """These tests assert exact limit behavior; injected faults would lie."""
    with faults.suspended():
        yield


class TestVerdict:
    def test_definite_verdicts(self):
        assert PROVED.is_definite and PROVED.as_bool() is True
        assert DISPROVED.is_definite and DISPROVED.as_bool() is False
        assert Verdict.from_bool(True) == PROVED
        assert Verdict.from_bool(False) == DISPROVED

    def test_unknown_carries_reason(self):
        verdict = Verdict.unknown("nodes: 11 > max_nodes=10")
        assert verdict.is_unknown and not verdict.is_definite
        assert "max_nodes=10" in verdict.reason
        assert "max_nodes=10" in str(verdict)
        with pytest.raises(ValueError):
            verdict.as_bool()

    def test_negation(self):
        assert PROVED.negated() == DISPROVED
        assert DISPROVED.negated() == PROVED
        unknown = Verdict.unknown("why")
        assert unknown.negated() is unknown


class TestBudget:
    def test_node_limit(self):
        budget = Budget(max_nodes=10)
        budget.note_nodes(10)  # at the limit is fine
        with pytest.raises(BudgetExhausted) as excinfo:
            budget.note_nodes(11)
        assert "max_nodes=10" in excinfo.value.reason

    def test_branch_limit(self):
        budget = Budget(max_branches=2)
        budget.charge_branch()
        budget.charge_branch()
        with pytest.raises(BudgetExhausted) as excinfo:
            budget.charge_branch()
        assert "max_branches=2" in excinfo.value.reason

    def test_deadline(self):
        budget = Budget(max_ms=0.01)
        time.sleep(0.002)
        with pytest.raises(BudgetExhausted) as excinfo:
            budget.check_deadline()
        assert "deadline" in excinfo.value.reason

    def test_unlimited_never_trips(self):
        budget = Budget.unlimited()
        budget.note_nodes(10**9)
        budget.charge_branch(10**9)
        budget.check_deadline()

    def test_child_shares_deadline_but_not_counters(self):
        budget = Budget(max_nodes=5, max_ms=60_000)
        budget.note_nodes(5)
        child = budget.child()
        assert child.nodes == 0 and child.max_nodes == 5
        assert child._deadline == budget._deadline
        child.note_nodes(3)
        assert budget.nodes == 5  # parent ledger untouched

    def test_escalated_scales_geometrically(self):
        budget = Budget(max_nodes=10, max_branches=3, max_ms=100.0)
        bigger = budget.escalated(4)
        assert bigger.max_nodes == 40
        assert bigger.max_branches == 12
        assert bigger.max_ms == 400.0
        assert bigger.generation == budget.generation + 1
        assert Budget().escalated(4).max_nodes is None  # ∞ stays ∞

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(max_nodes=-1)
        with pytest.raises(ValueError):
            Budget(max_nodes=10).escalated(0)


class TestRetryWithEscalation:
    def test_resolves_when_budget_suffices(self):
        seen = []

        def query(budget):
            seen.append(budget.max_nodes)
            if budget.max_nodes >= 160:
                return PROVED
            return Verdict.unknown(f"too small: {budget.max_nodes}")

        outcome = retry_with_escalation(query, Budget(max_nodes=10))
        assert outcome.verdict == PROVED
        assert outcome.rounds == 2
        assert seen == [10, 40, 160]

    def test_gives_up_at_the_cap(self):
        outcome = retry_with_escalation(
            lambda b: Verdict.unknown("never"), Budget(max_nodes=1), max_rounds=3
        )
        assert outcome.verdict.is_unknown
        assert outcome.rounds == 3
        assert outcome.budget.max_nodes == 1 * 4**3

    def test_no_retry_on_definite_first_answer(self):
        outcome = retry_with_escalation(lambda b: DISPROVED, Budget(max_nodes=1))
        assert outcome.verdict == DISPROVED and outcome.rounds == 0
