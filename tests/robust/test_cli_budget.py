"""CLI resource-governance flags: --budget-nodes / --budget-ms / --escalate."""

import pytest

from repro.__main__ import EXIT_PARTIAL, main
from repro.robust import faults

#: ≥12 wheel-successors need 13 completion-graph nodes, so a 10-node
#: budget reliably exhausts on the car subsumption tests
WIDE_TEXT = """
car [= motorvehicle & >= 12 has.wheel
motorvehicle [= some uses.gasoline
"""


@pytest.fixture(autouse=True)
def quiet_faults():
    with faults.suspended():
        yield


@pytest.fixture
def wide_file(tmp_path):
    path = tmp_path / "wide.tbox"
    path.write_text(WIDE_TEXT, encoding="utf-8")
    return str(path)


class TestBudgetFlags:
    def test_starved_run_exits_partial_and_reports_edges(self, wide_file, capsys):
        code = main(["classify", wide_file, "--budget-nodes", "10"])
        captured = capsys.readouterr()
        assert code == EXIT_PARTIAL == 3
        assert "PARTIAL" in captured.err
        assert "⊑" in captured.err and "?" in captured.err
        # the partial hierarchy is still printed on stdout
        assert captured.out.startswith("⊤")

    def test_escalate_resolves_and_exits_zero(self, wide_file, capsys):
        code = main(["classify", wide_file, "--budget-nodes", "10", "--escalate"])
        captured = capsys.readouterr()
        assert code == 0
        assert "PARTIAL" not in captured.err
        assert "motorvehicle" in captured.out

    def test_generous_budget_exits_zero(self, wide_file, capsys):
        assert main(["classify", wide_file, "--budget-nodes", "2000"]) == 0
        assert "PARTIAL" not in capsys.readouterr().err

    def test_unbudgeted_run_unchanged(self, wide_file, capsys):
        assert main(["classify", wide_file]) == 0
        assert capsys.readouterr().out.startswith("⊤")

    def test_stats_snapshot_shows_robust_counters(self, wide_file, capsys):
        code = main(["classify", wide_file, "--budget-nodes", "10", "--stats"])
        captured = capsys.readouterr()
        assert code == EXIT_PARTIAL
        assert "robust.exhaustions" in captured.out
