"""Governed tableau/reasoner services: verdicts, caching, escalation.

The contract under test: a starved budget yields UNKNOWN (never an
exception), a generous budget yields exactly the ungoverned boolean
answer, and only definite verdicts ever enter the caches.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    And,
    Atomic,
    Not,
    Or,
    Reasoner,
    at_least,
    only,
    some,
)
from repro.dl.abox import ABox, ConceptAssertion
from repro.dl.tbox import Subsumption, TBox
from repro.obs import Recorder, use_recorder
from repro.robust import (
    Budget,
    PROVED,
    retry_with_escalation,
    faults,
)
from repro.robust.faults import FaultPlan, use_faults

A, B, C = Atomic("A"), Atomic("B"), Atomic("C")
_atoms = st.sampled_from([A, B, C])

#: ≥12 r-successors need 13 completion-graph nodes — reliably over a
#: 10-node budget, reliably under an unlimited one
WIDE = at_least(12, "r", A)


# module-scoped so hypothesis's function_scoped_fixture health check
# stays quiet; tests that want faults arm their own plan inside this
@pytest.fixture(autouse=True, scope="module")
def quiet_faults():
    """Definite-outcome assertions need the ambient fault plan disarmed."""
    with faults.suspended():
        yield


@st.composite
def concepts(draw, depth=2):
    if depth == 0:
        return draw(_atoms)
    kind = draw(st.integers(min_value=0, max_value=6))
    if kind == 0:
        return draw(_atoms)
    if kind == 1:
        return Not(draw(concepts(depth=depth - 1)))
    if kind == 2:
        return And.of([draw(concepts(depth=depth - 1)), draw(concepts(depth=depth - 1))])
    if kind == 3:
        return Or.of([draw(concepts(depth=depth - 1)), draw(concepts(depth=depth - 1))])
    if kind == 4:
        return some(draw(st.sampled_from(["r", "s"])), draw(concepts(depth=depth - 1)))
    if kind == 5:
        return only(draw(st.sampled_from(["r", "s"])), draw(concepts(depth=depth - 1)))
    return at_least(
        draw(st.integers(min_value=1, max_value=2)),
        draw(st.sampled_from(["r", "s"])),
        draw(concepts(depth=depth - 1)),
    )


class TestGovernedSatisfiability:
    def test_starved_budget_yields_unknown_not_exception(self):
        recorder = Recorder()
        with use_recorder(recorder):
            verdict = Reasoner().is_satisfiable_governed(WIDE, Budget(max_nodes=10))
        assert verdict.is_unknown
        assert "max_nodes=10" in verdict.reason
        assert recorder.counters["robust.exhaustions"] == 1
        assert recorder.counters["robust.unknown_verdicts"] == 1

    def test_generous_budget_matches_ungoverned(self):
        reasoner = Reasoner()
        verdict = reasoner.is_satisfiable_governed(WIDE, Budget(max_nodes=500))
        assert verdict == PROVED
        assert Reasoner().is_satisfiable(WIDE) is True

    def test_unknown_is_not_cached_definite_is(self):
        reasoner = Reasoner()
        assert reasoner.is_satisfiable_governed(WIDE, Budget(max_nodes=10)).is_unknown
        assert reasoner.known_satisfiability(WIDE) is None  # a retry starts clean
        assert reasoner.is_satisfiable_governed(WIDE, Budget(max_nodes=500)) == PROVED
        assert reasoner.known_satisfiability(WIDE) is True
        # and the cached answer now short-circuits even a starved call
        assert reasoner.is_satisfiable_governed(WIDE, Budget(max_nodes=1)) == PROVED

    def test_deadline_expiry_yields_unknown(self):
        verdict = Reasoner().is_satisfiable_governed(WIDE, Budget(max_ms=0.0))
        assert verdict.is_unknown
        assert "deadline" in verdict.reason

    def test_injected_exhaustion_recovered_by_escalation(self):
        reasoner = Reasoner()
        with use_faults(FaultPlan.always("exhaustion")):
            first = reasoner.is_satisfiable_governed(A, Budget(max_nodes=1000))
            assert first.is_unknown and "injected" in first.reason
            outcome = retry_with_escalation(
                lambda b: reasoner.is_satisfiable_governed(A, b),
                Budget(max_nodes=1000),
            )
        assert outcome.verdict == PROVED  # generation > 0 bypasses injection
        assert outcome.rounds == 1


class TestGovernedSubsumption:
    def test_matches_ungoverned_on_a_real_tbox(self):
        tbox = TBox([Subsumption(Atomic("car"), Atomic("vehicle"))])
        governed = Reasoner(tbox).subsumes_governed(
            Atomic("vehicle"), Atomic("car"), Budget(max_nodes=500)
        )
        assert governed == PROVED
        assert Reasoner(tbox).subsumes(Atomic("vehicle"), Atomic("car")) is True

    def test_unknown_subsumption_not_cached(self):
        reasoner = Reasoner()
        verdict = reasoner.subsumes_governed(B, WIDE, Budget(max_nodes=10))
        assert verdict.is_unknown
        assert not reasoner._subs_cache

    def test_disproved_subsumption_cross_seeds_sat_cache(self):
        reasoner = Reasoner()
        verdict = reasoner.subsumes_governed(B, A, Budget(max_nodes=500))
        assert verdict.is_definite and verdict.as_bool() is False
        assert reasoner.known_satisfiability(A) is True  # witness model reused


class TestGovernedABox:
    def test_consistency_and_instance_checking(self):
        tbox = TBox([Subsumption(Atomic("car"), Atomic("vehicle"))])
        abox = ABox([ConceptAssertion("herbie", Atomic("car"))])
        reasoner = Reasoner(tbox)
        assert reasoner.is_consistent_governed(abox, Budget(max_nodes=500)) == PROVED
        entailed = reasoner.is_instance_governed(
            abox, "herbie", Atomic("vehicle"), Budget(max_nodes=500)
        )
        assert entailed == PROVED
        not_entailed = reasoner.is_instance_governed(
            abox, "herbie", Atomic("boat"), Budget(max_nodes=500)
        )
        assert not_entailed.is_definite and not_entailed.as_bool() is False

    def test_starved_instance_check_is_unknown(self):
        tbox = TBox([Subsumption(Atomic("car"), WIDE)])
        abox = ABox([ConceptAssertion("herbie", Atomic("car"))])
        verdict = Reasoner(tbox).is_instance_governed(
            abox, "herbie", A, Budget(max_nodes=3)
        )
        assert verdict.is_unknown


class TestGovernedMatchesUngovernedProperty:
    """Acceptance: definite verdicts bit-identical with governance on/off."""

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(concepts())
    def test_satisfiability_agrees(self, concept):
        expected = Reasoner().is_satisfiable(concept)
        verdict = Reasoner().is_satisfiable_governed(concept, Budget(max_nodes=2000))
        assert verdict.is_definite
        assert verdict.as_bool() is expected

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(concepts(), concepts())
    def test_subsumption_agrees(self, general, specific):
        expected = Reasoner().subsumes(general, specific)
        verdict = Reasoner().subsumes_governed(
            general, specific, Budget(max_nodes=2000)
        )
        assert verdict.is_definite
        assert verdict.as_bool() is expected
