"""Acceptance tests: graceful degradation end to end.

ISSUE acceptance criterion: with ``max_nodes=10`` on the B1-style random
workload, ``classify()`` and materialization complete without raising,
report their unknown/skipped sets, and ``retry_with_escalation`` resolves
every UNKNOWN verdict at the default cap.
"""

import pytest

from repro.corpora.generators import random_tbox
from repro.corpora.vehicles import vehicle_tbox
from repro.dl import Atomic, Reasoner, TOP, classify
from repro.dl.hierarchy import BOTTOM_NAME, TOP_NAME
from repro.robust import Budget, faults, retry_with_escalation
from repro.store import TripleStore, materialize, materialize_governed

STARVED_NODES = 10


def b1_workload_tbox():
    """The seeded random TBox the B1/B6 benches classify."""
    return random_tbox(0, n_defined=22, n_primitive=8, n_roles=3)


def _concept_of(name):
    if name == TOP_NAME:
        return TOP
    return Atomic(name)


@pytest.fixture(autouse=True)
def quiet_faults():
    """This module measures *real* exhaustion, not injected faults."""
    with faults.suspended():
        yield


class TestGovernedClassification:
    def test_starved_classify_degrades_instead_of_raising(self):
        tbox = b1_workload_tbox()
        hierarchy = classify(tbox, budget=Budget(max_nodes=STARVED_NODES))
        assert hierarchy.incomplete  # the budget must actually bite
        assert not hierarchy.complete
        for specific, general in hierarchy.incomplete:
            assert isinstance(specific, str) and isinstance(general, str)

    def test_every_unknown_edge_resolves_at_the_default_cap(self):
        tbox = b1_workload_tbox()
        hierarchy = classify(tbox, budget=Budget(max_nodes=STARVED_NODES))
        assert hierarchy.incomplete
        oracle = Reasoner(tbox)
        resolver = Reasoner(tbox)
        for specific, general in sorted(hierarchy.incomplete):
            if general == BOTTOM_NAME:
                # recorded by an unknown satisfiability check on `specific`
                outcome = retry_with_escalation(
                    lambda b, s=specific: resolver.is_satisfiable_governed(
                        _concept_of(s), b
                    ),
                    Budget(max_nodes=STARVED_NODES),
                )
                expected = oracle.is_satisfiable(_concept_of(specific))
            else:
                outcome = retry_with_escalation(
                    lambda b, s=specific, g=general: resolver.subsumes_governed(
                        _concept_of(g), _concept_of(s), b
                    ),
                    Budget(max_nodes=STARVED_NODES),
                )
                expected = oracle.subsumes(_concept_of(general), _concept_of(specific))
            assert outcome.verdict.is_definite, (specific, general)
            assert outcome.verdict.as_bool() is expected, (specific, general)

    def test_whole_run_escalation_converges_to_the_ungoverned_answer(self):
        tbox = b1_workload_tbox()
        baseline = classify(tbox)
        reasoner = Reasoner(tbox)
        budget = Budget(max_nodes=STARVED_NODES)
        hierarchy = classify(tbox, reasoner=reasoner, budget=budget)
        rounds = 0
        while hierarchy.incomplete and rounds < 4:
            rounds += 1
            budget = budget.escalated()
            hierarchy = classify(tbox, reasoner=reasoner, budget=budget)
        assert hierarchy.complete
        assert hierarchy.groups() == baseline.groups()

    def test_complete_hierarchy_cached_partial_not(self):
        tbox = b1_workload_tbox()
        reasoner = Reasoner(tbox)
        partial = reasoner.classify(budget=Budget(max_nodes=STARVED_NODES))
        assert partial.incomplete
        # the partial answer must not have been cached
        second = reasoner.classify(budget=Budget(max_nodes=STARVED_NODES))
        assert second is not partial
        full = reasoner.classify()
        assert full.complete
        # a cached complete hierarchy beats any budget
        assert reasoner.classify(budget=Budget(max_nodes=1)) is full


class TestGovernedMaterialization:
    def _store(self):
        store = TripleStore()
        store.update(
            [
                ("herbie", "type", "car"),
                ("bigfoot", "type", "pickup"),
                ("herbie", "uses", "premium_gasoline"),
            ]
        )
        return store

    def test_starved_materialization_reports_skips(self):
        report = materialize_governed(
            self._store(), vehicle_tbox(), budget=Budget(max_nodes=3)
        )
        assert report.skipped  # someone must have run out of budget
        assert not report.complete
        for individual, reason in report.skipped.items():
            # role objects (premium_gasoline) are individuals too
            assert individual in {"herbie", "bigfoot", "premium_gasoline"}
            assert reason
        # told facts always survive into the output store
        assert ("herbie", "type", "car") in report.store

    def test_generous_budget_matches_ungoverned_materialize(self):
        expected = materialize(self._store(), vehicle_tbox())
        report = materialize_governed(
            self._store(), vehicle_tbox(), budget=Budget(max_nodes=2000)
        )
        assert report.complete
        assert report.consistency.is_definite and report.consistency.as_bool()
        assert set(report.store) == set(expected)

    def test_decided_facts_are_sound_under_starvation(self):
        full = set(materialize(self._store(), vehicle_tbox()))
        report = materialize_governed(
            self._store(), vehicle_tbox(), budget=Budget(max_nodes=40)
        )
        # whatever was decided within budget is a subset of the truth
        assert set(report.store) <= full

    def test_b1_workload_materialization_never_raises(self):
        tbox = random_tbox(5, n_defined=12, n_primitive=6, n_roles=2)
        names = sorted(tbox.atomic_names())
        store = TripleStore()
        store.update(
            [(f"ind{i}", "type", names[i * 3 % len(names)]) for i in range(6)]
        )
        report = materialize_governed(store, tbox, budget=Budget(max_nodes=STARVED_NODES))
        assert report.consistency.is_definite  # escalated until definite
        full = set(materialize(store, tbox))
        assert set(report.store) <= full
