"""Multi-worker serving: allowance slicing, delta shipping, the pool.

Three layers, cheapest first:

* **property tests** (Hypothesis) over :func:`slice_allowance` — the
  ISSUE's admission invariants: per-worker shares sum to at most the
  server-wide node/ms allowance, soft limits sum to the global
  concurrency cap, and the per-request budget slice (hence every
  429/503 threshold and PROVED/UNKNOWN verdict) is identical at N=1
  and N>1;
* **unit tests** over the swap-shipping pieces: ``EditRecord.from_diff``
  / ``apply`` round-trips, ``SnapshotManager.prepare_delta`` (stale
  records rejected), ``fork_clone`` sharing the classified hierarchy,
  and ``Recorder.merge_snapshot`` wire round-trips;
* **end-to-end tests** that boot ``python -m repro serve --workers N``
  as a real child process (fork and spawn) and exercise routing, the
  aggregated ``/v1/metrics``, hot-swap propagation with bounded version
  skew, and worker-death restart.
"""

import json
import os
import signal
import tempfile
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import parse_tbox
from repro.dl.diff import axiom_diff
from repro.obs import Recorder
from repro.serve import (
    EditRecord,
    ServeConfig,
    ServeProcess,
    SnapshotError,
    SnapshotManager,
    WorkerShare,
    slice_allowance,
)
from repro.serve.workers import WorkerSupervisor

VEHICLES = """
car [= motorvehicle & some size.small
pickup [= motorvehicle & some size.big
motorvehicle [= some uses.gasoline
"""

VEHICLES_V2 = VEHICLES + "\nvan [= motorvehicle & some size.big\n"


# --------------------------------------------------------------------------- #
# slice_allowance properties (the admission-parity contract)
# --------------------------------------------------------------------------- #

slice_inputs = {
    "soft_limit": st.integers(min_value=1, max_value=256),
    "extra_hard": st.integers(min_value=0, max_value=256),
    "node_allowance": st.one_of(
        st.none(), st.integers(min_value=0, max_value=10_000_000)
    ),
    "workers": st.integers(min_value=1, max_value=64),
}


class TestSliceAllowance:
    @settings(max_examples=200, deadline=None)
    @given(**slice_inputs)
    def test_shares_never_exceed_server_wide_allowance(
        self, soft_limit, extra_hard, node_allowance, workers
    ):
        shares = slice_allowance(
            soft_limit=soft_limit,
            hard_limit=soft_limit + extra_hard,
            node_allowance=node_allowance,
            workers=workers,
        )
        assert len(shares) == workers
        if node_allowance is None:
            assert all(s.node_allowance is None for s in shares)
        else:
            assert sum(s.node_allowance for s in shares) <= node_allowance

    @settings(max_examples=200, deadline=None)
    @given(**slice_inputs)
    def test_soft_limits_cover_the_global_cap(
        self, soft_limit, extra_hard, node_allowance, workers
    ):
        shares = slice_allowance(
            soft_limit=soft_limit,
            hard_limit=soft_limit + extra_hard,
            node_allowance=node_allowance,
            workers=workers,
        )
        # every worker can take at least one request, and the pool-wide
        # concurrency bound is the global soft limit (or one per worker
        # when there are more workers than slots)
        assert all(s.soft_limit >= 1 for s in shares)
        assert sum(s.soft_limit for s in shares) == max(soft_limit, workers)
        assert all(s.soft_limit <= s.hard_limit for s in shares)

    @settings(max_examples=200, deadline=None)
    @given(**slice_inputs)
    def test_per_request_slice_matches_single_process(
        self, soft_limit, extra_hard, node_allowance, workers
    ):
        """The N=1 vs N>1 verdict-parity invariant.

        Whenever workers fit inside the soft limit, each worker's
        per-request budget slice equals the single-process slice — so a
        query admitted under ``--workers N`` gets the same node/ms
        envelope (and the same 429/503 thresholds, which are enforced
        unsliced at the front) as under ``--workers 0``.
        """
        if workers > soft_limit or node_allowance is None:
            return
        shares = slice_allowance(
            soft_limit=soft_limit,
            hard_limit=soft_limit + extra_hard,
            node_allowance=node_allowance,
            workers=workers,
        )
        single = node_allowance // soft_limit
        for share in shares:
            assert share.node_allowance // share.soft_limit == single

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            slice_allowance(
                soft_limit=4, hard_limit=8, node_allowance=None, workers=0
            )
        with pytest.raises(ValueError):
            slice_allowance(
                soft_limit=0, hard_limit=8, node_allowance=None, workers=1
            )
        with pytest.raises(ValueError):
            slice_allowance(
                soft_limit=8, hard_limit=4, node_allowance=None, workers=1
            )

    def test_exact_example(self):
        shares = slice_allowance(
            soft_limit=5, hard_limit=9, node_allowance=1000, workers=2
        )
        assert shares == [
            WorkerShare(soft_limit=3, hard_limit=5, node_allowance=600),
            WorkerShare(soft_limit=2, hard_limit=4, node_allowance=400),
        ]


class TestThresholdParity:
    def test_worker_configs_keep_global_admission_thresholds(self):
        """Parity by construction: the 429/503 thresholds and the
        per-request budget slice a worker enforces are the *global*
        ones, regardless of N — the sliced shares only bound routing."""
        config = ServeConfig(
            port=0, workers=3, soft_limit=8, hard_limit=32, node_allowance=9000
        )

        class _FrontStub:
            pass

        supervisor = WorkerSupervisor(_FrontStub(), config)
        try:
            assert len(supervisor.handles) == 3
            for handle in supervisor.handles:
                worker_config = handle.config
                assert worker_config.soft_limit == config.soft_limit
                assert worker_config.hard_limit == config.hard_limit
                assert worker_config.node_allowance == config.node_allowance
                # and no worker runs its own pool / log / replication
                assert worker_config.workers == 0
                assert worker_config.edit_log is None
                assert worker_config.follow is None
            assert sum(
                h.share.soft_limit for h in supervisor.handles
            ) == config.soft_limit
        finally:
            if supervisor._dir_obj is not None:
                supervisor._dir_obj.cleanup()


# --------------------------------------------------------------------------- #
# swap shipping units
# --------------------------------------------------------------------------- #


class TestEditRecordShipping:
    def test_from_diff_apply_round_trip(self):
        old = parse_tbox(VEHICLES)
        new = parse_tbox(VEHICLES_V2)
        record = EditRecord.from_diff(2, axiom_diff(old, new))
        assert record.version == 2
        assert record.added and not record.removed
        applied = record.apply(old)
        assert frozenset(applied.axioms) == frozenset(new.axioms)

    def test_from_diff_survives_json_round_trip(self):
        old = parse_tbox(VEHICLES)
        new = parse_tbox("car [= motorvehicle")
        record = EditRecord.from_diff(2, axiom_diff(old, new))
        back = EditRecord.from_json(json.loads(json.dumps(record.to_json())))
        assert back == record
        assert frozenset(back.apply(old).axioms) == frozenset(new.axioms)

    def test_prepare_delta_applies_and_reports_incremental(self):
        manager = SnapshotManager(parse_tbox(VEHICLES))
        record = EditRecord.from_diff(
            2, axiom_diff(parse_tbox(VEHICLES), parse_tbox(VEHICLES_V2))
        )
        prepared = manager.prepare_delta(record)
        assert prepared.version == 2
        assert prepared.delta_from_log
        manager.swap(prepared)
        assert manager.current.hierarchy.is_subsumed_by("van", "motorvehicle")

    def test_prepare_delta_rejects_stale_record(self):
        manager = SnapshotManager(parse_tbox(VEHICLES))
        stale = EditRecord.from_diff(
            1, axiom_diff(parse_tbox(VEHICLES), parse_tbox(VEHICLES_V2))
        )
        with pytest.raises(SnapshotError):
            manager.prepare_delta(stale)

    def test_fork_clone_shares_classified_state(self):
        manager = SnapshotManager(parse_tbox(VEHICLES))
        snapshot = manager.current
        clone = manager.fork_clone()
        assert clone.version == manager.version
        # the CoW point: the clone's boot snapshot reuses the parent's
        # classified hierarchy and reasoner objects, not copies
        assert clone.current.hierarchy is snapshot.hierarchy
        assert clone.current.reasoner is snapshot.reasoner
        # and stays independently swappable
        record = EditRecord.from_diff(
            2, axiom_diff(parse_tbox(VEHICLES), parse_tbox(VEHICLES_V2))
        )
        clone.swap(clone.prepare_delta(record))
        assert clone.version == 2
        assert manager.version == 1


class TestRecorderMerge:
    def test_merge_snapshot_folds_counters_timers_and_samples(self):
        worker = Recorder()
        worker.incr("serve.requests", 3)
        worker.observe("serve.latency_ms", 5.0)
        worker.observe("serve.latency_ms", 7.0)
        wire = json.loads(json.dumps(worker.snapshot(samples=True)))

        merged = Recorder()
        merged.incr("serve.requests", 1)
        merged.observe("serve.latency_ms", 100.0)
        merged.merge_snapshot(wire)

        snap = merged.snapshot()
        assert snap["counters"]["serve.requests"] == 4
        hist = snap["histograms"]["serve.latency_ms"]
        assert hist["count"] == 3
        assert hist["min"] == 5.0 and hist["max"] == 100.0
        # pool-wide percentiles come from the merged sample rings: the
        # worker's 5/7ms observations must survive the wire round-trip
        assert hist["p50"] == 7.0
        assert hist["p99"] == 100.0

    def test_merge_snapshot_tolerates_missing_sections(self):
        merged = Recorder()
        merged.merge_snapshot({})
        merged.merge_snapshot({"counters": {"x": 2}})
        assert merged.snapshot()["counters"]["x"] == 2


# --------------------------------------------------------------------------- #
# end-to-end: a real --workers N child process
# --------------------------------------------------------------------------- #


def _tbox_file(directory: str, text: str) -> str:
    path = os.path.join(directory, "boot.tbox")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def _wait_for(predicate, what: str, timeout_s: float = 20.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork-only test")
class TestMultiWorkerEndToEnd:
    def test_fork_pool_routes_swaps_and_restarts(self):
        with tempfile.TemporaryDirectory() as work_dir:
            boot = _tbox_file(work_dir, VEHICLES)
            server = ServeProcess(
                ["--tbox", boot, "--workers", "2"], startup_timeout_s=120.0
            ).start()
            try:
                # ---- routing: queries answered through the pool ------- #
                status, body = server.request(
                    "POST",
                    "/v1/subsumes",
                    {"general": "motorvehicle", "specific": "car"},
                )
                assert (status, body["answer"]) == (200, True)
                assert body["tbox_version"] == 1

                status, health = server.request("GET", "/v1/health")
                assert status == 200
                block = health["workers"]
                assert block["count"] == 2
                assert block["up"] == 2
                assert block["start_method"] == "fork"
                assert block["max_version_skew"] == 0

                # ---- hot swap: shipped once, applied by every worker -- #
                status, body = server.request(
                    "POST", "/v1/tbox", {"tbox": VEHICLES_V2}
                )
                assert (status, body["swap_status"]) == (200, "applied")
                assert body["tbox_version"] == 2
                # the swap ack implies propagation: skew stays bounded
                status, health = server.request("GET", "/v1/health")
                assert health["workers"]["max_version_skew"] <= 1
                _wait_for(
                    lambda: server.request("GET", "/v1/health")[1]["workers"][
                        "max_version_skew"
                    ]
                    == 0,
                    "swap propagation to every worker",
                )
                status, body = server.request(
                    "POST",
                    "/v1/subsumes",
                    {"general": "motorvehicle", "specific": "van"},
                )
                assert (status, body["answer"]) == (200, True)
                assert body["tbox_version"] == 2

                # ---- metrics: merged across the pool ------------------ #
                status, metrics = server.request("GET", "/v1/metrics")
                assert status == 200
                counters = metrics["metrics"]["counters"]
                assert counters.get("workers.proxied", 0) >= 2
                # both workers applied the shipped record via the
                # incremental path — delta shipping, not re-parsing
                assert counters.get("serve.delta_swaps", 0) >= 2
                assert metrics["serve"]["workers"]["count"] == 2

                # ---- worker death: restarted, no failed request ------- #
                victim_pid = health["workers"]["workers"][0]["pid"]
                os.kill(victim_pid, signal.SIGKILL)
                status, body = server.request(
                    "POST",
                    "/v1/subsumes",
                    {"general": "motorvehicle", "specific": "van"},
                )
                assert (status, body["answer"]) == (200, True)
                restarted = _wait_for(
                    lambda: (
                        lambda b: b["up"] == 2
                        and b["restarts"] >= 1
                        and b["max_version_skew"] == 0
                    )(server.request("GET", "/v1/health")[1]["workers"]),
                    "worker restart",
                )
                assert restarted
                status, health = server.request("GET", "/v1/health")
                pids = {w["pid"] for w in health["workers"]["workers"]}
                assert victim_pid not in pids
            finally:
                server.kill()

    def test_spawn_pool_serves_and_swaps(self):
        with tempfile.TemporaryDirectory() as work_dir:
            boot = _tbox_file(work_dir, VEHICLES)
            server = ServeProcess(
                [
                    "--tbox",
                    boot,
                    "--workers",
                    "1",
                    "--worker-start-method",
                    "spawn",
                ],
                startup_timeout_s=180.0,
            ).start()
            try:
                status, health = server.request("GET", "/v1/health")
                assert health["workers"]["start_method"] == "spawn"
                assert health["workers"]["up"] == 1
                status, body = server.request(
                    "POST",
                    "/v1/subsumes",
                    {"general": "motorvehicle", "specific": "car"},
                )
                assert (status, body["answer"]) == (200, True)
                status, body = server.request(
                    "POST", "/v1/tbox", {"tbox": VEHICLES_V2}
                )
                assert (status, body["swap_status"]) == (200, "applied")
                _wait_for(
                    lambda: server.request("GET", "/v1/health")[1]["workers"][
                        "max_version_skew"
                    ]
                    == 0,
                    "spawn-mode swap propagation",
                )
                status, body = server.request(
                    "POST",
                    "/v1/subsumes",
                    {"general": "motorvehicle", "specific": "van"},
                )
                assert (status, body["answer"]) == (200, True)
                assert body["tbox_version"] == 2
            finally:
                server.kill()
