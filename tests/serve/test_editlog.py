"""Durable edit log: append/replay round-trips, crash cuts, torn writes.

The crash-recovery acceptance tests for the MVCC serving PR:

* **the crash-prefix property** (Hypothesis): cutting the log file at an
  *arbitrary byte offset* — any crash point — and recovering yields
  exactly the TBox (and hierarchy) an uninterrupted run had after the
  records that survived the cut; a cut landing mid-record costs only
  that half-written record, never a replay of it;
* **the torn-write fault matrix**: with ``torn-write`` armed to fire on
  every append, acknowledged appends are still durable (recovered
  before return, counted), and a manually torn tail is truncated at
  recovery and counted in ``editlog.torn_records``.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpora.generators import random_tbox, random_tbox_edit
from repro.dl import Reasoner, parse_tbox
from repro.obs import Recorder, use_recorder
from repro.robust import faults
from repro.serve.editlog import EditLog, EditLogError


@pytest.fixture(autouse=True)
def quiet_faults():
    with faults.suspended():
        yield


def vehicles_text():
    return "car [= motorvehicle\npickup [= motorvehicle\n"


def _hierarchy_key(tbox):
    hierarchy = Reasoner(tbox).classify()
    return hierarchy.groups(), hierarchy.poset


class TestFreshAndReplay:
    def test_fresh_open_writes_base_at_initial_version(self, tmp_path):
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        assert log.version == 1
        assert log.last_recovery.fresh
        assert (tmp_path / "base.json").exists()
        assert (tmp_path / "edits.log").read_bytes() == b""

    def test_append_assigns_consecutive_versions(self, tmp_path):
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        first = log.append(parse_tbox(vehicles_text() + "van [= motorvehicle"))
        second = log.append(parse_tbox("dog [= animal"))
        assert (first.version, second.version) == (2, 3)
        assert log.version == 3

    def test_reopen_replays_to_latest_state(self, tmp_path):
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        log.append(parse_tbox(vehicles_text() + "van [= motorvehicle"))
        log.append(parse_tbox("dog [= animal"))
        recovered = EditLog.open(tmp_path)
        assert recovered.version == 3
        assert recovered.last_recovery.replayed == 2
        assert recovered.last_recovery.torn == 0
        assert _hierarchy_key(recovered.tbox) == _hierarchy_key(log.tbox)

    def test_recovered_state_wins_over_initial(self, tmp_path):
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        log.append(parse_tbox("dog [= animal"))
        recovered = EditLog.open(tmp_path, initial=parse_tbox("cat [= pet"))
        assert "dog" in recovered.tbox.atomic_names()
        assert "cat" not in recovered.tbox.atomic_names()

    def test_recovery_is_counted(self, tmp_path):
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        log.append(parse_tbox("dog [= animal"))
        recorder = Recorder()
        with use_recorder(recorder):
            EditLog.open(tmp_path)
        assert recorder.counters["editlog.recoveries"] == 1
        assert recorder.counters["editlog.replayed_records"] == 1

    def test_base_with_zero_length_log_recovers_cleanly(self, tmp_path):
        """A crash right after a rebase leaves base.json + an empty log:
        recovery must land exactly on the base, replaying nothing."""
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        log.append(parse_tbox("dog [= animal"))
        log.rebase()
        assert (tmp_path / "edits.log").stat().st_size == 0
        recovered = EditLog.open(tmp_path)
        assert recovered.version == 2
        assert recovered.last_recovery.fresh is False
        assert recovered.last_recovery.base_version == 2
        assert (recovered.last_recovery.replayed, recovered.last_recovery.torn) == (0, 0)
        assert _hierarchy_key(recovered.tbox) == _hierarchy_key(log.tbox)
        # and the recovered log accepts appends at the next version
        assert recovered.append(parse_tbox("cat [= animal")).version == 3

    def test_log_without_base_is_rejected(self, tmp_path):
        (tmp_path / "edits.log").write_bytes(b"deadbeef {}\n")
        with pytest.raises(EditLogError, match="without a base"):
            EditLog.open(tmp_path)

    def test_corrupt_base_is_rejected(self, tmp_path):
        EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        (tmp_path / "base.json").write_text("not json", encoding="utf-8")
        with pytest.raises(EditLogError, match="corrupt base"):
            EditLog.open(tmp_path)


class TestRebase:
    def test_rebase_truncates_log_and_preserves_state(self, tmp_path):
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        log.append(parse_tbox("dog [= animal"))
        log.rebase()
        assert (tmp_path / "edits.log").stat().st_size == 0
        recovered = EditLog.open(tmp_path)
        assert recovered.version == 2
        assert recovered.last_recovery.base_version == 2
        assert recovered.last_recovery.replayed == 0
        assert "dog" in recovered.tbox.atomic_names()

    def test_auto_rebase_at_limit(self, tmp_path):
        recorder = Recorder()
        log = EditLog.open(
            tmp_path, initial=parse_tbox(vehicles_text()), rebase_limit=2
        )
        with use_recorder(recorder):
            log.append(parse_tbox("a [= b"))
            assert log.records_since_base == 1
            log.append(parse_tbox("a [= b\nb [= c"))
        assert log.records_since_base == 0
        assert recorder.counters["editlog.rebases"] == 1
        assert EditLog.open(tmp_path).version == 3

    def test_stale_records_after_crashed_rebase_are_skipped(self, tmp_path):
        """A crash between the base replace and the log truncate leaves
        records at versions <= the new base; replay must skip them."""
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        log.append(parse_tbox("a [= b"))
        log.append(parse_tbox("a [= b\nb [= c"))
        stale = (tmp_path / "edits.log").read_bytes()
        log.rebase()
        # simulate the crash window: the pre-rebase records reappear
        (tmp_path / "edits.log").write_bytes(stale)
        recovered = EditLog.open(tmp_path)
        assert recovered.version == 3
        assert recovered.last_recovery.replayed == 0
        assert recovered.last_recovery.torn == 0
        assert _hierarchy_key(recovered.tbox) == _hierarchy_key(log.tbox)

    def test_two_consecutive_crashed_rebases_skip_both_generations(self, tmp_path):
        """Two back-to-back rebases that each crash before their truncate
        leave stale records from *two* generations; replay skips both."""
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        log.append(parse_tbox("a [= b"))
        log.append(parse_tbox("a [= b\nb [= c"))
        generation_one = (tmp_path / "edits.log").read_bytes()
        log.rebase()  # base now at v3
        log.append(parse_tbox("a [= b\nb [= c\nc [= d"))
        generation_two = (tmp_path / "edits.log").read_bytes()
        log.rebase()  # base now at v4
        # both crash windows at once: stale records from both generations
        # reappear ahead of the (empty) current log
        (tmp_path / "edits.log").write_bytes(generation_one + generation_two)
        recovered = EditLog.open(tmp_path)
        assert recovered.version == 4
        assert recovered.last_recovery.base_version == 4
        assert recovered.last_recovery.replayed == 0
        assert recovered.last_recovery.torn == 0
        assert _hierarchy_key(recovered.tbox) == _hierarchy_key(log.tbox)
        # appends resume on the recovered chain, past every stale version
        assert recovered.append(parse_tbox("z [= y")).version == 5


class TestRebaseTriggers:
    """Each compaction trigger fires alone and is counted per reason."""

    def test_records_trigger_is_counted(self, tmp_path):
        recorder = Recorder()
        log = EditLog.open(
            tmp_path, initial=parse_tbox(vehicles_text()), rebase_limit=2
        )
        with use_recorder(recorder):
            log.append(parse_tbox("a [= b"))
            log.append(parse_tbox("a [= b\nb [= c"))
        assert recorder.counters["editlog.rebase_reason.records"] == 1
        assert recorder.counters["editlog.rebases"] == 1
        assert log.records_since_base == 0

    def test_bytes_trigger_is_counted(self, tmp_path):
        recorder = Recorder()
        log = EditLog.open(
            tmp_path,
            initial=parse_tbox(vehicles_text()),
            rebase_limit=1024,
            rebase_max_bytes=1,  # any record crosses the threshold
        )
        with use_recorder(recorder):
            log.append(parse_tbox("a [= b"))
        assert recorder.counters["editlog.rebase_reason.bytes"] == 1
        assert "editlog.rebase_reason.records" not in recorder.counters
        assert (tmp_path / "edits.log").stat().st_size == 0
        assert EditLog.open(tmp_path).last_recovery.base_version == 2

    def test_age_trigger_is_counted(self, tmp_path):
        recorder = Recorder()
        log = EditLog.open(
            tmp_path,
            initial=parse_tbox(vehicles_text()),
            rebase_limit=1024,
            rebase_max_age_s=0.0,  # the base is always "too old"
        )
        with use_recorder(recorder):
            log.append(parse_tbox("a [= b"))
        assert recorder.counters["editlog.rebase_reason.age"] == 1
        assert log.records_since_base == 0

    def test_age_trigger_needs_at_least_one_record(self, tmp_path):
        recorder = Recorder()
        with use_recorder(recorder):
            log = EditLog.open(
                tmp_path,
                initial=parse_tbox(vehicles_text()),
                rebase_max_age_s=0.0,
            )
        # an idle log never rebases on age alone — nothing to compact
        assert "editlog.rebases" not in recorder.counters
        assert log.version == 1

    def test_manual_rebase_is_counted(self, tmp_path):
        recorder = Recorder()
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        log.append(parse_tbox("a [= b"))
        with use_recorder(recorder):
            log.rebase()
        assert recorder.counters["editlog.rebase_reason.manual"] == 1

    def test_stats_expose_the_trigger_configuration(self, tmp_path):
        log = EditLog.open(
            tmp_path,
            initial=parse_tbox(vehicles_text()),
            rebase_max_bytes=4096,
            rebase_max_age_s=60.0,
        )
        log.append(parse_tbox("a [= b"))
        stats = log.stats()
        assert stats["rebase_max_bytes"] == 4096
        assert stats["rebase_max_age_s"] == 60.0
        assert stats["log_bytes"] > 0


class TestCrashPrefixProperty:
    """Killing after any log prefix recovers the uninterrupted state."""

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        cut_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_recovery_at_any_cut_equals_uninterrupted_prefix(
        self, tmp_path_factory, seed, cut_fraction
    ):
        with faults.suspended():
            tmp_path = tmp_path_factory.mktemp("editlog")
            tbox = random_tbox(seed, n_defined=6, n_primitive=4, n_roles=2)
            log = EditLog.open(tmp_path, initial=tbox)
            rng = random.Random(seed)
            # states[v] = the TBox an uninterrupted run had at version v+1
            states = [log.tbox]
            offsets = [0]  # log size after each append
            for _ in range(5):
                tbox = random_tbox_edit(rng, tbox)
                log.append(tbox)
                states.append(log.tbox)
                offsets.append((tmp_path / "edits.log").stat().st_size)

            # the crash: cut the log at an arbitrary byte offset
            raw = (tmp_path / "edits.log").read_bytes()
            cut = round(cut_fraction * len(raw))
            (tmp_path / "edits.log").write_bytes(raw[:cut])

            recovered = EditLog.open(tmp_path)
            # the survived prefix is however many records lie fully
            # before the cut; a mid-record cut is a torn tail
            survived = max(i for i, end in enumerate(offsets) if end <= cut)
            assert recovered.version == survived + 1
            assert recovered.last_recovery.replayed == survived
            assert recovered.last_recovery.torn == (0 if cut in offsets else 1)
            expected = states[survived]
            assert _hierarchy_key(recovered.tbox) == _hierarchy_key(expected)
            # and the recovered log keeps working: appends resume cleanly
            resumed = recovered.append(random_tbox_edit(rng, recovered.tbox))
            assert resumed.version == recovered.version


class TestTornWriteFaultMatrix:
    def test_armed_torn_write_appends_are_recovered_and_durable(self, tmp_path):
        recorder = Recorder()
        with use_recorder(recorder):
            with faults.use_faults(faults.FaultPlan.always("torn-write")):
                log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
                log.append(parse_tbox("dog [= animal"))
                log.append(parse_tbox("dog [= animal\ncat [= animal"))
        # every first attempt tore; every return was nevertheless durable
        assert recorder.counters["editlog.torn_writes_recovered"] == 2
        assert recorder.counters["store.torn_appends_recovered"] == 2
        recovered = EditLog.open(tmp_path)
        assert recovered.version == 3
        assert recovered.last_recovery.torn == 0
        assert {"dog", "cat"} <= recovered.tbox.atomic_names()

    def test_torn_tail_is_truncated_counted_and_never_replayed(self, tmp_path):
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        log.append(parse_tbox(vehicles_text() + "van [= motorvehicle"))
        intact = (tmp_path / "edits.log").read_bytes()
        log.append(parse_tbox("zebra [= animal"))
        torn_tail = (tmp_path / "edits.log").read_bytes()
        # the crash tears the second record in half
        cut = intact + torn_tail[len(intact) : len(intact) + 10]
        (tmp_path / "edits.log").write_bytes(cut)

        recorder = Recorder()
        with use_recorder(recorder):
            recovered = EditLog.open(tmp_path)
        assert recorder.counters["editlog.torn_records"] == 1
        assert recovered.last_recovery.torn == 1
        assert recovered.version == 2
        # the half-written delta was never replayed ...
        assert "zebra" not in recovered.tbox.atomic_names()
        assert "van" in recovered.tbox.atomic_names()
        # ... and the file itself was truncated back to the valid prefix
        assert (tmp_path / "edits.log").read_bytes() == intact

    def test_corrupt_middle_record_stops_replay_at_the_damage(self, tmp_path):
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        log.append(parse_tbox("a [= b"))
        log.append(parse_tbox("a [= b\nb [= c"))
        both = (tmp_path / "edits.log").read_bytes()
        # flip a payload byte in the *first* record: its CRC now fails,
        # so nothing after it can be trusted either
        damaged = bytearray(both)
        damaged[12] ^= 0xFF
        (tmp_path / "edits.log").write_bytes(bytes(damaged))
        recorder = Recorder()
        with use_recorder(recorder):
            recovered = EditLog.open(tmp_path)
        assert recovered.version == 1
        assert recovered.last_recovery.replayed == 0
        assert recorder.counters["editlog.torn_records"] == 2
        assert (tmp_path / "edits.log").read_bytes() == b""


class TestAppendVerifiedBytes:
    """The persistence primitive the log is built on."""

    def test_clean_append_returns_false(self, tmp_path):
        from repro.store import append_verified_bytes

        path = tmp_path / "log"
        assert append_verified_bytes(path, b"one\n") is False
        assert append_verified_bytes(path, b"two\n") is False
        assert path.read_bytes() == b"one\ntwo\n"

    def test_torn_append_is_recovered_in_place(self, tmp_path):
        from repro.store import append_verified_bytes

        path = tmp_path / "log"
        append_verified_bytes(path, b"intact-record\n")
        recorder = Recorder()
        with use_recorder(recorder):
            with faults.use_faults(faults.FaultPlan.always("torn-write")):
                recovered = append_verified_bytes(path, b"second-record\n")
        assert recovered is True
        assert recorder.counters["store.torn_appends_recovered"] == 1
        assert path.read_bytes() == b"intact-record\nsecond-record\n"
