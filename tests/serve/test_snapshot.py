"""Snapshot lifecycle: refcounts, hot-swap, MVCC chain, cache reclamation.

The cache-reclamation tests encode the leak-fix acceptance: a retired
snapshot's sat/subsumption/hierarchy caches must be dropped the moment
its last in-flight request releases it — not at interpreter shutdown,
not at the next GC cycle.  The MVCC stress tests encode the serving
PR's isolation acceptance: a reader pinned to snapshot N can never
observe a partially reclassified snapshot N+1, no matter how the swap
races it, and a chain of swaps releases each retired version exactly
when its last in-flight request finishes.
"""

import threading
import time

import pytest

from repro.dl import Atomic, Reasoner, parse_tbox
from repro.obs import Recorder, use_recorder
from repro.robust import faults
from repro.serve.snapshot import Snapshot, SnapshotError, SnapshotManager


@pytest.fixture(autouse=True)
def quiet_faults():
    with faults.suspended():
        yield


def vehicles():
    return parse_tbox(
        """
        car [= motorvehicle & some size.small
        pickup [= motorvehicle & some size.big
        motorvehicle [= some uses.gasoline
        """
    )


class TestReasonerRelease:
    def test_release_drops_every_cache(self):
        reasoner = Reasoner(vehicles())
        reasoner.subsumes(Atomic("motorvehicle"), Atomic("car"))
        reasoner.is_satisfiable(Atomic("car"))
        reasoner.classify()
        stats = reasoner.cache_stats()
        assert stats["sat"] > 0 and stats["subs"] > 0 and stats["hierarchy"] > 0
        reasoner.release()
        assert reasoner.cache_stats() == {"sat": 0, "subs": 0, "hierarchy": 0}

    def test_release_keeps_reasoner_usable(self):
        reasoner = Reasoner(vehicles())
        assert reasoner.subsumes(Atomic("motorvehicle"), Atomic("car"))
        reasoner.release()
        assert reasoner.subsumes(Atomic("motorvehicle"), Atomic("car"))

    def test_release_is_counted(self):
        recorder = Recorder()
        reasoner = Reasoner(vehicles())
        with use_recorder(recorder):
            reasoner.release()
        assert recorder.counters["reasoner.releases"] == 1


class TestSnapshotRefcount:
    def test_acquire_release_cycle(self):
        snapshot = Snapshot(vehicles(), 1).prepare()
        snapshot.acquire()
        snapshot.acquire()
        assert snapshot.refs == 2
        snapshot.release()
        snapshot.release()
        assert snapshot.refs == 0
        assert not snapshot.released  # never retired: caches stay hot

    def test_over_release_raises(self):
        snapshot = Snapshot(vehicles(), 1).prepare()
        with pytest.raises(SnapshotError):
            snapshot.release()

    def test_retire_with_no_refs_drops_caches_immediately(self):
        snapshot = Snapshot(vehicles(), 1).prepare()
        assert snapshot.reasoner.cache_stats()["hierarchy"] > 0
        snapshot.retire()
        assert snapshot.released
        assert snapshot.hierarchy is None
        assert snapshot.reasoner.cache_stats() == {
            "sat": 0, "subs": 0, "hierarchy": 0,
        }

    def test_retired_snapshot_waits_for_last_inflight_request(self):
        """The leak-fix acceptance test: caches drop at the LAST release."""
        snapshot = Snapshot(vehicles(), 1).prepare()
        snapshot.acquire()
        snapshot.acquire()
        # populate per-request caches beyond the pre-classification
        snapshot.reasoner.subsumes(Atomic("motorvehicle"), Atomic("pickup"))
        snapshot.retire()
        assert snapshot.retired and not snapshot.released
        # still serving: caches must remain available to in-flight work
        assert snapshot.reasoner.cache_stats()["subs"] > 0
        snapshot.release()
        assert not snapshot.released  # one request still holds it
        assert snapshot.reasoner.cache_stats()["subs"] > 0
        snapshot.release()
        assert snapshot.released
        assert snapshot.reasoner.cache_stats() == {
            "sat": 0, "subs": 0, "hierarchy": 0,
        }

    def test_acquire_after_full_release_raises(self):
        snapshot = Snapshot(vehicles(), 1).prepare()
        snapshot.retire()
        with pytest.raises(SnapshotError):
            snapshot.acquire()

    def test_release_counters(self):
        recorder = Recorder()
        with use_recorder(recorder):
            snapshot = Snapshot(vehicles(), 1).prepare()
            snapshot.acquire()
            snapshot.retire()
            assert "serve.snapshots_released" not in recorder.counters
            snapshot.release()
        assert recorder.counters["serve.snapshots_retired"] == 1
        assert recorder.counters["serve.snapshots_released"] == 1


class TestSnapshotManager:
    def test_boot_snapshot_is_preclassified(self):
        manager = SnapshotManager(vehicles())
        assert manager.version == 1
        assert manager.current.hierarchy is not None
        assert manager.current.hierarchy.complete

    def test_swap_retires_old_and_bumps_version(self):
        manager = SnapshotManager(vehicles())
        old = manager.current
        manager.load_and_swap(parse_tbox("dog [= animal"))
        assert manager.version == 2
        assert old.retired and old.released
        assert manager.current.hierarchy is not None
        assert "dog" in manager.current.tbox.atomic_names()

    def test_swap_waits_for_inflight_acquisitions(self):
        manager = SnapshotManager(vehicles())
        held = manager.acquire()
        manager.load_and_swap(parse_tbox("dog [= animal"))
        assert held.retired and not held.released
        # the in-flight request still answers from the old version
        assert held.hierarchy is not None
        assert held.hierarchy.is_subsumed_by("car", "motorvehicle")
        held.release()
        assert held.released and held.hierarchy is None

    def test_unprepared_swap_rejected(self):
        manager = SnapshotManager(vehicles())
        bare = Snapshot(parse_tbox("dog [= animal"), 2)
        with pytest.raises(SnapshotError):
            manager.swap(bare)

    def test_stale_swap_rejected(self):
        manager = SnapshotManager(vehicles())
        first = manager.prepare(parse_tbox("dog [= animal"))
        second = manager.prepare(parse_tbox("cat [= animal"))
        manager.swap(second)
        with pytest.raises(SnapshotError):
            manager.swap(first)

    def test_swap_persists_tbox_text_crash_safely(self, tmp_path):
        store = tmp_path / "active.tbox"
        manager = SnapshotManager(vehicles(), store_path=store)
        manager.load_and_swap(parse_tbox("dog [= animal"))
        text = store.read_text(encoding="utf-8")
        assert "dog" in text and "animal" in text
        # the persisted text round-trips through the parser
        assert "dog" in parse_tbox(text).atomic_names()


class TestIncrementalSwap:
    def _edited(self):
        return parse_tbox(
            """
            car [= motorvehicle & some size.small
            pickup [= motorvehicle & some size.big
            van [= motorvehicle & some size.big
            motorvehicle [= some uses.gasoline
            """
        )

    def test_small_edit_swaps_incrementally(self):
        recorder = Recorder()
        manager = SnapshotManager(vehicles())
        with use_recorder(recorder):
            manager.load_and_swap(self._edited())
        current = manager.current
        assert current.swap_mode == "incremental"
        assert current.swap_detail is None
        assert recorder.counters["serve.incremental_swaps"] == 1
        assert "serve.full_swaps" not in recorder.counters
        assert current.hierarchy.parents("van") == frozenset({"motorvehicle"})

    def test_incremental_swap_answers_match_full(self):
        manager = SnapshotManager(vehicles())
        manager.load_and_swap(self._edited())
        full = Reasoner(self._edited()).classify()
        got = manager.current.hierarchy
        assert got.groups() == full.groups()
        assert got.group_of == full.group_of
        assert got.poset == full.poset

    def test_disabled_manager_always_swaps_full(self):
        recorder = Recorder()
        manager = SnapshotManager(vehicles(), incremental=False)
        with use_recorder(recorder):
            manager.load_and_swap(self._edited())
        assert manager.current.swap_mode == "full"
        assert recorder.counters["serve.full_swaps"] == 1
        assert "serve.incremental_swaps" not in recorder.counters

    def test_threshold_forces_fallback(self):
        manager = SnapshotManager(vehicles(), max_affected_fraction=0.0)
        manager.load_and_swap(self._edited())
        current = manager.current
        assert current.swap_mode == "full"
        assert "fraction" in current.swap_detail

    def test_unrelated_tbox_falls_back_to_full(self):
        # every old name is removed and every new name added: the
        # affected fraction is 1.0, far past the default threshold
        recorder = Recorder()
        manager = SnapshotManager(vehicles())
        with use_recorder(recorder):
            manager.load_and_swap(parse_tbox("dog [= animal"))
        assert manager.current.swap_mode == "full"
        assert recorder.counters["serve.full_swaps"] == 1

    def test_boot_snapshot_is_a_full_swap(self):
        manager = SnapshotManager(vehicles())
        assert manager.current.swap_mode == "full"


def edit_chain():
    """Five TBox versions, each adding one vehicle kind to the last."""
    base = (
        "car [= motorvehicle & some size.small\n"
        "pickup [= motorvehicle & some size.big\n"
        "motorvehicle [= some uses.gasoline\n"
    )
    texts = [base]
    for name in ("van", "bus", "truck", "tractor"):
        texts.append(texts[-1] + f"{name} [= motorvehicle\n")
    return [parse_tbox(text) for text in texts]


class TestMvccChain:
    def test_prepare_accepts_skipped_versions(self):
        """Coalesced publication: the chain may jump v1 -> v4."""
        manager = SnapshotManager(vehicles())
        prepared = manager.prepare(parse_tbox("dog [= animal"), version=4)
        manager.swap(prepared)
        assert manager.version == 4

    def test_prepare_rejects_non_advancing_version(self):
        manager = SnapshotManager(vehicles())
        with pytest.raises(SnapshotError):
            manager.prepare(parse_tbox("dog [= animal"), version=1)

    def test_initial_version_carries_through(self):
        """A recovered server boots at the edit log's version."""
        manager = SnapshotManager(vehicles(), initial_version=7)
        assert manager.version == 7
        manager.load_and_swap(parse_tbox("dog [= animal"))
        assert manager.version == 8

    def test_live_lists_current_and_pinned_versions_only(self):
        chain = edit_chain()
        manager = SnapshotManager(chain[0])
        held = manager.acquire()  # pin v1 across two swaps
        manager.load_and_swap(chain[1])
        middle = manager.current
        manager.load_and_swap(chain[2])
        # v2 was retired with no holders: dropped from the chain at once
        assert middle.released
        assert [entry["version"] for entry in manager.live()] == [1, 3]
        held.release()
        assert [entry["version"] for entry in manager.live()] == [3]

    def test_chained_swaps_release_each_version_at_last_inflight(self):
        """The retirement ordering acceptance: a pinned predecessor keeps
        its caches through any number of successor swaps, and loses them
        at exactly its own last release."""
        chain = edit_chain()
        expected_v1 = Reasoner(chain[0]).classify().groups()
        manager = SnapshotManager(chain[0])
        held = manager.acquire()
        for successor in chain[1:]:
            manager.load_and_swap(successor)
        assert held.retired and not held.released
        # the pinned reader still answers from its own version, complete
        assert held.hierarchy is not None and held.hierarchy.complete
        assert held.hierarchy.groups() == expected_v1
        assert held.reasoner.cache_stats()["hierarchy"] > 0
        held.release()
        assert held.released and held.hierarchy is None
        assert held.reasoner.cache_stats() == {
            "sat": 0, "subs": 0, "hierarchy": 0,
        }


class TestMvccStress:
    """Readers racing a swapper loop over a live snapshot chain."""

    def test_readers_never_observe_partial_reclassification(self):
        chain = edit_chain()
        expected = {
            version: Reasoner(tbox).classify().groups()
            for version, tbox in enumerate(chain, start=1)
        }
        manager = SnapshotManager(chain[0])
        stop = threading.Event()
        violations: list[tuple[int, str]] = []
        observed_versions: set[int] = set()
        lock = threading.Lock()

        def reader() -> None:
            while not stop.is_set():
                snapshot = manager.acquire()
                try:
                    hierarchy = snapshot.hierarchy
                    if hierarchy is None:
                        with lock:
                            violations.append(
                                (snapshot.version, "hierarchy gone while held")
                            )
                        return
                    if not hierarchy.complete:
                        with lock:
                            violations.append(
                                (snapshot.version, "incomplete hierarchy served")
                            )
                        return
                    groups = hierarchy.groups()
                    if groups != expected[snapshot.version]:
                        with lock:
                            violations.append(
                                (snapshot.version, "groups of another version")
                            )
                        return
                    with lock:
                        observed_versions.add(snapshot.version)
                finally:
                    snapshot.release()

        readers = [threading.Thread(target=reader) for _ in range(6)]
        for thread in readers:
            thread.start()
        try:
            for successor in chain[1:]:
                # prepare+swap while readers hammer acquire/release; the
                # pause keeps every version on the serving path long
                # enough for readers to actually land on it
                manager.load_and_swap(successor)
                time.sleep(0.02)
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
        assert not violations, violations[:5]
        # the stress actually spanned the chain, first and last included
        assert {1, len(chain)} <= observed_versions
        # once the dust settles nothing holds the final snapshot
        assert manager.current.refs == 0
        assert manager.current.hierarchy is not None
