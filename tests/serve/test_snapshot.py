"""Snapshot lifecycle: refcounts, hot-swap, and cache reclamation.

The cache-reclamation tests encode this PR's leak-fix acceptance: a
retired snapshot's sat/subsumption/hierarchy caches must be dropped the
moment its last in-flight request releases it — not at interpreter
shutdown, not at the next GC cycle.
"""

import pytest

from repro.dl import Atomic, Reasoner, parse_tbox
from repro.obs import Recorder, use_recorder
from repro.robust import faults
from repro.serve.snapshot import Snapshot, SnapshotError, SnapshotManager


@pytest.fixture(autouse=True)
def quiet_faults():
    with faults.suspended():
        yield


def vehicles():
    return parse_tbox(
        """
        car [= motorvehicle & some size.small
        pickup [= motorvehicle & some size.big
        motorvehicle [= some uses.gasoline
        """
    )


class TestReasonerRelease:
    def test_release_drops_every_cache(self):
        reasoner = Reasoner(vehicles())
        reasoner.subsumes(Atomic("motorvehicle"), Atomic("car"))
        reasoner.is_satisfiable(Atomic("car"))
        reasoner.classify()
        stats = reasoner.cache_stats()
        assert stats["sat"] > 0 and stats["subs"] > 0 and stats["hierarchy"] > 0
        reasoner.release()
        assert reasoner.cache_stats() == {"sat": 0, "subs": 0, "hierarchy": 0}

    def test_release_keeps_reasoner_usable(self):
        reasoner = Reasoner(vehicles())
        assert reasoner.subsumes(Atomic("motorvehicle"), Atomic("car"))
        reasoner.release()
        assert reasoner.subsumes(Atomic("motorvehicle"), Atomic("car"))

    def test_release_is_counted(self):
        recorder = Recorder()
        reasoner = Reasoner(vehicles())
        with use_recorder(recorder):
            reasoner.release()
        assert recorder.counters["reasoner.releases"] == 1


class TestSnapshotRefcount:
    def test_acquire_release_cycle(self):
        snapshot = Snapshot(vehicles(), 1).prepare()
        snapshot.acquire()
        snapshot.acquire()
        assert snapshot.refs == 2
        snapshot.release()
        snapshot.release()
        assert snapshot.refs == 0
        assert not snapshot.released  # never retired: caches stay hot

    def test_over_release_raises(self):
        snapshot = Snapshot(vehicles(), 1).prepare()
        with pytest.raises(SnapshotError):
            snapshot.release()

    def test_retire_with_no_refs_drops_caches_immediately(self):
        snapshot = Snapshot(vehicles(), 1).prepare()
        assert snapshot.reasoner.cache_stats()["hierarchy"] > 0
        snapshot.retire()
        assert snapshot.released
        assert snapshot.hierarchy is None
        assert snapshot.reasoner.cache_stats() == {
            "sat": 0, "subs": 0, "hierarchy": 0,
        }

    def test_retired_snapshot_waits_for_last_inflight_request(self):
        """The leak-fix acceptance test: caches drop at the LAST release."""
        snapshot = Snapshot(vehicles(), 1).prepare()
        snapshot.acquire()
        snapshot.acquire()
        # populate per-request caches beyond the pre-classification
        snapshot.reasoner.subsumes(Atomic("motorvehicle"), Atomic("pickup"))
        snapshot.retire()
        assert snapshot.retired and not snapshot.released
        # still serving: caches must remain available to in-flight work
        assert snapshot.reasoner.cache_stats()["subs"] > 0
        snapshot.release()
        assert not snapshot.released  # one request still holds it
        assert snapshot.reasoner.cache_stats()["subs"] > 0
        snapshot.release()
        assert snapshot.released
        assert snapshot.reasoner.cache_stats() == {
            "sat": 0, "subs": 0, "hierarchy": 0,
        }

    def test_acquire_after_full_release_raises(self):
        snapshot = Snapshot(vehicles(), 1).prepare()
        snapshot.retire()
        with pytest.raises(SnapshotError):
            snapshot.acquire()

    def test_release_counters(self):
        recorder = Recorder()
        with use_recorder(recorder):
            snapshot = Snapshot(vehicles(), 1).prepare()
            snapshot.acquire()
            snapshot.retire()
            assert "serve.snapshots_released" not in recorder.counters
            snapshot.release()
        assert recorder.counters["serve.snapshots_retired"] == 1
        assert recorder.counters["serve.snapshots_released"] == 1


class TestSnapshotManager:
    def test_boot_snapshot_is_preclassified(self):
        manager = SnapshotManager(vehicles())
        assert manager.version == 1
        assert manager.current.hierarchy is not None
        assert manager.current.hierarchy.complete

    def test_swap_retires_old_and_bumps_version(self):
        manager = SnapshotManager(vehicles())
        old = manager.current
        manager.load_and_swap(parse_tbox("dog [= animal"))
        assert manager.version == 2
        assert old.retired and old.released
        assert manager.current.hierarchy is not None
        assert "dog" in manager.current.tbox.atomic_names()

    def test_swap_waits_for_inflight_acquisitions(self):
        manager = SnapshotManager(vehicles())
        held = manager.acquire()
        manager.load_and_swap(parse_tbox("dog [= animal"))
        assert held.retired and not held.released
        # the in-flight request still answers from the old version
        assert held.hierarchy is not None
        assert held.hierarchy.is_subsumed_by("car", "motorvehicle")
        held.release()
        assert held.released and held.hierarchy is None

    def test_unprepared_swap_rejected(self):
        manager = SnapshotManager(vehicles())
        bare = Snapshot(parse_tbox("dog [= animal"), 2)
        with pytest.raises(SnapshotError):
            manager.swap(bare)

    def test_stale_swap_rejected(self):
        manager = SnapshotManager(vehicles())
        first = manager.prepare(parse_tbox("dog [= animal"))
        second = manager.prepare(parse_tbox("cat [= animal"))
        manager.swap(second)
        with pytest.raises(SnapshotError):
            manager.swap(first)

    def test_swap_persists_tbox_text_crash_safely(self, tmp_path):
        store = tmp_path / "active.tbox"
        manager = SnapshotManager(vehicles(), store_path=store)
        manager.load_and_swap(parse_tbox("dog [= animal"))
        text = store.read_text(encoding="utf-8")
        assert "dog" in text and "animal" in text
        # the persisted text round-trips through the parser
        assert "dog" in parse_tbox(text).atomic_names()


class TestIncrementalSwap:
    def _edited(self):
        return parse_tbox(
            """
            car [= motorvehicle & some size.small
            pickup [= motorvehicle & some size.big
            van [= motorvehicle & some size.big
            motorvehicle [= some uses.gasoline
            """
        )

    def test_small_edit_swaps_incrementally(self):
        recorder = Recorder()
        manager = SnapshotManager(vehicles())
        with use_recorder(recorder):
            manager.load_and_swap(self._edited())
        current = manager.current
        assert current.swap_mode == "incremental"
        assert current.swap_detail is None
        assert recorder.counters["serve.incremental_swaps"] == 1
        assert "serve.full_swaps" not in recorder.counters
        assert current.hierarchy.parents("van") == frozenset({"motorvehicle"})

    def test_incremental_swap_answers_match_full(self):
        manager = SnapshotManager(vehicles())
        manager.load_and_swap(self._edited())
        full = Reasoner(self._edited()).classify()
        got = manager.current.hierarchy
        assert got.groups() == full.groups()
        assert got.group_of == full.group_of
        assert got.poset == full.poset

    def test_disabled_manager_always_swaps_full(self):
        recorder = Recorder()
        manager = SnapshotManager(vehicles(), incremental=False)
        with use_recorder(recorder):
            manager.load_and_swap(self._edited())
        assert manager.current.swap_mode == "full"
        assert recorder.counters["serve.full_swaps"] == 1
        assert "serve.incremental_swaps" not in recorder.counters

    def test_threshold_forces_fallback(self):
        manager = SnapshotManager(vehicles(), max_affected_fraction=0.0)
        manager.load_and_swap(self._edited())
        current = manager.current
        assert current.swap_mode == "full"
        assert "fraction" in current.swap_detail

    def test_unrelated_tbox_falls_back_to_full(self):
        # every old name is removed and every new name added: the
        # affected fraction is 1.0, far past the default threshold
        recorder = Recorder()
        manager = SnapshotManager(vehicles())
        with use_recorder(recorder):
            manager.load_and_swap(parse_tbox("dog [= animal"))
        assert manager.current.swap_mode == "full"
        assert recorder.counters["serve.full_swaps"] == 1

    def test_boot_snapshot_is_a_full_swap(self):
        manager = SnapshotManager(vehicles())
        assert manager.current.swap_mode == "full"
