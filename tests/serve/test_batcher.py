"""Batcher: coalescing, dedup fan-out, hierarchy fast path, version splits."""

import asyncio

import pytest

from repro.dl import Atomic, parse_tbox, some
from repro.obs import Recorder, use_recorder
from repro.robust import Budget
from repro.robust import faults
from repro.serve.batcher import (
    KIND_SATISFIABLE,
    KIND_SUBSUMES,
    Batcher,
    BatchAnswer,
)
from repro.serve.snapshot import Snapshot


@pytest.fixture(autouse=True)
def quiet_faults():
    with faults.suspended():
        yield


def vehicles():
    return parse_tbox(
        """
        car [= motorvehicle & some size.small
        pickup [= motorvehicle & some size.big
        motorvehicle [= some uses.gasoline
        """
    )


def run_batch(batcher, snapshot, checks, budget=None):
    """Submit all checks concurrently; return their BatchAnswers in order."""
    budget = budget or Budget.unlimited()

    async def go():
        return await asyncio.gather(
            *(
                batcher.submit(kind, snapshot, concepts, budget)
                for kind, concepts in checks
            )
        )

    return asyncio.run(go())


class TestCoalescing:
    def test_concurrent_checks_share_one_batch(self):
        recorder = Recorder()
        snapshot = Snapshot(vehicles(), 1).prepare()
        batcher = Batcher(window_ms=20.0, max_batch=64)
        checks = [
            (KIND_SUBSUMES, (Atomic("motorvehicle"), Atomic("car"))),
            (KIND_SUBSUMES, (Atomic("car"), Atomic("pickup"))),
            (KIND_SATISFIABLE, (Atomic("pickup"),)),
        ]
        with use_recorder(recorder):
            answers = run_batch(batcher, snapshot, checks)
        assert [a.verdict.as_bool() for a in answers] == [True, False, True]
        assert recorder.counters["serve.batches"] == 1
        sizes = recorder.snapshot()["histograms"]["serve.batch_size"]
        assert sizes["count"] == 1 and sizes["max"] == 3.0

    def test_max_batch_flushes_early(self):
        recorder = Recorder()
        snapshot = Snapshot(vehicles(), 1).prepare()
        batcher = Batcher(window_ms=10_000.0, max_batch=2)
        checks = [
            (KIND_SATISFIABLE, (Atomic("car"),)),
            (KIND_SATISFIABLE, (Atomic("pickup"),)),
        ]
        with use_recorder(recorder):
            answers = run_batch(batcher, snapshot, checks)
        # a 10-second window would time the test out; size-2 flush must fire
        assert all(a.verdict.as_bool() for a in answers)
        assert recorder.counters["serve.batches"] == 1

    def test_duplicate_checks_fan_out_one_answer(self):
        recorder = Recorder()
        snapshot = Snapshot(vehicles(), 1).prepare()
        batcher = Batcher(window_ms=20.0, max_batch=64)
        same = (KIND_SUBSUMES, (Atomic("motorvehicle"), Atomic("car")))
        with use_recorder(recorder):
            answers = run_batch(batcher, snapshot, [same, same, same])
        assert all(a.verdict.as_bool() is True for a in answers)
        assert recorder.counters["serve.dedup_hits"] == 2
        # the underlying question ran once, from the hierarchy
        assert recorder.counters["serve.batched_hits"] == 1

    def test_unbatchable_kind_rejected(self):
        batcher = Batcher()
        snapshot = Snapshot(vehicles(), 1).prepare()

        async def go():
            await batcher.submit(
                "classify", snapshot, (), Budget.unlimited()
            )

        with pytest.raises(ValueError):
            asyncio.run(go())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Batcher(window_ms=-1.0)
        with pytest.raises(ValueError):
            Batcher(max_batch=0)


class TestAnswerSources:
    def test_named_checks_use_hierarchy_not_tableau(self):
        recorder = Recorder()
        snapshot = Snapshot(vehicles(), 1).prepare()
        batcher = Batcher(window_ms=20.0, max_batch=64)
        checks = [
            (KIND_SUBSUMES, (Atomic("motorvehicle"), Atomic("car"))),
            (KIND_SATISFIABLE, (Atomic("car"),)),
        ]
        with use_recorder(recorder):
            answers = run_batch(batcher, snapshot, checks)
        assert [a.source for a in answers] == ["hierarchy", "hierarchy"]
        assert recorder.counters["serve.batched_hits"] == 2
        # the fast path does no tableau work at all
        assert "tableau.solve_calls" not in recorder.counters

    def test_complex_concepts_fall_back_to_governed_tableau(self):
        recorder = Recorder()
        snapshot = Snapshot(vehicles(), 1).prepare()
        batcher = Batcher(window_ms=20.0, max_batch=64)
        complex_check = (
            KIND_SATISFIABLE,
            (some("uses", Atomic("gasoline")),),
        )
        with use_recorder(recorder):
            (answer,) = run_batch(batcher, snapshot, [complex_check])
        assert answer.source == "tableau"
        assert answer.verdict.as_bool() is True
        assert recorder.counters["tableau.solve_calls"] > 0

    def test_unknown_name_falls_back_to_tableau(self):
        snapshot = Snapshot(vehicles(), 1).prepare()
        batcher = Batcher(window_ms=20.0, max_batch=64)
        (answer,) = run_batch(
            batcher,
            snapshot,
            [(KIND_SATISFIABLE, (Atomic("submarine"),))],
        )
        # not in the pre-classified hierarchy, but trivially satisfiable
        assert answer.source == "tableau"
        assert answer.verdict.as_bool() is True

    def test_undersized_budget_yields_unknown(self):
        snapshot = Snapshot(vehicles(), 1).prepare()
        batcher = Batcher(window_ms=20.0, max_batch=64)
        starved = Budget(max_nodes=1)
        (answer,) = run_batch(
            batcher,
            snapshot,
            [(KIND_SATISFIABLE, (some("uses", Atomic("gasoline")),))],
            budget=starved,
        )
        assert answer.source == "tableau"
        assert answer.verdict.is_unknown
        assert "max_nodes=1" in answer.verdict.reason


class TestVersionGrouping:
    def test_flush_straddling_swap_splits_by_snapshot(self):
        recorder = Recorder()
        old = Snapshot(vehicles(), 1).prepare()
        new = Snapshot(parse_tbox("car [= toy"), 2).prepare()
        batcher = Batcher(window_ms=30.0, max_batch=64)
        budget = Budget.unlimited()

        async def go():
            return await asyncio.gather(
                batcher.submit(
                    KIND_SUBSUMES, old, (Atomic("motorvehicle"), Atomic("car")), budget
                ),
                batcher.submit(
                    KIND_SUBSUMES, new, (Atomic("motorvehicle"), Atomic("car")), budget
                ),
            )

        with use_recorder(recorder):
            old_answer, new_answer = asyncio.run(go())
        # each request is answered from the snapshot it acquired:
        # v1 says car is a motorvehicle, v2 says it is only a toy
        assert old_answer.verdict.as_bool() is True
        assert new_answer.verdict.as_bool() is False
        assert recorder.counters["serve.batches"] == 1
        assert recorder.counters["serve.batch_splits"] == 1

    def test_flush_now_drains_pending(self):
        snapshot = Snapshot(vehicles(), 1).prepare()
        batcher = Batcher(window_ms=60_000.0, max_batch=64)

        async def go():
            task = asyncio.ensure_future(
                batcher.submit(
                    KIND_SATISFIABLE,
                    snapshot,
                    (Atomic("car"),),
                    Budget.unlimited(),
                )
            )
            await asyncio.sleep(0)  # let submit() enqueue
            assert batcher.pending == 1
            batcher.flush_now()
            answer = await task
            assert batcher.pending == 0
            return answer

        answer = asyncio.run(go())
        assert isinstance(answer, BatchAnswer)
        assert answer.verdict.as_bool() is True
