"""Admission control: 429/503 refusals, budget slicing, draining."""

import pytest

from repro.obs import Recorder, use_recorder
from repro.robust import faults
from repro.serve.admission import AdmissionController, AdmissionError


@pytest.fixture(autouse=True)
def quiet_faults():
    with faults.suspended():
        yield


class TestAdmission:
    def test_admit_and_finish_track_inflight(self):
        controller = AdmissionController(soft_limit=2, hard_limit=4)
        first = controller.admit()
        second = controller.admit()
        assert controller.inflight == 2
        first.finish()
        assert controller.inflight == 1
        second.finish()
        assert controller.inflight == 0

    def test_soft_limit_refuses_with_429(self):
        controller = AdmissionController(
            soft_limit=1, hard_limit=4, retry_after_s=0.02
        )
        ticket = controller.admit()
        with pytest.raises(AdmissionError) as info:
            controller.admit()
        assert info.value.status == 429
        assert info.value.retry_after_s == pytest.approx(0.02)
        ticket.finish()
        controller.admit().finish()  # slot freed: admitted again

    def test_hard_limit_refuses_with_503(self):
        controller = AdmissionController(soft_limit=1, hard_limit=1)
        controller.admit()
        with pytest.raises(AdmissionError) as info:
            controller.admit()
        assert info.value.status == 503

    def test_draining_refuses_everything_with_503(self):
        controller = AdmissionController(soft_limit=8, hard_limit=16)
        controller.drain()
        with pytest.raises(AdmissionError) as info:
            controller.admit()
        assert info.value.status == 503
        assert "draining" in str(info.value)

    def test_finish_is_idempotent(self):
        controller = AdmissionController(soft_limit=2, hard_limit=4)
        ticket = controller.admit()
        ticket.finish()
        ticket.finish()
        assert controller.inflight == 0

    def test_rejections_are_counted(self):
        recorder = Recorder()
        controller = AdmissionController(soft_limit=1, hard_limit=1)
        with use_recorder(recorder):
            controller.admit()
            with pytest.raises(AdmissionError):
                controller.admit()  # hard limit -> overloaded
        assert recorder.counters["serve.admitted"] == 1
        assert recorder.counters["serve.rejected_overloaded"] == 1

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(soft_limit=0)
        with pytest.raises(ValueError):
            AdmissionController(soft_limit=8, hard_limit=4)


class TestBudgetSlicing:
    def test_allowance_split_across_soft_limit_slots(self):
        controller = AdmissionController(
            soft_limit=10, hard_limit=20, node_allowance=1000
        )
        budget = controller.request_budget()
        assert budget.max_nodes == 100

    def test_tiny_allowance_never_rounds_to_zero(self):
        controller = AdmissionController(
            soft_limit=64, hard_limit=128, node_allowance=10
        )
        assert controller.request_budget().max_nodes == 1

    def test_unbounded_allowance(self):
        controller = AdmissionController(node_allowance=None, ms_allowance=None)
        budget = controller.request_budget()
        assert budget.max_nodes is None
        assert budget.remaining_ms() is None

    def test_ms_allowance_starts_the_clock(self):
        controller = AdmissionController(ms_allowance=60_000.0)
        remaining = controller.admit().budget.remaining_ms()
        assert remaining is not None and 0 < remaining <= 60_000.0

    def test_each_ticket_gets_a_fresh_ledger(self):
        controller = AdmissionController(
            soft_limit=2, hard_limit=4, node_allowance=100
        )
        first = controller.admit()
        second = controller.admit()
        assert first.budget is not second.budget
        first.budget.note_nodes(50)
        assert second.budget.nodes == 0
