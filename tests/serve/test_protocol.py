"""Wire-level tests: HTTP framing, JSON bodies, status mapping."""

import asyncio
import json

import pytest

from repro.robust import DISPROVED, PROVED, Verdict
from repro.serve.protocol import (
    BadRequest,
    HttpRequest,
    ProtocolError,
    encode_response,
    error_body,
    read_request,
    require,
    verdict_body,
)


def _parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_post(self):
        body = b'{"concept": "car"}'
        raw = (
            b"POST /v1/satisfiable HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = _parse(raw)
        assert request.method == "POST"
        assert request.path == "/v1/satisfiable"
        assert request.json() == {"concept": "car"}
        assert request.keep_alive

    def test_get_without_body(self):
        request = _parse(b"GET /v1/health HTTP/1.1\r\n\r\n")
        assert request.method == "GET"
        assert request.json() == {}

    def test_query_string_stripped(self):
        request = _parse(b"GET /v1/health?verbose=1 HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/health"

    def test_connection_close_honored(self):
        request = _parse(b"GET /v1/health HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_partial_head_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            _parse(b"GET /v1/health HTT")

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError):
            _parse(b"NONSENSE\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(ProtocolError):
            _parse(b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n")

    def test_truncated_body(self):
        with pytest.raises(ProtocolError):
            _parse(b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")

    def test_malformed_header_line(self):
        with pytest.raises(ProtocolError):
            _parse(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n")


class TestJsonBodies:
    def test_invalid_json_is_bad_request(self):
        request = HttpRequest("POST", "/x", body=b"{nope")
        with pytest.raises(BadRequest):
            request.json()

    def test_non_object_json_is_bad_request(self):
        request = HttpRequest("POST", "/x", body=b"[1, 2]")
        with pytest.raises(BadRequest):
            request.json()

    def test_require_missing_field(self):
        with pytest.raises(BadRequest):
            require({}, "concept")
        assert require({"concept": "car"}, "concept") == "car"


class TestEncodeResponse:
    def test_roundtrip_framing(self):
        raw = encode_response(200, {"answer": True})
        head, _, payload = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert f"Content-Length: {len(payload)}" in lines
        assert json.loads(payload) == {"answer": True}

    def test_extra_headers_and_close(self):
        raw = encode_response(
            429, {"error": "busy"}, keep_alive=False,
            extra_headers={"Retry-After": "0.050"},
        )
        head = raw.partition(b"\r\n\r\n")[0].decode()
        assert "HTTP/1.1 429 Too Many Requests" in head
        assert "Retry-After: 0.050" in head
        assert "Connection: close" in head


class TestStatusMapping:
    def test_definite_verdicts_are_200(self):
        status, body = verdict_body(PROVED, tbox_version=3)
        assert (status, body["answer"], body["tbox_version"]) == (200, True, 3)
        status, body = verdict_body(DISPROVED)
        assert (status, body["answer"]) == (200, False)

    def test_unknown_verdict_is_206_with_reason(self):
        status, body = verdict_body(Verdict.unknown("nodes: 13 > max_nodes=5"))
        assert status == 206
        assert body["answer"] is None
        assert body["verdict"] == "unknown"
        assert "max_nodes=5" in body["reason"]

    def test_error_body_carries_message(self):
        status, body = error_body(404, "no route /nope")
        assert status == 404
        assert "no route" in body["message"]
