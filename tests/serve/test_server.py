"""End-to-end serving tests over a real TCP socket.

Each test boots a :class:`ServerThread` on an ephemeral port and talks
real HTTP through ``http.client``.  The degradation and hot-swap tests
encode this PR's acceptance criteria directly:

* an undersized budget yields **206 + UNKNOWN body** and the server
  stays healthy afterwards;
* requests racing a ``POST /v1/tbox`` hot-swap each get an answer
  consistent with exactly one snapshot version — the one they report.
"""

import threading
import time

import pytest

from repro.dl import parse_tbox
from repro.obs import Recorder, use_recorder
from repro.robust import faults
from repro.serve import ServeConfig, ServerThread, closed_loop


@pytest.fixture(autouse=True)
def quiet_faults():
    with faults.suspended():
        yield

VEHICLES = """
car [= motorvehicle & some size.small
pickup [= motorvehicle & some size.big
motorvehicle [= some uses.gasoline
"""


@pytest.fixture()
def server():
    with ServerThread(parse_tbox(VEHICLES)) as live:
        yield live


class TestEndpoints:
    def test_health(self, server):
        status, body = server.request("GET", "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["tbox_version"] == 1
        assert body["axioms"] == 3

    def test_subsumes_and_satisfiable(self, server):
        with server.client() as client:
            status, body = client.request(
                "POST",
                "/v1/subsumes",
                {"general": "motorvehicle", "specific": "car"},
            )
            assert (status, body["answer"]) == (200, True)
            assert body["source"] == "hierarchy"
            status, body = client.request(
                "POST", "/v1/satisfiable", {"concept": "car & ~car"}
            )
            assert (status, body["answer"]) == (200, False)
            assert body["source"] == "tableau"

    def test_classify(self, server):
        status, body = server.request("POST", "/v1/classify", {})
        assert status == 200
        groups = {name for group in body["groups"] for name in group}
        assert {"car", "pickup", "motorvehicle"} <= groups
        assert "motorvehicle" in body["parents"]["car"]
        assert body["unsatisfiable"] == []

    def test_instances(self, server):
        status, body = server.request(
            "POST",
            "/v1/instances",
            {
                "concept": "motorvehicle",
                "abox": {
                    "concepts": [["herbie", "car"], ["rex", "pickup"]],
                    "roles": [["herbie", "uses", "fuel1"]],
                },
            },
        )
        assert status == 200
        assert body["members"] == ["herbie", "rex"]
        assert "fuel1" in body["non_members"]

    def test_critique(self, server):
        status, body = server.request(
            "POST", "/v1/critique", {"tbox": "dog [= cat\ncat [= dog"}
        )
        assert status == 200
        assert body["findings"] > 0
        assert isinstance(body["report"], str) and body["report"]

    def test_metrics_exposes_serving_counters(self, server):
        recorder = Recorder()
        with use_recorder(recorder):
            server.request(
                "POST", "/v1/satisfiable", {"concept": "car"}
            )
            status, body = server.request("GET", "/v1/metrics")
        assert status == 200
        counters = body["metrics"]["counters"]
        assert counters["serve.requests"] >= 1
        assert counters["serve.admitted"] >= 1
        assert body["serve"]["tbox_version"] == 1
        assert body["serve"]["reasoner_caches"]["hierarchy"] > 0


class TestErrorPaths:
    def test_unknown_route_is_404(self, server):
        status, body = server.request("GET", "/v1/nope")
        assert status == 404
        assert "no route" in body["message"]

    def test_wrong_method_is_405(self, server):
        status, _ = server.request("GET", "/v1/subsumes")
        assert status == 405

    def test_missing_field_is_400(self, server):
        status, body = server.request("POST", "/v1/subsumes", {"general": "car"})
        assert status == 400
        assert "specific" in body["message"]

    def test_concept_syntax_error_is_400(self, server):
        status, body = server.request(
            "POST", "/v1/satisfiable", {"concept": "some ("}
        )
        assert status == 400
        assert "syntax" in body["message"]

    def test_error_does_not_leak_admission_slot(self, server):
        for _ in range(3):
            server.request("POST", "/v1/subsumes", {"general": "car"})
        status, body = server.request("GET", "/v1/health")
        assert (status, body["inflight"]) == (200, 0)


class TestDegradation:
    """Acceptance: undersized budgets degrade to 206, never to failure."""

    def test_undersized_budget_returns_206_unknown(self):
        config = ServeConfig(port=0, node_allowance=5, soft_limit=1, hard_limit=4)
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, body = server.request(
                "POST", "/v1/satisfiable", {"concept": ">= 12 uses.gasoline"}
            )
            assert status == 206
            assert body["answer"] is None
            assert body["verdict"] == "unknown"
            assert "max_nodes=5" in body["reason"]
            # the contract's second half: the server survives the refusal
            status, body = server.request("GET", "/v1/health")
            assert (status, body["status"]) == (200, "ok")
            # named queries still answer definitively from the hierarchy,
            # which never consults a budget
            status, body = server.request(
                "POST", "/v1/satisfiable", {"concept": "car"}
            )
            assert (status, body["answer"]) == (200, True)

    def test_unsatisfiable_instances_degrade_per_individual(self):
        config = ServeConfig(port=0, node_allowance=5, soft_limit=1, hard_limit=4)
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, body = server.request(
                "POST",
                "/v1/instances",
                {
                    "concept": "<= 1 uses.gasoline",
                    "abox": {
                        "concepts": [["herbie", ">= 12 uses.gasoline"]],
                    },
                },
            )
            assert status == 206
            assert "herbie" in body["unknown"]
            assert "max_nodes" in body["unknown"]["herbie"]


class TestHotSwap:
    def test_swap_changes_answers_and_version(self, server):
        with server.client() as client:
            status, body = client.request(
                "POST", "/v1/tbox", {"tbox": "car [= toy"}
            )
            assert status == 200
            assert body["tbox_version"] == 2
            assert body["retired_version"] == 1
            status, body = client.request(
                "POST",
                "/v1/subsumes",
                {"general": "motorvehicle", "specific": "car"},
            )
            assert (status, body["answer"], body["tbox_version"]) == (200, False, 2)
            status, body = client.request("GET", "/v1/health")
            assert body["tbox_version"] == 2

    def test_swap_reports_mode(self, server):
        with server.client() as client:
            # small additive edit: the delta-driven path handles it
            status, body = client.request(
                "POST", "/v1/tbox", {"tbox": VEHICLES + "van [= motorvehicle"}
            )
            assert status == 200
            assert body["swap_mode"] == "incremental"
            assert "swap_detail" not in body
            # replacing the whole vocabulary blows the affected-fraction
            # threshold: the server reports the fallback and its reason
            status, body = client.request(
                "POST", "/v1/tbox", {"tbox": "dog [= animal"}
            )
            assert status == 200
            assert body["swap_mode"] == "full"
            assert body["swap_detail"]

    def test_swap_rejects_unparseable_tbox(self, server):
        status, _ = server.request("POST", "/v1/tbox", {"tbox": "car [= ("})
        assert status == 400
        status, body = server.request("GET", "/v1/health")
        assert body["tbox_version"] == 1  # still serving the old snapshot

    def test_concurrent_requests_see_exactly_one_version(self, server):
        """Acceptance: answers racing a hot-swap are version-consistent.

        v1 proves car [= motorvehicle; v2 (``car [= toy``) disproves it.
        Whatever version each racing request lands on, its answer must
        match that version — no torn reads across the swap.
        """
        results = []
        errors = []
        start = threading.Event()

        def prober():
            with server.client() as client:
                start.wait()
                for _ in range(20):
                    try:
                        status, body = client.request(
                            "POST",
                            "/v1/subsumes",
                            {"general": "motorvehicle", "specific": "car"},
                        )
                    except Exception as exc:  # noqa: BLE001
                        errors.append(repr(exc))
                        return
                    results.append((status, body["tbox_version"], body["answer"]))

        def swapper():
            start.wait()
            status, _ = server.request("POST", "/v1/tbox", {"tbox": "car [= toy"})
            results.append(("swap", status))

        threads = [threading.Thread(target=prober) for _ in range(4)]
        threads.append(threading.Thread(target=swapper))
        for thread in threads:
            thread.start()
        start.set()
        for thread in threads:
            thread.join()

        assert not errors
        probes = [r for r in results if r[0] != "swap"]
        assert ("swap", 200) in results
        assert len(probes) == 80
        versions = {version for _, version, _ in probes}
        assert versions <= {1, 2}
        for status, version, answer in probes:
            assert status == 200
            # the answer must agree with the version that produced it
            assert answer is (version == 1)
        # the swap retires v1: once drained, its caches are gone and v2 serves
        status, body = server.request("GET", "/v1/health")
        assert (status, body["tbox_version"]) == (200, 2)

    def test_snapshots_are_released_after_swap(self, server):
        recorder = Recorder()
        with use_recorder(recorder):
            server.request("POST", "/v1/tbox", {"tbox": "car [= toy"})
            server.request(
                "POST",
                "/v1/subsumes",
                {"general": "toy", "specific": "car"},
            )
        assert recorder.counters["serve.tbox_swaps"] == 1
        assert recorder.counters["serve.snapshots_retired"] == 1
        assert recorder.counters["serve.snapshots_released"] == 1


class TestEditPublicationContract:
    """Swap-frequency degradation: explicit statuses, query semantics kept.

    The edit-side analogue of the 206/429/503 degradation contract: a
    throttled POST /v1/tbox is still acknowledged 200 — durably, when an
    edit log is configured — but says so explicitly (``deferred`` /
    ``coalesced``), and every query route keeps serving the published
    version with unchanged semantics while edits queue.
    """

    def test_throttled_edits_report_deferred_then_coalesced(self):
        config = ServeConfig(port=0, min_swap_interval_ms=600_000)
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, body = server.request(
                "POST", "/v1/tbox", {"tbox": VEHICLES + "van [= motorvehicle"}
            )
            assert status == 200
            assert body["swap_status"] == "deferred"
            assert body["tbox_version"] == 2  # acknowledged (logged) version
            assert body["published_version"] == 1  # still serving v1
            status, body = server.request(
                "POST", "/v1/tbox", {"tbox": VEHICLES + "bus [= motorvehicle"}
            )
            assert status == 200
            assert body["swap_status"] == "coalesced"  # replaced the queued edit
            assert body["tbox_version"] == 3
            assert body["published_version"] == 1
            # queries keep answering 200 from the published version
            status, body = server.request(
                "POST",
                "/v1/subsumes",
                {"general": "motorvehicle", "specific": "car"},
            )
            assert (status, body["answer"], body["tbox_version"]) == (200, True, 1)
            status, body = server.request("GET", "/v1/health")
            assert body["tbox_version"] == 1
            assert body["logged_version"] == 3
            assert body["pending_swap"] is True

    def test_unthrottled_edit_reports_applied(self, server):
        status, body = server.request("POST", "/v1/tbox", {"tbox": "car [= toy"})
        assert status == 200
        assert body["swap_status"] == "applied"
        assert body["tbox_version"] == 2 and body["retired_version"] == 1

    def test_deferral_is_published_once_the_throttle_allows(self):
        config = ServeConfig(port=0, min_swap_interval_ms=150.0)
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, body = server.request(
                "POST", "/v1/tbox", {"tbox": VEHICLES + "van [= motorvehicle"}
            )
            assert (status, body["swap_status"]) == (200, "deferred")
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _status, health = server.request("GET", "/v1/health")
                if health["tbox_version"] == 2:
                    break
                time.sleep(0.02)
            assert health["tbox_version"] == 2 and not health["pending_swap"]
            status, body = server.request(
                "POST", "/v1/subsumes", {"general": "motorvehicle", "specific": "van"}
            )
            assert (status, body["answer"], body["tbox_version"]) == (200, True, 2)

    def test_budget_degradation_unchanged_while_edits_queue(self):
        """206/UNKNOWN and 200-definite semantics survive a pending swap."""
        config = ServeConfig(
            port=0,
            node_allowance=5,
            soft_limit=1,
            hard_limit=4,
            min_swap_interval_ms=600_000,
        )
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, body = server.request(
                "POST", "/v1/tbox", {"tbox": VEHICLES + "van [= motorvehicle"}
            )
            assert (status, body["swap_status"]) == (200, "deferred")
            status, body = server.request(
                "POST", "/v1/satisfiable", {"concept": ">= 12 uses.gasoline"}
            )
            assert status == 206
            assert body["verdict"] == "unknown"
            status, body = server.request(
                "POST", "/v1/satisfiable", {"concept": "car"}
            )
            assert (status, body["answer"]) == (200, True)

    def test_deferred_and_coalesced_edits_are_counted(self):
        recorder = Recorder()
        config = ServeConfig(port=0, min_swap_interval_ms=600_000)
        with use_recorder(recorder):
            with ServerThread(parse_tbox(VEHICLES), config) as server:
                server.request("POST", "/v1/tbox", {"tbox": "a [= b"})
                server.request("POST", "/v1/tbox", {"tbox": "a [= c"})
                server.request("POST", "/v1/tbox", {"tbox": "a [= d"})
        assert recorder.counters["serve.deferred_edits"] == 1
        assert recorder.counters["serve.coalesced_edits"] == 2


class TestEditLogRecovery:
    """Crash recovery through the whole server, not just the log."""

    def test_restart_serves_last_acknowledged_edit(self, tmp_path):
        from repro.dl import Reasoner

        log_dir = tmp_path / "editlog"
        # the huge throttle means the acknowledged edits are never
        # published before "the crash" (ServerThread teardown drops the
        # pending edit from memory; the log is its only trace)
        config = ServeConfig(
            port=0, edit_log=str(log_dir), min_swap_interval_ms=600_000
        )
        final = VEHICLES + "van [= motorvehicle\nbus [= motorvehicle\n"
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, body = server.request(
                "POST", "/v1/tbox", {"tbox": VEHICLES + "van [= motorvehicle"}
            )
            assert (status, body["swap_status"]) == (200, "deferred")
            status, body = server.request("POST", "/v1/tbox", {"tbox": final})
            assert (status, body["swap_status"]) == (200, "coalesced")
            assert body["tbox_version"] == 3
            _status, health = server.request("GET", "/v1/health")
            assert health["tbox_version"] == 1  # nothing published pre-crash

        restarted = ServeConfig(port=0, edit_log=str(log_dir))
        with ServerThread(parse_tbox(VEHICLES), restarted) as server:
            _status, health = server.request("GET", "/v1/health")
            assert health["tbox_version"] == 3  # the last *acknowledged* edit
            assert health["logged_version"] == 3
            status, body = server.request("POST", "/v1/classify", {})
            expected = Reasoner(parse_tbox(final)).classify()
            assert body["groups"] == sorted(sorted(g) for g in expected.groups())
            _status, metrics = server.request("GET", "/v1/metrics")
            stats = metrics["serve"]["editlog"]
            assert stats["version"] == 3
            assert stats["recovered"] == {
                "fresh": False, "base_version": 1, "replayed": 2, "torn": 0,
            }

    def test_acks_stay_durable_under_armed_torn_writes(self, tmp_path):
        """REPRO_FAULTS=torn-write on the edit log: every acknowledged
        edit survives, recovery replays it, nothing is half-applied."""
        from repro.dl import Reasoner

        log_dir = tmp_path / "editlog"
        config = ServeConfig(
            port=0, edit_log=str(log_dir), min_swap_interval_ms=600_000
        )
        recorder = Recorder()
        final = VEHICLES + "van [= motorvehicle\n"
        with use_recorder(recorder):
            with faults.use_faults(faults.FaultPlan.always("torn-write")):
                with ServerThread(parse_tbox(VEHICLES), config) as server:
                    status, body = server.request(
                        "POST", "/v1/tbox", {"tbox": final}
                    )
                    assert (status, body["swap_status"]) == (200, "deferred")
        # the injected tear hit the append and was recovered pre-ack
        assert recorder.counters["editlog.torn_writes_recovered"] == 1
        with ServerThread(parse_tbox(VEHICLES), ServeConfig(
            port=0, edit_log=str(log_dir)
        )) as server:
            _status, health = server.request("GET", "/v1/health")
            assert health["tbox_version"] == 2
            status, body = server.request("POST", "/v1/classify", {})
            expected = Reasoner(parse_tbox(final)).classify()
            assert body["groups"] == sorted(sorted(g) for g in expected.groups())


class TestClosedLoop:
    def test_closed_loop_smoke(self, server):
        requests = [
            ("POST", "/v1/subsumes", {"general": "motorvehicle", "specific": "car"}),
            ("POST", "/v1/satisfiable", {"concept": "pickup"}),
        ] * 10
        report = closed_loop(server, requests, concurrency=4)
        assert not report.errors
        assert report.requests == 20
        assert report.status_counts == {200: 20}
        assert report.percentile(0.99) >= report.percentile(0.50) > 0
        assert report.throughput_rps() > 0
