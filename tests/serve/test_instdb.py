"""Serving from the DB-backed instance store.

``POST /v1/instances`` without an inline ``abox`` answers from the
server-resident :mod:`repro.instdb` backend: an indexed read over
materialized rows, versioned by ``materialized_version`` so clients can
see a store still catching up with a just-swapped TBox.  These tests
boot real servers over preloaded sqlite files and check the full loop:
boot-time materialization, retrieval, hot-swap re-derivation, and the
health/metrics surfaces.
"""

import time

import pytest

from repro.dl import parse_tbox
from repro.instdb import SqliteBackend
from repro.robust import faults
from repro.serve import ServeConfig, ServerThread


@pytest.fixture(autouse=True)
def quiet_faults():
    with faults.suspended():
        yield


VEHICLES = """
car [= motorvehicle & some size.small
pickup [= motorvehicle & some size.big
motorvehicle [= some uses.gasoline
"""

SWAPPED = """
car [= machine
pickup [= machine
machine [= artifact
"""


def preload(path):
    backend = SqliteBackend(path)
    backend.assert_type("herbie", "car")
    backend.assert_type("bigfoot", "pickup")
    backend.assert_role("herbie", "towed_by", "bigfoot")
    backend.close()


def sqlite_config(tmp_path):
    path = tmp_path / "abox.db"
    preload(path)
    return ServeConfig(port=0, abox_backend="sqlite", abox_db=str(path))


def _wait_until(predicate, timeout_s=15.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestInstancesFromBackend:
    def test_boot_materializes_and_serves_indexed_reads(self, tmp_path):
        config = sqlite_config(tmp_path)
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, body = server.request(
                "POST", "/v1/instances", {"concept": "motorvehicle"}
            )
            assert status == 200
            assert body["source"] == "instdb"
            assert body["backend"] == "sqlite"
            assert body["members"] == ["herbie", "bigfoot"]
            assert body["materialized_version"] == body["tbox_version"] == 1
            assert "non_members" not in body

    def test_limit_pages_and_is_validated(self, tmp_path):
        config = sqlite_config(tmp_path)
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, body = server.request(
                "POST", "/v1/instances", {"concept": "motorvehicle", "limit": 1}
            )
            assert (status, body["members"]) == (200, ["herbie"])
            status, body = server.request(
                "POST", "/v1/instances", {"concept": "car", "limit": -2}
            )
            assert status == 400
            assert "limit" in body["message"]

    def test_complex_concept_falls_back_to_tableau(self, tmp_path):
        config = sqlite_config(tmp_path)
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, body = server.request(
                "POST", "/v1/instances", {"concept": "car | pickup"}
            )
            assert status == 200
            assert set(body["members"]) == {"herbie", "bigfoot"}

    def test_inline_abox_path_is_unchanged(self, tmp_path):
        config = sqlite_config(tmp_path)
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, body = server.request(
                "POST",
                "/v1/instances",
                {
                    "concept": "motorvehicle",
                    "abox": {"concepts": [["kitt", "car"], ["dino", "pickup"]]},
                },
            )
            assert status == 200
            assert body["members"] == ["dino", "kitt"]
            assert body["non_members"] == []
            assert "source" not in body

    def test_swap_rederives_the_store(self, tmp_path):
        config = sqlite_config(tmp_path)
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, _ = server.request("POST", "/v1/tbox", {"tbox": SWAPPED})
            assert status == 200
            status, body = server.request(
                "POST", "/v1/instances", {"concept": "machine"}
            )
            assert status == 200
            assert body["members"] == ["herbie", "bigfoot"]
            assert body["materialized_version"] == 2
            # the old vocabulary is gone from the derived rows
            status, body = server.request(
                "POST", "/v1/instances", {"concept": "motorvehicle"}
            )
            assert body["members"] == []

    def test_health_and_metrics_expose_the_backend(self, tmp_path):
        config = sqlite_config(tmp_path)
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            _, health = server.request("GET", "/v1/health")
            block = health["instdb"]
            assert block["backend"] == "sqlite"
            assert block["individuals"] == 2
            assert block["materialized_version"] == 1
            _, metrics = server.request("GET", "/v1/metrics")
            full = metrics["serve"]["instdb"]
            assert full["backend"] == "sqlite"
            assert full["told"] == 2
            assert full["derived"] > 0
            assert full["roles"] == 1

    def test_memory_backend_serves_empty_store(self):
        # explicit backend: the ServeConfig default tracks the
        # REPRO_ABOX_BACKEND env var CI sets for the sqlite pass
        config = ServeConfig(port=0, abox_backend="memory")
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            status, body = server.request(
                "POST", "/v1/instances", {"concept": "car"}
            )
            assert status == 200
            assert body["backend"] == "memory"
            assert body["members"] == []

    def test_persisted_store_survives_server_restart(self, tmp_path):
        config = sqlite_config(tmp_path)
        with ServerThread(parse_tbox(VEHICLES), config) as server:
            _, first = server.request(
                "POST", "/v1/instances", {"concept": "motorvehicle"}
            )
        # a new server over the same file re-materializes at boot
        reopened = ServeConfig(
            port=0, abox_backend="sqlite", abox_db=config.abox_db
        )
        with ServerThread(parse_tbox(VEHICLES), reopened) as server:
            _, second = server.request(
                "POST", "/v1/instances", {"concept": "motorvehicle"}
            )
        assert first["members"] == second["members"]
