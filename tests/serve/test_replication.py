"""Warm-standby replication: shipping, fencing, promotion, failover.

The acceptance tests for the replication PR:

* **the catch-up equivalence property** (Hypothesis): a follower that
  pulls the primary's sealed records through the ``repl-drop`` /
  ``repl-dup`` / ``repl-truncate`` fault gate — with compaction racing
  the stream and a follower crash-restart mid-apply — ends at exactly
  the TBox (and hierarchy) of the primary's uninterrupted run;
* **split-brain safety** end-to-end over real sockets: a follower
  refuses writes with 503 + the primary's location, promotion bumps a
  durable fencing epoch, a stale fence is refused with 409, and a
  fenced server stays read-only across a restart and cannot
  self-promote.
"""

import random
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpora.generators import random_tbox, random_tbox_edit
from repro.dl import Reasoner, parse_tbox
from repro.obs import Recorder, use_recorder
from repro.robust import faults
from repro.serve import ServeConfig, ServerThread
from repro.serve.editlog import EditLog, EditLogError, EditRecord
from repro.serve.replication import (
    EpochStore,
    FollowerChannel,
    ReplicationError,
    apply_shipped,
    deliver_batches,
    parse_url,
)


@pytest.fixture(autouse=True)
def quiet_faults():
    with faults.suspended():
        yield


def vehicles_text():
    return "car [= motorvehicle\npickup [= motorvehicle\n"


def _hierarchy_key(tbox):
    hierarchy = Reasoner(tbox).classify()
    return hierarchy.groups(), hierarchy.poset


def _wait_until(predicate, timeout_s=15.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


# --------------------------------------------------------------------------- #
# fencing epochs
# --------------------------------------------------------------------------- #


class TestEpochStore:
    def test_fresh_store_persists_epoch_one(self, tmp_path):
        store = EpochStore(tmp_path)
        assert (store.epoch, store.role, store.fenced) == (1, "primary", False)
        assert (tmp_path / "epoch.json").exists()
        reloaded = EpochStore(tmp_path)
        assert reloaded.as_dict() == store.as_dict()

    def test_promote_bumps_and_persists(self, tmp_path):
        store = EpochStore(tmp_path)
        store.set_role("follower", primary_url="http://127.0.0.1:1")
        assert store.promote() == 2
        reloaded = EpochStore(tmp_path)
        assert reloaded.epoch == 2
        assert reloaded.role == "primary"
        assert reloaded.fenced is False
        assert reloaded.primary_url is None

    def test_fence_accepts_higher_epoch_and_survives_restart(self, tmp_path):
        store = EpochStore(tmp_path)
        assert store.fence(3, "http://127.0.0.1:9") is True
        reloaded = EpochStore(tmp_path)
        assert reloaded.fenced is True
        assert reloaded.fenced_by == 3
        assert reloaded.epoch == 3
        assert reloaded.primary_url == "http://127.0.0.1:9"

    def test_stale_fence_is_refused_and_not_persisted(self, tmp_path):
        store = EpochStore(tmp_path)
        store.promote()  # epoch 2
        assert store.fence(2) is False
        assert store.fence(1) is False
        assert EpochStore(tmp_path).fenced is False

    def test_observe_tracks_highest_seen(self, tmp_path):
        store = EpochStore(tmp_path)
        store.observe(5)
        store.observe(3)  # lower: ignored
        assert store.epoch == 5
        assert EpochStore(tmp_path).epoch == 5
        # a later promotion must clear any epoch the follower saw
        assert store.promote() == 6

    def test_memory_only_store_has_the_semantics(self):
        store = EpochStore(None)
        assert store.promote() == 2
        assert store.fence(5) is True
        assert store.fenced_by == 5

    def test_corrupt_epoch_file_is_rejected(self, tmp_path):
        (tmp_path / "epoch.json").write_text("not json", encoding="utf-8")
        with pytest.raises(ReplicationError, match="corrupt epoch"):
            EpochStore(tmp_path)


class TestParseUrl:
    def test_accepted_shapes(self):
        assert parse_url("http://10.0.0.2:8080") == ("10.0.0.2", 8080)
        assert parse_url("localhost:9/") == ("localhost", 9)
        assert parse_url("https://h:1") == ("h", 1)

    def test_rejected_shapes(self):
        for bad in ("http://nohost", "onlyhost", "h:notaport"):
            with pytest.raises(ReplicationError, match="unusable primary URL"):
                parse_url(bad)


# --------------------------------------------------------------------------- #
# the fault gate and the apply path
# --------------------------------------------------------------------------- #


def _records(*versions):
    return [EditRecord(version=v, added=(f"c{v} [= d",), removed=()) for v in versions]


class TestDeliverBatches:
    def test_unarmed_is_identity(self):
        records = _records(2, 3)
        assert deliver_batches(records) == [records]
        assert deliver_batches([]) == []

    def test_drop_loses_the_batch(self):
        recorder = Recorder()
        with use_recorder(recorder):
            with faults.use_faults(faults.FaultPlan.always("repl-drop")):
                assert deliver_batches(_records(2, 3)) == []
        assert recorder.counters["repl.batches_dropped"] == 1

    def test_dup_delivers_twice(self):
        recorder = Recorder()
        records = _records(2, 3)
        with use_recorder(recorder):
            with faults.use_faults(faults.FaultPlan.always("repl-dup")):
                assert deliver_batches(records) == [records, records]
        assert recorder.counters["repl.batches_duplicated"] == 1

    def test_truncate_cuts_to_a_prefix(self):
        recorder = Recorder()
        with use_recorder(recorder):
            with faults.use_faults(faults.FaultPlan.always("repl-truncate")):
                assert deliver_batches(_records(2, 3, 4, 5)) == [_records(2, 3)]
                # a single-record batch truncates to nothing at all
                assert deliver_batches(_records(2)) == []
        assert recorder.counters["repl.batches_truncated"] == 2


class TestApplyShipped:
    def _logs(self, tmp_path):
        primary = EditLog.open(tmp_path / "p", initial=parse_tbox(vehicles_text()))
        primary.append(parse_tbox(vehicles_text() + "van [= motorvehicle"))
        primary.append(parse_tbox("dog [= animal"))
        follower = EditLog.open(tmp_path / "f", initial=parse_tbox(vehicles_text()))
        return primary, follower

    def test_applies_in_order_and_reports(self, tmp_path):
        primary, follower = self._logs(tmp_path)
        _, records = primary.read_records(after=1)
        seen = []
        applied = apply_shipped(
            follower,
            [r.to_json() for r in records],
            on_record=seen.append,
        )
        assert [r.version for r in applied] == [2, 3]
        assert seen == applied
        assert follower.version == 3
        assert _hierarchy_key(follower.tbox) == _hierarchy_key(primary.tbox)

    def test_duplicate_delivery_is_idempotent(self, tmp_path):
        primary, follower = self._logs(tmp_path)
        _, records = primary.read_records(after=1)
        rows = [r.to_json() for r in records]
        apply_shipped(follower, rows)
        recorder = Recorder()
        with use_recorder(recorder):
            assert apply_shipped(follower, rows) == []
        assert recorder.counters["editlog.stale_records_skipped"] == 2
        assert follower.version == 3

    def test_gap_is_rejected_loudly(self, tmp_path):
        primary, follower = self._logs(tmp_path)
        _, records = primary.read_records(after=1)
        with pytest.raises(EditLogError, match="resynchronize"):
            apply_shipped(follower, [records[-1].to_json()])

    def test_malformed_rows_are_dropped(self, tmp_path):
        _, follower = self._logs(tmp_path)
        rows = ["junk", {"version": "2"}, {"version": 2, "added": [1], "removed": []}]
        assert apply_shipped(follower, rows) == []
        assert follower.version == 1

    def test_armed_dup_plan_still_applies_each_record_once(self, tmp_path):
        primary, follower = self._logs(tmp_path)
        _, records = primary.read_records(after=1)
        with faults.use_faults(faults.FaultPlan.always("repl-dup")):
            applied = apply_shipped(follower, [r.to_json() for r in records])
        assert [r.version for r in applied] == [2, 3]
        assert follower.version == 3


class TestReadRecordsAndBase:
    def test_caught_up_follower_gets_nothing(self, tmp_path):
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        assert log.read_records(after=1) == (False, [])

    def test_limit_paginates_the_stream(self, tmp_path):
        log = EditLog.open(tmp_path, initial=parse_tbox(vehicles_text()))
        tbox = parse_tbox(vehicles_text())
        for i in range(4):
            tbox = parse_tbox(vehicles_text() + f"x{i} [= motorvehicle")
            log.append(tbox)
        need_base, first = log.read_records(after=1, limit=2)
        assert not need_base and [r.version for r in first] == [2, 3]
        need_base, rest = log.read_records(after=3, limit=2)
        assert not need_base and [r.version for r in rest] == [4, 5]

    def test_compaction_forces_a_base_resync_that_chains(self, tmp_path):
        primary = EditLog.open(
            tmp_path / "p", initial=parse_tbox(vehicles_text()), rebase_limit=2
        )
        primary.append(parse_tbox("a [= b"))
        primary.append(parse_tbox("a [= b\nb [= c"))  # triggers the rebase
        need_base, records = primary.read_records(after=1)
        assert (need_base, records) == (True, [])
        follower = EditLog.open(tmp_path / "f", initial_version=0)
        base = primary.base_snapshot()
        follower.install_base(base["version"], base["tbox"])
        assert follower.version == primary.version == 3
        assert _hierarchy_key(follower.tbox) == _hierarchy_key(primary.tbox)
        # the shipped base is the live tip: later records chain directly
        primary.append(parse_tbox("a [= b\nb [= c\nc [= d"))
        _, more = primary.read_records(after=follower.version)
        assert [r.version for r in more] == [4]
        apply_shipped(follower, [r.to_json() for r in more])
        assert follower.version == 4


# --------------------------------------------------------------------------- #
# the catch-up equivalence property
# --------------------------------------------------------------------------- #

_PLANS = [
    (),
    ("repl-drop",),
    ("repl-dup",),
    ("repl-truncate",),
    ("repl-drop", "repl-dup", "repl-truncate"),
]


class TestCatchUpEquivalence:
    """Follower state after ANY fault interleaving + catch-up equals the
    primary's uninterrupted state."""

    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(
        seed=st.integers(min_value=0, max_value=300),
        plan_kinds=st.sampled_from(_PLANS),
        compact=st.booleans(),
        crash=st.booleans(),
    )
    def test_catch_up_equals_uninterrupted_primary(
        self, tmp_path_factory, seed, plan_kinds, compact, crash
    ):
        with faults.suspended():
            primary_dir = tmp_path_factory.mktemp("primary")
            follower_dir = tmp_path_factory.mktemp("follower")
            tbox = random_tbox(seed, n_defined=6, n_primitive=4, n_roles=2)
            # rebase_limit=3 races compaction against the shipping stream,
            # forcing base resyncs mid-catch-up; 0 disables compaction
            primary = EditLog.open(
                primary_dir, initial=tbox, rebase_limit=3 if compact else 0
            )
            rng = random.Random(seed)
            for _ in range(8):
                tbox = random_tbox_edit(rng, tbox)
                primary.append(tbox)
            follower = EditLog.open(follower_dir, initial_version=0)

            plan = (
                faults.FaultPlan(plan_kinds, period=2, seed=seed)
                if plan_kinds
                else faults.NULL_PLAN
            )
            pulls = 0
            with faults.use_faults(plan):
                while follower.version < primary.version:
                    pulls += 1
                    assert pulls < 200, "catch-up livelocked"
                    need_base, records = primary.read_records(
                        follower.version, limit=3
                    )
                    if need_base:
                        base = primary.base_snapshot()
                        follower.install_base(base["version"], base["tbox"])
                        continue
                    apply_shipped(follower, [r.to_json() for r in records])
                    if crash and pulls == 2:
                        # kill -9 mid-catch-up: reopen from disk (recovery)
                        follower = EditLog.open(follower_dir, initial_version=0)

            assert follower.version == primary.version
            assert _hierarchy_key(follower.tbox) == _hierarchy_key(primary.tbox)
            # and what landed is durable: a restart recovers the same state
            recovered = EditLog.open(follower_dir)
            assert recovered.version == primary.version
            assert _hierarchy_key(recovered.tbox) == _hierarchy_key(primary.tbox)


# --------------------------------------------------------------------------- #
# end-to-end over real sockets
# --------------------------------------------------------------------------- #

VEHICLES = parse_tbox(
    "car [= motorvehicle & some size.small\npickup [= motorvehicle"
)


def _primary_config(tmp_path):
    return ServeConfig(port=0, edit_log=str(tmp_path / "primary-log"))


def _follower_config(tmp_path, primary_url, **overrides):
    return ServeConfig(
        port=0,
        edit_log=str(tmp_path / "follower-log"),
        follow=primary_url,
        probe_interval_ms=overrides.pop("probe_interval_ms", 40.0),
        **overrides,
    )


def _url(server):
    host, port = server.address
    return f"http://{host}:{port}"


def _edit_text(n):
    return f"car [= motorvehicle\npickup [= motorvehicle\nedit{n} [= car\n"


class TestServerReplication:
    def test_follower_catches_up_serves_reads_and_refuses_writes(self, tmp_path):
        with ServerThread(VEHICLES, _primary_config(tmp_path)) as primary:
            status, body = primary.request(
                "POST", "/v1/tbox", {"tbox": _edit_text(1)}
            )
            assert status == 200
            assert body["delta_from_log"] is True  # stored delta drove the swap
            with ServerThread(
                None, _follower_config(tmp_path, _url(primary))
            ) as follower:
                assert _wait_until(
                    lambda: follower.request("GET", "/v1/health")[1][
                        "tbox_version"
                    ] == 2
                ), "follower never caught up"
                status, health = follower.request("GET", "/v1/health")
                assert health["role"] == "follower"
                repl = health["replication"]
                assert repl["role"] == "follower"
                assert repl["last_applied_version"] == 2
                assert repl["lag_records"] == 0
                assert repl["primary_url"] == _url(primary)
                # reads work at the replicated version
                status, answer = follower.request(
                    "POST",
                    "/v1/subsumes",
                    {"general": "car", "specific": "edit1"},
                )
                assert (status, answer["answer"]) == (200, True)
                # writes are refused with the primary's location
                status, refused = follower.request(
                    "POST", "/v1/tbox", {"tbox": "dog [= animal"}
                )
                assert status == 503
                assert refused["primary"] == _url(primary)
                assert "read-only" in refused["message"]
                # /v1/metrics exposes the same replication block
                _, metrics = follower.request("GET", "/v1/metrics")
                assert metrics["serve"]["replication"]["role"] == "follower"

    def test_lag_header_on_follower_responses(self, tmp_path):
        import http.client

        with ServerThread(VEHICLES, _primary_config(tmp_path)) as primary:
            with ServerThread(
                None, _follower_config(tmp_path, _url(primary))
            ) as follower:
                assert _wait_until(
                    lambda: follower.request("GET", "/v1/health")[1][
                        "tbox_version"
                    ] == 1
                )
                host, port = follower.address
                conn = http.client.HTTPConnection(host, port, timeout=10)
                try:
                    conn.request("GET", "/v1/health")
                    response = conn.getresponse()
                    response.read()
                    assert response.getheader(
                        "X-Replication-Lag-Records"
                    ) == "0"
                finally:
                    conn.close()

    def test_promotion_takes_writes_under_a_fresh_epoch(self, tmp_path):
        with ServerThread(VEHICLES, _primary_config(tmp_path)) as primary:
            primary.request("POST", "/v1/tbox", {"tbox": _edit_text(1)})
            with ServerThread(
                None, _follower_config(tmp_path, _url(primary))
            ) as follower:
                assert _wait_until(
                    lambda: follower.request("GET", "/v1/health")[1][
                        "tbox_version"
                    ] == 2
                )
                status, body = follower.request("POST", "/v1/promote", {})
                assert (status, body["promoted"]) == (200, True)
                assert body["epoch"] == 2
                # idempotent on a primary
                status, again = follower.request("POST", "/v1/promote", {})
                assert (status, again["promoted"]) == (200, False)
                # the promoted server acks writes on top of replicated state
                status, swap = follower.request(
                    "POST", "/v1/tbox", {"tbox": _edit_text(2)}
                )
                assert status == 200
                assert swap["tbox_version"] == 3
                _, health = follower.request("GET", "/v1/health")
                assert health["role"] == "primary"
                assert health["replication"]["epoch"] == 2

    def test_auto_promotion_when_the_primary_dies(self, tmp_path):
        primary = ServerThread(VEHICLES, _primary_config(tmp_path)).start()
        primary_url = _url(primary)
        recorder = Recorder()
        with use_recorder(recorder):
            with ServerThread(
                None,
                _follower_config(
                    tmp_path, primary_url, auto_promote_after=2
                ),
            ) as follower:
                assert _wait_until(
                    lambda: follower.request("GET", "/v1/health")[1][
                        "tbox_version"
                    ] == 1
                )
                primary.stop()  # the primary drops off the network
                assert _wait_until(
                    lambda: follower.request("GET", "/v1/health")[1]["role"]
                    == "primary"
                ), "follower never auto-promoted"
                status, swap = follower.request(
                    "POST", "/v1/tbox", {"tbox": _edit_text(1)}
                )
                assert status == 200
        assert recorder.counters["repl.auto_promotions"] == 1
        assert recorder.counters["repl.promotions"] == 1

    def test_fencing_refuses_stale_epochs_and_survives_restart(self, tmp_path):
        config = _primary_config(tmp_path)
        with ServerThread(VEHICLES, config) as server:
            # a stale fence (epoch <= current) is a 409
            status, body = server.request("POST", "/v1/fence", {"epoch": 1})
            assert status == 409
            assert "stale fence" in body["message"]
            # a higher epoch lands and flips the server read-only
            status, body = server.request(
                "POST",
                "/v1/fence",
                {"epoch": 4, "primary": "http://127.0.0.1:1"},
            )
            assert (status, body["fenced"]) == (200, True)
            status, refused = server.request(
                "POST", "/v1/tbox", {"tbox": "dog [= animal"}
            )
            assert status == 503
            assert refused["primary"] == "http://127.0.0.1:1"
            # a fenced server cannot self-promote (lineage fork)
            status, body = server.request("POST", "/v1/promote", {})
            assert status == 409
            assert "cannot self-promote" in body["message"]
        # the fence is durable: a restarted server is still read-only
        with ServerThread(VEHICLES, config) as restarted:
            _, health = restarted.request("GET", "/v1/health")
            assert health["replication"]["fenced"] is True
            assert health["replication"]["epoch"] == 4
            status, _ = restarted.request(
                "POST", "/v1/tbox", {"tbox": "dog [= animal"}
            )
            assert status == 503

    def test_repl_pull_ships_records_and_bases(self, tmp_path):
        with ServerThread(VEHICLES, _primary_config(tmp_path)) as primary:
            primary.request("POST", "/v1/tbox", {"tbox": _edit_text(1)})
            status, body = primary.request(
                "POST", "/v1/repl/pull", {"after": 1}
            )
            assert status == 200
            assert body["role"] == "primary"
            assert body["version"] == 2
            assert [r["version"] for r in body["records"]] == [2]
            # a follower from before this log's history needs the base
            status, body = primary.request(
                "POST", "/v1/repl/pull", {"after": 0}
            )
            assert status == 200
            assert body["records"] == []
            assert body["base"]["version"] == 2
            # validation
            status, _ = primary.request(
                "POST", "/v1/repl/pull", {"after": "x"}
            )
            assert status == 400

    def test_pull_against_a_logless_server_is_503(self):
        with ServerThread(VEHICLES) as server:
            status, body = server.request(
                "POST", "/v1/repl/pull", {"after": 0}
            )
            assert status == 503
            assert "--edit-log" in body["message"]

    def test_follower_requires_an_edit_log(self):
        from repro.serve import ReasoningServer

        with pytest.raises(ValueError, match="--edit-log"):
            ReasoningServer(
                VEHICLES, ServeConfig(port=0, follow="http://127.0.0.1:1")
            )


class TestFollowerChannelUnit:
    def test_unreachable_primary_counts_failures(self, tmp_path):
        import asyncio

        editlog = EditLog.open(tmp_path, initial_version=0)
        channel = FollowerChannel(
            "http://127.0.0.1:1",  # nothing listens on port 1
            editlog,
            EpochStore(tmp_path),
            timeout_s=0.2,
        )
        assert channel.lag_records() is None  # no contact yet
        outcome = asyncio.run(channel.poll_once())
        assert outcome == "unreachable"
        assert channel.consecutive_failures == 1

    def test_bad_url_fails_fast(self, tmp_path):
        editlog = EditLog.open(tmp_path, initial_version=0)
        with pytest.raises(ReplicationError):
            FollowerChannel("nonsense", editlog, EpochStore(tmp_path))


# --------------------------------------------------------------------------- #
# base-install publication retry
# --------------------------------------------------------------------------- #


class TestBasePublicationRetry:
    """install_base advances the durable log, so a failed ``on_base``
    publication is never re-requested by a later pull — the channel must
    retry it locally until the snapshot chain catches up."""

    def _channel(self, tmp_path, on_base, **overrides):
        editlog = EditLog.open(tmp_path, initial_version=0)
        return FollowerChannel(
            "http://127.0.0.1:1",  # nothing listens: every pull fails
            editlog,
            EpochStore(tmp_path),
            on_base=on_base,
            probe_interval_s=overrides.pop("probe_interval_s", 0.01),
            timeout_s=0.2,
            **overrides,
        )

    def test_failed_publication_is_retried_until_it_lands(self, tmp_path):
        import asyncio

        calls = []

        async def flaky(version):
            calls.append(version)
            if len(calls) < 3:
                raise RuntimeError("snapshot publication failed")

        recorder = Recorder()

        async def scenario():
            channel = self._channel(tmp_path, flaky)
            await channel._publish_base(4)
            assert channel.base_publish_pending
            rounds = 0
            while channel.base_publish_pending:
                rounds += 1
                assert rounds < 100, "retry never landed"
                await asyncio.sleep(0.015)
                # the retry fires even though the primary is unreachable:
                # publication is purely local work
                assert await channel.poll_once() == "unreachable"
            return channel

        with use_recorder(recorder):
            channel = asyncio.run(scenario())
        assert calls == [4, 4, 4]
        assert not channel.base_publish_pending
        assert recorder.counters["repl.base_publish_failures"] == 2
        assert recorder.counters["repl.base_install_retries"] == 2

    def test_no_retry_before_the_backoff_elapses(self, tmp_path):
        import asyncio

        calls = []

        async def always_down(version):
            calls.append(version)
            raise RuntimeError("still down")

        async def scenario():
            # a long probe interval seeds a long backoff: an immediate
            # poll must NOT burn a retry attempt
            channel = self._channel(tmp_path, always_down, probe_interval_s=30.0)
            await channel._publish_base(7)
            assert len(calls) == 1
            await channel.poll_once()
            assert len(calls) == 1  # backoff still pending
            assert channel.base_publish_pending

        asyncio.run(scenario())

    def test_retry_delay_is_jittered_against_stampedes(self, tmp_path):
        """N followers that all failed at the same instant must not all
        retry at the same instant: the armed delay is the exponential
        backoff scaled by a per-channel x0.5..x1.5 jitter factor."""
        import asyncio

        async def always_down(version):
            raise RuntimeError("still down")

        async def scenario(seed):
            sub_dir = tmp_path / f"seed-{seed}"
            sub_dir.mkdir(exist_ok=True)
            editlog = EditLog.open(sub_dir, initial_version=0)
            channel = FollowerChannel(
                "http://127.0.0.1:1",
                editlog,
                EpochStore(sub_dir),
                on_base=always_down,
                probe_interval_s=1.0,
                timeout_s=0.2,
                jitter_seed=seed,
            )
            armed_at = time.monotonic()
            await channel._publish_base(3)
            # backoff seeds at probe_interval_s=1.0; the armed delay
            # must land inside the jitter window around it
            delay = channel._base_retry_at - armed_at
            assert channel._base_backoff_s == 1.0
            assert 0.5 <= delay <= 1.51
            # deterministic per-channel phase: the seed fixes the factor
            expected = 1.0 * (0.5 + random.Random(seed).random())
            assert abs(delay - expected) < 0.05
            return delay

        delays = {
            round(asyncio.run(scenario(seed)), 3) for seed in range(6)
        }
        # six deterministic seeds, six distinct phases — lockstep broken
        assert len(delays) == 6

    def test_successful_publication_arms_nothing(self, tmp_path):
        import asyncio

        calls = []

        async def healthy(version):
            calls.append(version)

        recorder = Recorder()
        with use_recorder(recorder):

            async def scenario():
                channel = self._channel(tmp_path, healthy)
                await channel._publish_base(2)
                assert not channel.base_publish_pending
                await channel.poll_once()

            asyncio.run(scenario())
        assert calls == [2]
        assert "repl.base_install_retries" not in recorder.counters


# --------------------------------------------------------------------------- #
# lag-bounded reads
# --------------------------------------------------------------------------- #


class TestLagBoundedReads:
    """``X-Max-Replication-Lag-Records`` is a client's read floor: a
    follower lagging past it refuses the read with 503 + Retry-After
    instead of serving a staler answer than the client tolerates."""

    HEADER = "X-Max-Replication-Lag-Records"

    def test_primary_ignores_the_bound(self, tmp_path):
        with ServerThread(VEHICLES, _primary_config(tmp_path)) as primary:
            status, body = primary.request(
                "POST",
                "/v1/subsumes",
                {"general": "motorvehicle", "specific": "car"},
                headers={self.HEADER: "0"},
            )
            assert (status, body["answer"]) == (200, True)

    def test_malformed_bound_is_400(self, tmp_path):
        with ServerThread(VEHICLES, _primary_config(tmp_path)) as primary:
            for bad in ("zero", "-1"):
                status, body = primary.request(
                    "POST",
                    "/v1/subsumes",
                    {"general": "motorvehicle", "specific": "car"},
                    headers={self.HEADER: bad},
                )
                assert status == 400, bad
                assert "X-Max-Replication-Lag-Records" in body["message"]

    def test_follower_within_bound_serves_the_read(self, tmp_path):
        with ServerThread(VEHICLES, _primary_config(tmp_path)) as primary:
            with ServerThread(
                None, _follower_config(tmp_path, _url(primary))
            ) as follower:
                assert _wait_until(
                    lambda: follower.server._channel is not None
                    and follower.server._channel.lag_records() == 0
                )
                status, body = follower.request(
                    "POST",
                    "/v1/subsumes",
                    {"general": "motorvehicle", "specific": "car"},
                    headers={self.HEADER: "0"},
                )
                assert (status, body["answer"]) == (200, True)

    def test_lagging_follower_refuses_with_retry_after(self, tmp_path):
        import http.client

        recorder = Recorder()
        with use_recorder(recorder):
            with ServerThread(VEHICLES, _primary_config(tmp_path)) as primary:
                with ServerThread(
                    None, _follower_config(tmp_path, _url(primary))
                ) as follower:
                    channel = follower.server._channel
                    assert _wait_until(
                        lambda: channel.lag_records() is not None
                    )
                    # pretend the last pull saw a primary far ahead; the
                    # next poll would reset this, but the request races in
                    # first thanks to the raw connection below
                    channel.last_primary_version = (
                        follower.server.editlog.version + 10
                    )
                    host, port = follower.address
                    conn = http.client.HTTPConnection(host, port, timeout=10)
                    try:
                        conn.request(
                            "POST",
                            "/v1/subsumes",
                            body='{"general": "motorvehicle", "specific": "car"}',
                            headers={
                                "Content-Type": "application/json",
                                self.HEADER: "5",
                            },
                        )
                        response = conn.getresponse()
                        body = response.read()
                        assert response.status == 503
                        assert response.getheader("Retry-After") is not None
                        assert b"exceeds client bound 5" in body
                        assert _url(primary).encode() in body
                    finally:
                        conn.close()
        assert recorder.counters["repl.lag_bounded_rejections"] >= 1

    def test_unknown_lag_refuses_the_bound(self, tmp_path):
        with ServerThread(VEHICLES, _primary_config(tmp_path)) as primary:
            with ServerThread(
                None, _follower_config(tmp_path, _url(primary))
            ) as follower:
                channel = follower.server._channel
                # before first contact the lag is unknown — not "fresh"
                channel.last_primary_version = None
                status, body = follower.request(
                    "POST",
                    "/v1/subsumes",
                    {"general": "motorvehicle", "specific": "car"},
                    headers={self.HEADER: "100"},
                )
                if status == 503:
                    assert "unknown" in body["message"]
                else:
                    # the poll loop may re-establish contact first; the
                    # read is then legitimately within bound
                    assert status == 200
