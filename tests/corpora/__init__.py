"""Test package."""
