"""Sanity tests for the corpus data and generators."""

import pytest

from repro.corpora import (
    campus_properties,
    campus_rigidity,
    campus_space,
    branching_tbox,
    chain_tbox,
    random_field,
    random_lexicalization,
    random_tbox,
    random_triples,
)
from repro.intensional import Rigidity


class TestCampus:
    def test_space_shape(self):
        space = campus_space()
        assert len(space) == 3
        assert space.domain == frozenset({"alice", "bob", "carol"})

    def test_rigidity_profile(self):
        profile = campus_rigidity()
        assert profile == {
            "person": Rigidity.RIGID,
            "student": Rigidity.ANTI_RIGID,
            "employee": Rigidity.ANTI_RIGID,
        }

    def test_properties_total(self):
        for relation in campus_properties():
            for world in relation.space:
                relation.at(world)  # no raise: totality


class TestGenerators:
    def test_random_tbox_deterministic(self):
        assert random_tbox(7).pretty() == random_tbox(7).pretty()
        assert random_tbox(7).pretty() != random_tbox(8).pretty()

    def test_random_tbox_definitorial(self):
        for seed in range(5):
            assert random_tbox(seed).is_definitorial()

    def test_chain_tbox(self):
        tbox = chain_tbox(5)
        assert len(tbox) == 5
        assert tbox.is_definitorial()

    def test_branching_tbox_size(self):
        tbox = branching_tbox(3, branching=2)
        assert len(tbox) == 2 + 4 + 8

    def test_random_field_and_lexicalization(self):
        field = random_field(1, n_points=5)
        lex = random_lexicalization(3, field, n_terms=3)
        assert lex.covered() == field.points

    def test_random_lexicalization_deterministic(self):
        field = random_field(1)
        a = random_lexicalization(9, field)
        b = random_lexicalization(9, field)
        assert a.extents == b.extents

    def test_random_triples_shape(self):
        rows = random_triples(5, count=50, n_subjects=5, n_predicates=2, n_objects=5)
        assert len(rows) == 50
        assert all(len(r) == 3 for r in rows)
        assert random_triples(5, count=50, n_subjects=5, n_predicates=2, n_objects=5) == rows
