"""Test package."""
