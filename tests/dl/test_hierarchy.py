"""Unit tests for TBox classification."""

import pytest

from repro.corpora import random_tbox
from repro.corpora.vehicles import vehicle_tbox
from repro.dl import (
    BOTTOM_NAME,
    TOP,
    TOP_NAME,
    Atomic,
    Equivalence,
    Not,
    Subsumption,
    TBox,
    classify,
    parse_tbox,
)
from repro.obs import Recorder, use_recorder

A, B, C = Atomic("A"), Atomic("B"), Atomic("C")

ALGORITHMS = ["enhanced", "brute"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestClassification:
    def test_chain(self, algorithm):
        h = classify(
            TBox([Subsumption(A, B), Subsumption(B, C)]), algorithm=algorithm
        )
        assert h.is_subsumed_by("A", "C")
        assert not h.is_subsumed_by("C", "A")
        assert h.poset.leq("A", "B")

    def test_top_and_bottom_present(self, algorithm):
        h = classify(TBox([Subsumption(A, B)]), algorithm=algorithm)
        assert h.poset.top() == TOP_NAME
        assert h.poset.bottom() == BOTTOM_NAME

    def test_parents_children(self, algorithm):
        h = classify(
            TBox([Subsumption(A, B), Subsumption(B, C)]), algorithm=algorithm
        )
        assert h.parents("A") == frozenset({"B"})
        assert h.children("C") == frozenset({"B"})
        assert h.parents("C") == frozenset({TOP_NAME})

    def test_ancestors_descendants(self, algorithm):
        h = classify(
            TBox([Subsumption(A, B), Subsumption(B, C)]), algorithm=algorithm
        )
        assert h.ancestors("A") == frozenset({"B", "C", TOP_NAME})
        assert h.descendants("C") == frozenset({"A", "B", BOTTOM_NAME})

    def test_equivalent_names_grouped(self, algorithm):
        h = classify(TBox([Equivalence(A, B)]), algorithm=algorithm)
        assert h.group_of["A"] == h.group_of["B"]
        assert h.equivalents("A") == frozenset({"A", "B"})

    def test_told_cycle_grouped(self, algorithm):
        h = classify(
            TBox([Subsumption(A, B), Subsumption(B, A)]), algorithm=algorithm
        )
        assert h.equivalents("A") == frozenset({"A", "B"})
        assert h.group_of["A"] == h.group_of["B"]

    def test_unsatisfiable_name_maps_to_bottom(self, algorithm):
        h = classify(
            TBox([Subsumption(A, B), Subsumption(A, Not(B))]),
            algorithm=algorithm,
        )
        assert h.group_of["A"] == BOTTOM_NAME

    def test_vehicle_hierarchy(self, algorithm):
        h = classify(vehicle_tbox(), algorithm=algorithm)
        assert h.is_subsumed_by("car", "motorvehicle")
        assert h.is_subsumed_by("car", "roadvehicle")
        assert h.is_subsumed_by("pickup", "motorvehicle")
        assert not h.is_subsumed_by("car", "pickup")
        # car sits under BOTH superclasses: a DAG, not a tree (paper §2)
        assert not h.poset.is_tree()
        assert h.parents("car") == frozenset({"motorvehicle", "roadvehicle"})

    def test_inferred_subsumption_not_told(self, algorithm):
        tbox = parse_tbox(
            """
            A = B & C
            D [= B & C
            """
        )
        h = classify(tbox, algorithm=algorithm)
        # D ⊑ B ⊓ C ≡ A, so D is classified under A without being told
        assert h.is_subsumed_by("D", "A")

    def test_pretty_renders_all_names(self, algorithm):
        h = classify(vehicle_tbox(), algorithm=algorithm)
        text = h.pretty()
        for name in ("car", "pickup", "motorvehicle", "roadvehicle"):
            assert name in text
        assert text.splitlines()[0] == TOP_NAME


class TestEquivalentsTopBottom:
    """Regression: equivalents(⊤) / equivalents(⊥) used to raise KeyError."""

    def test_top_equivalents_plain(self):
        h = classify(TBox([Subsumption(A, B)]))
        assert h.equivalents(TOP_NAME) == frozenset({TOP_NAME})
        assert h.top_equivalents() == frozenset()

    def test_bottom_equivalents_plain(self):
        h = classify(TBox([Subsumption(A, B)]))
        assert h.equivalents(BOTTOM_NAME) == frozenset({BOTTOM_NAME})

    def test_bottom_collects_unsatisfiable_names(self):
        h = classify(TBox([Subsumption(A, B), Subsumption(A, Not(B))]))
        assert h.equivalents(BOTTOM_NAME) == frozenset({BOTTOM_NAME, "A"})
        assert h.equivalents("A") == frozenset({BOTTOM_NAME, "A"})

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_named_concept_equivalent_to_top(self, algorithm):
        # ⊤ ⊑ A forces A ≡ ⊤; with A ⊑ B, B is dragged up to ⊤ as well
        tbox = TBox([Subsumption(TOP, A), Subsumption(A, B)])
        h = classify(tbox, algorithm=algorithm)
        assert h.top_equivalents() == frozenset({"A", "B"})
        assert h.equivalents(TOP_NAME) == frozenset({TOP_NAME, "A", "B"})
        assert h.equivalents("A") == frozenset({TOP_NAME, "A", "B"})
        assert h.group_of["A"] == TOP_NAME
        assert "≡" in h.pretty().splitlines()[0]

    def test_unknown_name_raises(self):
        h = classify(TBox([Subsumption(A, B)]))
        with pytest.raises(KeyError):
            h.equivalents("nonexistent")

    def test_groups_partition_satisfiable_names(self):
        tbox = vehicle_tbox()
        h = classify(tbox)
        flat = {name for group in h.groups() for name in group}
        # groups() covers exactly the satisfiable, non-⊤ names; vehicles
        # has no unsatisfiable or ⊤-equivalent names, so that's all of them
        assert flat == set(tbox.atomic_names())
        assert sum(len(g) for g in h.groups()) == len(flat)


class TestToldSubsumers:
    def test_told_seeding_matches_full_reasoning(self):
        for seed in (3, 17, 42):
            tbox = random_tbox(seed, n_defined=5, n_primitive=3, n_roles=2)
            with_told = classify(tbox, use_told_subsumers=True)
            without = classify(tbox, use_told_subsumers=False)
            assert with_told.poset == without.poset

    def test_told_hits_counted(self):
        # pin the enhanced traversal: the auto default resolves to
        # saturation on this EL corpus and never consults told subsumers
        h = classify(vehicle_tbox(), use_told_subsumers=True, algorithm="enhanced")
        assert h.told_hits > 0
        h0 = classify(vehicle_tbox(), use_told_subsumers=False, algorithm="enhanced")
        assert h0.told_hits == 0

    def test_transitive_told_subsumers(self):
        tbox = parse_tbox("A [= B\nB [= C")
        h = classify(tbox)
        # A ⊑ C is told only transitively; still seeded, still correct
        assert h.is_subsumed_by("A", "C")


def _classify_counting(tbox, algorithm):
    """Classify under a fresh recorder; return (hierarchy, tableau count)."""
    recorder = Recorder()
    with use_recorder(recorder):
        h = classify(tbox, algorithm=algorithm)
    return h, recorder.counters.get("hierarchy.tableau_subsumptions", 0)


class TestEnhancedTraversal:
    def test_invalid_algorithm_rejected(self):
        with pytest.raises(ValueError):
            classify(TBox([Subsumption(A, B)]), algorithm="magic")

    def test_pruned_tests_counted(self):
        tbox = random_tbox(0, n_defined=22, n_primitive=8, n_roles=3)
        recorder = Recorder()
        with use_recorder(recorder):
            h = classify(tbox, algorithm="enhanced")
        assert h.pruned_tests > 0
        assert recorder.counters["hierarchy.pruned_tests"] == h.pruned_tests
        assert recorder.counters["hierarchy.classifications"] == 1

    def test_enhanced_cuts_tableau_tests_by_40_percent(self):
        # ISSUE 2 acceptance: on the B1 random-TBox workload (n ≥ 30
        # names) enhanced traversal must spend ≤ 60% of brute force's
        # tableau subsumption tests while producing the identical
        # hierarchy.
        tbox = random_tbox(0, n_defined=22, n_primitive=8, n_roles=3)
        assert len(tbox.atomic_names()) >= 30
        he, enhanced_tests = _classify_counting(tbox, "enhanced")
        hb, brute_tests = _classify_counting(tbox, "brute")
        assert he.groups() == hb.groups()
        assert he.poset == hb.poset
        assert he.group_of == hb.group_of
        assert enhanced_tests == he.tableau_tests
        assert brute_tests == hb.tableau_tests
        assert enhanced_tests <= 0.6 * brute_tests

    def test_enhanced_matches_brute_on_vehicles(self):
        tbox = vehicle_tbox()
        he, enhanced_tests = _classify_counting(tbox, "enhanced")
        hb, brute_tests = _classify_counting(tbox, "brute")
        assert he.groups() == hb.groups()
        assert he.poset == hb.poset
        assert enhanced_tests < brute_tests
