"""Unit tests for TBox classification."""

from repro.corpora.vehicles import vehicle_tbox
from repro.dl import (
    BOTTOM_NAME,
    TOP_NAME,
    Atomic,
    Equivalence,
    Not,
    Subsumption,
    TBox,
    classify,
    parse_tbox,
)

A, B, C = Atomic("A"), Atomic("B"), Atomic("C")


class TestClassification:
    def test_chain(self):
        h = classify(TBox([Subsumption(A, B), Subsumption(B, C)]))
        assert h.is_subsumed_by("A", "C")
        assert not h.is_subsumed_by("C", "A")
        assert h.poset.leq("A", "B")

    def test_top_and_bottom_present(self):
        h = classify(TBox([Subsumption(A, B)]))
        assert h.poset.top() == TOP_NAME
        assert h.poset.bottom() == BOTTOM_NAME

    def test_parents_children(self):
        h = classify(TBox([Subsumption(A, B), Subsumption(B, C)]))
        assert h.parents("A") == frozenset({"B"})
        assert h.children("C") == frozenset({"B"})
        assert h.parents("C") == frozenset({TOP_NAME})

    def test_ancestors_descendants(self):
        h = classify(TBox([Subsumption(A, B), Subsumption(B, C)]))
        assert h.ancestors("A") == frozenset({"B", "C", TOP_NAME})
        assert h.descendants("C") == frozenset({"A", "B", BOTTOM_NAME})

    def test_equivalent_names_grouped(self):
        h = classify(TBox([Equivalence(A, B)]))
        assert h.group_of["A"] == h.group_of["B"]
        assert h.equivalents("A") == frozenset({"A", "B"})

    def test_unsatisfiable_name_maps_to_bottom(self):
        h = classify(TBox([Subsumption(A, B), Subsumption(A, Not(B))]))
        assert h.group_of["A"] == BOTTOM_NAME

    def test_vehicle_hierarchy(self):
        h = classify(vehicle_tbox())
        assert h.is_subsumed_by("car", "motorvehicle")
        assert h.is_subsumed_by("car", "roadvehicle")
        assert h.is_subsumed_by("pickup", "motorvehicle")
        assert not h.is_subsumed_by("car", "pickup")
        # car sits under BOTH superclasses: a DAG, not a tree (paper §2)
        assert not h.poset.is_tree()
        assert h.parents("car") == frozenset({"motorvehicle", "roadvehicle"})

    def test_inferred_subsumption_not_told(self):
        tbox = parse_tbox(
            """
            A = B & C
            D [= B & C
            """
        )
        h = classify(tbox)
        # D ⊑ B ⊓ C ≡ A, so D is classified under A without being told
        assert h.is_subsumed_by("D", "A")

    def test_pretty_renders_all_names(self):
        h = classify(vehicle_tbox())
        text = h.pretty()
        for name in ("car", "pickup", "motorvehicle", "roadvehicle"):
            assert name in text
        assert text.splitlines()[0] == TOP_NAME


class TestToldSubsumers:
    def test_told_seeding_matches_full_reasoning(self):
        from repro.corpora import random_tbox

        for seed in (3, 17, 42):
            tbox = random_tbox(seed, n_defined=5, n_primitive=3, n_roles=2)
            with_told = classify(tbox, use_told_subsumers=True)
            without = classify(tbox, use_told_subsumers=False)
            assert with_told.poset == without.poset

    def test_told_hits_counted(self):
        h = classify(vehicle_tbox(), use_told_subsumers=True)
        assert h.told_hits > 0
        h0 = classify(vehicle_tbox(), use_told_subsumers=False)
        assert h0.told_hits == 0

    def test_transitive_told_subsumers(self):
        tbox = parse_tbox("A [= B\nB [= C")
        h = classify(tbox)
        # A ⊑ C is told only transitively; still seeded, still correct
        assert h.is_subsumed_by("A", "C")
