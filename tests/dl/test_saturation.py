"""Consequence-based Horn/EL saturation: normalizer, residue, equality.

Three layers, matching the fast path's obligations:

* **normalizer units** — each of the four normal-form shapes (``A ⊑ B``,
  ``A ⊓ B ⊑ C``, ``A ⊑ ∃r.B``, ``∃r.A ⊑ B``) plus the EL-compatible
  sugar (⊔ on the left, ≥0/≥1/≥n on the right, ⊥/⊤ ends) derives exactly
  the consequences the completion rules promise;
* **residue detection** — every non-Horn constructor placement lands the
  axiom in ``residue`` and flips ``complete`` off, while the rules that
  *were* emitted stay sound (True answers remain trustworthy);
* **equal hierarchies** — classification by saturation must equal the
  enhanced-traversal and brute-force answers on random TBoxes, including
  budget-governed runs that leave pairs in ``hierarchy.incomplete``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpora import random_tbox
from repro.dl import (
    BOTTOM,
    TOP,
    And,
    Atomic,
    Equivalence,
    Not,
    Or,
    Reasoner,
    Saturation,
    Subsumption,
    TBox,
    at_least,
    at_most,
    classify,
    only,
    some,
)
from repro.obs import Recorder, use_recorder
from repro.robust import Budget

A, B, C, D = Atomic("A"), Atomic("B"), Atomic("C"), Atomic("D")


def _sat(*axioms) -> Saturation:
    return Saturation(TBox(list(axioms)))


class TestNormalizerShapes:
    """One test per normal-form axiom shape."""

    def test_atomic_subsumption(self):
        sat = _sat(Subsumption(A, B))
        assert sat.complete
        assert sat.subsumes_names("A", "B") is True
        assert sat.subsumes_names("B", "A") is False

    def test_transitive_chain(self):
        sat = _sat(Subsumption(A, B), Subsumption(B, C))
        assert sat.subsumes_names("A", "C") is True

    def test_conjunction_on_the_left(self):
        # A ⊑ B ⊓ C and B ⊓ C ⊑ D: CR1 needs both premise bits
        sat = _sat(Subsumption(A, And.of([B, C])), Subsumption(And.of([B, C]), D))
        assert sat.complete
        assert sat.subsumes_names("A", "D") is True
        # B alone does not fire the conjunction rule
        assert sat.subsumes_names("B", "D") is False

    def test_conjunction_on_the_right_distributes(self):
        sat = _sat(Subsumption(A, And.of([B, C])))
        assert sat.subsumes_names("A", "B") is True
        assert sat.subsumes_names("A", "C") is True

    def test_exists_on_the_right_and_left(self):
        # A ⊑ ∃r.B, ∃r.B ⊑ C: CR2 introduces the edge, CR3 consumes it
        sat = _sat(Subsumption(A, some("r", B)), Subsumption(some("r", B), C))
        assert sat.complete
        assert sat.subsumes_names("A", "C") is True

    def test_exists_respects_the_role(self):
        sat = _sat(Subsumption(A, some("r", B)), Subsumption(some("s", B), C))
        assert sat.subsumes_names("A", "C") is False

    def test_exists_filler_subsumer_triggers_cr3(self):
        # A ⊑ ∃r.B, B ⊑ C, ∃r.C ⊑ D: the filler's *derived* subsumer counts
        sat = _sat(
            Subsumption(A, some("r", B)),
            Subsumption(B, C),
            Subsumption(some("r", C), D),
        )
        assert sat.subsumes_names("A", "D") is True

    def test_nested_exists_uses_fresh_atoms(self):
        sat = _sat(
            Subsumption(A, some("r", some("s", B))),
            Subsumption(some("s", B), C),
            Subsumption(some("r", C), D),
        )
        assert sat.complete
        assert sat.subsumes_names("A", "D") is True

    def test_disjunction_on_the_left_splits(self):
        # (A ⊔ B) ⊑ C is Horn: both disjuncts get the rule
        sat = _sat(Subsumption(Or.of([A, B]), C))
        assert sat.complete
        assert sat.subsumes_names("A", "C") is True
        assert sat.subsumes_names("B", "C") is True

    def test_top_and_bottom_ends(self):
        sat = _sat(Subsumption(TOP, A), Subsumption(BOTTOM, B))
        assert sat.complete
        # ⊤ ⊑ A makes A universal; ⊥ ⊑ B is trivially valid
        assert sat.subsumes_names("C", "A") is True
        assert sat.subsumes_names("A", "B") is False

    def test_bottom_on_the_right_poisons(self):
        sat = _sat(Subsumption(A, B), Subsumption(B, BOTTOM))
        assert sat.satisfiable("A") is False
        # an unsatisfiable LHS is below everything
        assert sat.subsumes_names("A", "C") is True

    def test_cr4_propagates_bottom_over_edges(self):
        # A ⊑ ∃r.B and B ⊑ ⊥: no model can build the successor
        sat = _sat(Subsumption(A, some("r", B)), Subsumption(B, BOTTOM))
        assert sat.satisfiable("A") is False

    def test_equivalence_contributes_both_directions(self):
        sat = _sat(Equivalence(A, And.of([B, C])))
        assert sat.subsumes_names("A", "B") is True
        # the back direction: anything that is B ⊓ C is A
        sat2 = _sat(Equivalence(A, And.of([B, C])), Subsumption(D, And.of([B, C])))
        assert sat2.subsumes_names("D", "A") is True

    def test_atleast_zero_and_one(self):
        # ≥0 is ⊤ (vacuous), ≥1 is ∃
        sat = _sat(Subsumption(A, at_least(0, "r", B)))
        assert sat.complete
        sat = _sat(
            Subsumption(A, at_least(1, "r", B)), Subsumption(some("r", B), C)
        )
        assert sat.complete
        assert sat.subsumes_names("A", "C") is True

    def test_atleast_n_weakened_to_exists_stays_complete(self):
        # ≥3 r.B on the right weakens to ∃r.B — with no ∀/≤ around, a
        # canonical model duplicates successors, so this is still complete
        sat = _sat(
            Subsumption(A, at_least(3, "r", B)), Subsumption(some("r", B), C)
        )
        assert sat.complete
        assert sat.subsumes_names("A", "C") is True

    def test_unknown_name_only_under_top(self):
        sat = _sat(Subsumption(A, B))
        assert sat.subsumes_names("Ghost", "⊤") is True
        assert sat.subsumes_names("Ghost", "A") is False
        assert sat.satisfiable("Ghost") is True


class TestResidueDetection:
    """Every non-Horn placement must land in the residue."""

    def test_negation_on_the_right(self):
        sat = _sat(Subsumption(A, Not(B)))
        assert not sat.complete
        assert len(sat.residue) == 1

    def test_negation_on_the_left(self):
        sat = _sat(Subsumption(Not(A), B))
        assert not sat.complete

    def test_disjunction_on_the_right(self):
        sat = _sat(Subsumption(A, Or.of([B, C])))
        assert not sat.complete

    def test_forall_on_the_right(self):
        sat = _sat(Subsumption(A, only("r", B)))
        assert not sat.complete

    def test_atmost_on_the_right(self):
        sat = _sat(Subsumption(A, at_most(1, "r", B)))
        assert not sat.complete

    def test_atleast_n_on_the_left(self):
        sat = _sat(Subsumption(at_least(2, "r", A), B))
        assert not sat.complete

    def test_exists_of_non_el_filler_on_the_right(self):
        sat = _sat(Subsumption(A, some("r", Not(B))))
        assert not sat.complete

    def test_incomplete_negative_answers_are_none(self):
        sat = _sat(Subsumption(A, Not(B)), Subsumption(A, C))
        assert sat.subsumes_names("A", "C") is True  # emitted rule: sound
        assert sat.subsumes_names("C", "A") is None  # can't trust a 'no'
        assert sat.satisfiable("A") is None

    def test_partial_emission_keeps_derived_half(self):
        # A ⊑ B ⊓ ∀r.C: the ∀ lands the axiom in the residue, but the
        # A ⊑ B half is still emitted and still sound
        sat = _sat(Subsumption(A, And.of([B, only("r", C)])))
        assert not sat.complete
        assert sat.subsumes_names("A", "B") is True

    def test_corpus_tboxes_are_complete(self):
        for seed in (0, 3, 11):
            tbox = random_tbox(seed, n_defined=8, n_primitive=4, n_roles=2)
            assert Saturation(tbox).complete


class TestCountersAndReuse:
    def test_rules_fired_counted(self):
        recorder = Recorder()
        with use_recorder(recorder):
            sat = _sat(Subsumption(A, B), Subsumption(B, C))
            assert sat.subsumes_names("A", "C") is True
        assert recorder.counters["saturation.rules_fired"] > 0

    def test_reasoner_caches_one_saturation_per_revision(self):
        tbox = TBox([Subsumption(A, B)])
        reasoner = Reasoner(tbox)
        first = reasoner.saturation()
        assert reasoner.saturation() is first
        tbox.add(Subsumption(B, C))
        assert reasoner.saturation() is not first

    def test_saturation_classification_runs_zero_tableau_tests(self):
        tbox = random_tbox(0, n_defined=10, n_primitive=4, n_roles=2)
        recorder = Recorder()
        with use_recorder(recorder):
            hierarchy = classify(tbox)  # auto resolves to saturation
        assert hierarchy.algorithm == "saturation"
        assert recorder.counters.get("tableau.solve_calls", 0) == 0
        assert recorder.counters.get("saturation.tableau_fallbacks", 0) == 0

    def test_hybrid_saturation_falls_back_per_query(self):
        # a non-Horn axiom forces the hybrid path: the oracle answers the
        # Horn part, the tableau settles the rest — and the counters show
        # both mechanisms at work
        # A ⊑ C follows through the ∃-chain GCI (so it is *not* a told
        # subsumption the traversal could prune); D's axiom is non-Horn
        tbox = TBox(
            [
                Subsumption(A, some("r", B)),
                Subsumption(some("r", B), C),
                Subsumption(D, Or.of([B, Not(C)])),
            ]
        )
        recorder = Recorder()
        with use_recorder(recorder):
            hierarchy = classify(tbox, algorithm="saturation")
        assert recorder.counters.get("hierarchy.oracle_hits", 0) > 0
        assert recorder.counters.get("saturation.tableau_fallbacks", 0) > 0
        brute = classify(tbox, algorithm="brute")
        assert hierarchy.groups() == brute.groups()
        assert hierarchy.poset == brute.poset


# -- equal hierarchies ---------------------------------------------------- #

_NAMES = ["A", "B", "C", "D", "E"]
_ROLES = ["r", "s"]
_atoms = st.sampled_from([Atomic(n) for n in _NAMES])


@st.composite
def _concepts(draw, depth=2):
    if depth == 0:
        return draw(_atoms)
    kind = draw(st.integers(min_value=0, max_value=4))
    if kind == 0:
        return draw(_atoms)
    if kind == 1:
        return Not(draw(_concepts(depth=depth - 1)))
    if kind == 2:
        return And.of(
            [draw(_concepts(depth=depth - 1)), draw(_concepts(depth=depth - 1))]
        )
    if kind == 3:
        return Or.of(
            [draw(_concepts(depth=depth - 1)), draw(_concepts(depth=depth - 1))]
        )
    return some(draw(st.sampled_from(_ROLES)), draw(_concepts(depth=depth - 1)))


@st.composite
def _axioms(draw):
    left = draw(_atoms)
    right = draw(_concepts())
    if draw(st.booleans()):
        return Subsumption(left, right)
    return Equivalence(left, right)


_tboxes = st.lists(_axioms(), min_size=1, max_size=5).map(TBox)


def _assert_saturation_matches(tbox: TBox) -> None:
    fast = classify(tbox, algorithm="saturation")
    brute = classify(tbox, algorithm="brute")
    enhanced = classify(tbox, algorithm="enhanced")
    for other in (brute, enhanced):
        assert fast.groups() == other.groups()
        assert fast.group_of == other.group_of
        assert fast.poset == other.poset
        assert fast.top_equivalents() == other.top_equivalents()


@settings(max_examples=30, deadline=None, derandomize=True)
@given(_tboxes)
def test_saturation_equals_brute_and_enhanced_on_random_axioms(tbox):
    """Hybrid saturation (arbitrary ALCQ⁻ axioms, residue or not) agrees."""
    _assert_saturation_matches(tbox)


@settings(max_examples=12, deadline=None, derandomize=True)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_defined=st.integers(min_value=2, max_value=10),
)
def test_saturation_equals_brute_on_corpus_tboxes(seed, n_defined):
    """Pure-EL corpus TBoxes take the zero-tableau path and still agree."""
    tbox = random_tbox(seed, n_defined=n_defined, n_primitive=4, n_roles=2)
    assert Saturation(tbox).complete
    _assert_saturation_matches(tbox)


@settings(max_examples=10, deadline=None, derandomize=True)
@given(_tboxes)
def test_budget_governed_saturation_lands_pairs_in_incomplete(tbox):
    """A starved hybrid run degrades exactly like a starved enhanced run.

    Unresolved questions go to ``hierarchy.incomplete`` (never a wrong
    edge), and an unbudgeted run over the same TBox resolves every pair
    the starved run left open.
    """
    starved = classify(tbox, algorithm="saturation", budget=Budget(max_nodes=1))
    full = classify(tbox, algorithm="brute")
    if not starved.incomplete:
        # everything was answered by the oracle alone — then the starved
        # hierarchy must simply BE the full one
        assert starved.groups() == full.groups()
        assert starved.poset == full.poset
        return
    names = set(full.group_of) | {"⊤", "⊥"}
    for specific, general in starved.incomplete:
        assert specific in names and general in names
