"""Unit tests for DL concept syntax and negation normal form."""

import pytest

from repro.dl import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    Atomic,
    DLSyntaxError,
    Exists,
    Forall,
    Not,
    Or,
    Role,
    at_least,
    at_most,
    is_nnf,
    negate,
    only,
    some,
    to_nnf,
)

A, B, C = Atomic("A"), Atomic("B"), Atomic("C")


class TestConstruction:
    def test_and_flattens_and_dedupes(self):
        c = And.of([A, And.of([B, C]), A])
        assert isinstance(c, And)
        assert c.operands == (A, B, C)

    def test_and_absorbs_top(self):
        assert And.of([A, TOP]) == A
        assert And.of([TOP, TOP]) is TOP

    def test_or_absorbs_bottom(self):
        assert Or.of([A, BOTTOM]) == A
        assert Or.of([BOTTOM]) is BOTTOM

    def test_singleton_collapse(self):
        assert And.of([A]) == A
        assert Or.of([B]) == B

    def test_direct_binary_construction_requires_two(self):
        with pytest.raises(DLSyntaxError):
            And((A,))
        with pytest.raises(DLSyntaxError):
            Or((A,))

    def test_operator_sugar(self):
        assert (A & B) == And.of([A, B])
        assert (A | B) == Or.of([A, B])
        assert ~A == Not(A)

    def test_empty_names_rejected(self):
        with pytest.raises(DLSyntaxError):
            Atomic("")
        with pytest.raises(DLSyntaxError):
            Role("")

    def test_negative_cardinality_rejected(self):
        with pytest.raises(DLSyntaxError):
            at_least(-1, "r")
        with pytest.raises(DLSyntaxError):
            at_most(-2, "r")

    def test_names_and_roles_collected(self):
        c = And.of([A, some("r", B), at_least(4, "s", C)])
        assert c.atomic_names() == frozenset({"A", "B", "C"})
        assert c.role_names() == frozenset({"r", "s"})

    def test_size(self):
        assert A.size() == 1
        assert (A & B).size() == 3
        assert some("r", A).size() == 2

    def test_str_renderings(self):
        assert str(A & B) == "A ⊓ B"
        assert str(some("size", Atomic("small"))) == "∃size.small"
        assert str(at_least(4, "has", Atomic("wheel"))) == "≥4 has.wheel"
        assert str(~A) == "¬A"
        assert str(only("r", A | B)) == "∀r.(A ⊔ B)"


class TestNNF:
    def test_atomic_unchanged(self):
        assert to_nnf(A) == A
        assert to_nnf(Not(A)) == Not(A)

    def test_double_negation(self):
        assert to_nnf(Not(Not(A))) == A

    def test_de_morgan(self):
        assert to_nnf(Not(A & B)) == Or.of([Not(A), Not(B)])
        assert to_nnf(Not(A | B)) == And.of([Not(A), Not(B)])

    def test_quantifier_duality(self):
        assert to_nnf(Not(some("r", A))) == only("r", Not(A))
        assert to_nnf(Not(only("r", A))) == some("r", Not(A))

    def test_top_bottom_duality(self):
        assert to_nnf(Not(TOP)) is BOTTOM
        assert to_nnf(Not(BOTTOM)) is TOP

    def test_number_restriction_duality(self):
        assert to_nnf(Not(at_least(3, "r"))) == at_most(2, "r")
        assert to_nnf(Not(at_most(3, "r"))) == at_least(4, "r")

    def test_atleast_zero(self):
        assert to_nnf(at_least(0, "r")) is TOP
        assert to_nnf(Not(at_least(0, "r"))) is BOTTOM

    def test_nested_push(self):
        c = Not(And.of([A, some("r", Or.of([B, C]))]))
        nnf = to_nnf(c)
        assert is_nnf(nnf)
        assert nnf == Or.of([Not(A), only("r", And.of([Not(B), Not(C)]))])

    def test_negate_shorthand(self):
        assert negate(A) == Not(A)
        assert negate(Not(A)) == A

    def test_is_nnf(self):
        assert is_nnf(A & Not(B))
        assert not is_nnf(Not(A & B))
        assert is_nnf(some("r", Not(A)))
        assert not is_nnf(only("r", Not(some("s", A))))


class TestNNFMemoization:
    """The process-global interning cache behind to_nnf."""

    def _fresh(self):
        from repro.dl.nnf import nnf_cache_clear

        nnf_cache_clear()

    def test_second_conversion_hits_cache(self):
        from repro.dl.nnf import nnf_cache_size
        from repro.obs import Recorder, use_recorder

        self._fresh()
        c = Not(And.of([A, some("r", Or.of([B, C]))]))
        first = to_nnf(c)
        size_after_first = nnf_cache_size()
        assert size_after_first > 0
        recorder = Recorder()
        with use_recorder(recorder):
            second = to_nnf(c)
        assert second == first
        assert recorder.counters["nnf.cache_hits"] >= 1
        assert nnf_cache_size() == size_after_first

    def test_repeated_classification_converts_each_definition_once(self):
        """Reclassifying the same TBox does zero fresh NNF conversions."""
        from repro.corpora.generators import random_tbox
        from repro.dl import Reasoner
        from repro.dl.nnf import nnf_cache_size
        from repro.obs import Recorder, use_recorder

        self._fresh()
        tbox = random_tbox(3, n_defined=8, n_primitive=4, n_roles=2)
        Reasoner(tbox).classify()
        size_after_first = nnf_cache_size()
        assert size_after_first > 0
        recorder = Recorder()
        with use_recorder(recorder):
            Reasoner(tbox).classify()  # fresh reasoner, same definitions
        # every conversion the second run needed was already interned
        assert nnf_cache_size() == size_after_first
        assert recorder.counters["nnf.cache_hits"] > 0

    def test_cache_clear_resets(self):
        from repro.dl.nnf import nnf_cache_clear, nnf_cache_size

        to_nnf(Not(A & B))
        assert nnf_cache_size() > 0
        nnf_cache_clear()
        assert nnf_cache_size() == 0

    def test_full_cache_evicts_fifo_not_wholesale(self, monkeypatch):
        from repro.dl import nnf as nnf_mod
        from repro.obs import Recorder, use_recorder

        self._fresh()
        monkeypatch.setattr(nnf_mod, "_CACHE_CAP", 4)
        atoms = [Atomic(f"Evict{i}") for i in range(6)]
        recorder = Recorder()
        with use_recorder(recorder):
            for atom in atoms:
                to_nnf(atom)
        # two overflows evicted the two *oldest* entries, nothing more
        assert nnf_mod.nnf_cache_size() == 4
        assert recorder.counters["nnf.cache_evictions"] == 2
        recorder = Recorder()
        with use_recorder(recorder):
            for atom in atoms[2:]:
                to_nnf(atom)  # the four youngest are still warm
        assert recorder.counters["nnf.cache_hits"] == 4
        assert "nnf.cache_evictions" not in recorder.counters
        recorder = Recorder()
        with use_recorder(recorder):
            to_nnf(atoms[0])  # the oldest was the one retired
        assert "nnf.cache_hits" not in recorder.counters
        assert recorder.counters["nnf.cache_evictions"] == 1
        self._fresh()
