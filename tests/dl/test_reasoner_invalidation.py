"""Regression tests: Reasoner caches vs in-place TBox mutation.

Before the revision guard, a Reasoner built over a TBox that was later
mutated kept serving answers from ``_sat_cache``/``_subs_cache`` computed
against the old axioms — silently stale.  These tests pin the fix: the
revision guard picks up :meth:`TBox.add`/:meth:`TBox.remove` (and any
mutation that changes the axiom count), and :meth:`Reasoner.invalidate`
covers everything else.
"""

from repro.dl import Atomic, Reasoner, Subsumption, TBox
from repro.obs import Recorder, use_recorder


A, B, C = Atomic("A"), Atomic("B"), Atomic("C")


class TestRevisionGuard:
    def test_added_axiom_changes_subsumption_answer(self):
        tbox = TBox([Subsumption(B, C)])
        reasoner = Reasoner(tbox)
        # caches the negative answer
        assert not reasoner.subsumes(B, A)
        tbox.add(Subsumption(A, B))
        # the stale-answer bug: without the guard this still said False
        assert reasoner.subsumes(B, A)
        assert reasoner.subsumes(C, A)

    def test_added_axiom_changes_satisfiability_answer(self):
        from repro.dl.syntax import Not

        tbox = TBox([Subsumption(A, B)])
        reasoner = Reasoner(tbox)
        assert reasoner.is_satisfiable(A)
        tbox.add(Subsumption(A, Not(B)))
        assert not reasoner.is_satisfiable(A)

    def test_removed_axiom_changes_answer(self):
        tbox = TBox([Subsumption(A, B)])
        reasoner = Reasoner(tbox)
        assert reasoner.subsumes(B, A)
        tbox.remove(tbox.axioms[0])
        assert not reasoner.subsumes(B, A)

    def test_direct_append_is_caught_by_length_component(self):
        # revision also tracks len(axioms), so even unmanaged mutation
        # through the public list is detected
        tbox = TBox()
        reasoner = Reasoner(tbox)
        assert not reasoner.subsumes(B, A)
        tbox.axioms.append(Subsumption(A, B))
        assert reasoner.subsumes(B, A)

    def test_invalidation_is_counted(self):
        tbox = TBox()
        reasoner = Reasoner(tbox)
        recorder = Recorder()
        with use_recorder(recorder):
            assert not reasoner.subsumes(B, A)
            tbox.add(Subsumption(A, B))
            assert reasoner.subsumes(B, A)
        assert recorder.counters.get("reasoner.invalidations") == 1


class TestExplicitInvalidate:
    def test_invalidate_clears_caches(self):
        tbox = TBox([Subsumption(A, B)])
        reasoner = Reasoner(tbox)
        assert reasoner.subsumes(B, A)
        assert reasoner._subs_cache
        reasoner.invalidate()
        assert not reasoner._subs_cache
        assert not reasoner._sat_cache
        # answers still correct after a rebuild
        assert reasoner.subsumes(B, A)

    def test_invalidate_rebuilds_tableau_absorption(self):
        # the tableau's absorption split is computed at construction; a
        # mutation must rebuild it, not just clear the caches
        tbox = TBox()
        reasoner = Reasoner(tbox)
        assert not reasoner.subsumes(B, A)
        tbox.add(Subsumption(A, B))
        reasoner.invalidate()
        tableau = reasoner._tableau
        aid = tableau.concepts.get(A)
        assert aid is not None and aid in tableau._lazy_mask


class TestTBoxRevision:
    def test_revision_moves_on_add_and_remove(self):
        tbox = TBox()
        r0 = tbox.revision
        axiom = Subsumption(A, B)
        tbox.add(axiom)
        r1 = tbox.revision
        assert r1 != r0
        tbox.remove(axiom)
        assert tbox.revision not in (r0, r1)

    def test_add_rejects_non_axioms(self):
        import pytest

        from repro.dl.syntax import DLSyntaxError

        tbox = TBox()
        with pytest.raises(DLSyntaxError):
            tbox.add("not an axiom")


class TestClassifyCache:
    def test_classify_returns_cached_object(self):
        reasoner = Reasoner(TBox([Subsumption(A, B)]))
        recorder = Recorder()
        with use_recorder(recorder):
            first = reasoner.classify()
            second = reasoner.classify()
        assert first is second
        assert recorder.counters["reasoner.classify_cache_misses"] == 1
        assert recorder.counters["reasoner.classify_cache_hits"] == 1

    def test_cache_keyed_by_configuration(self):
        reasoner = Reasoner(TBox([Subsumption(A, B)]))
        enhanced = reasoner.classify(algorithm="enhanced")
        brute = reasoner.classify(algorithm="brute")
        assert enhanced is not brute
        assert enhanced.poset == brute.poset
        assert reasoner.classify(algorithm="brute") is brute

    def test_tbox_mutation_invalidates_hierarchy(self):
        tbox = TBox([Subsumption(A, B)])
        reasoner = Reasoner(tbox)
        stale = reasoner.classify()
        assert "C" not in stale.group_of
        tbox.add(Subsumption(B, C))
        fresh = reasoner.classify()
        assert fresh is not stale
        assert fresh.is_subsumed_by("A", "C")
