"""Incremental reclassification ≡ full classification.

The tentpole's correctness oracle: for arbitrary edit sequences — the
seeded corpus edit generator and Hypothesis-drawn axiom add/removes —
reclassifying from the predecessor hierarchy must produce exactly the
hierarchy a from-scratch classification produces (same groups, same
group mapping, same poset, same ⊤-equivalents), whether the delta took
the seeded incremental path or fell back to a full run.  Budgeted runs
must land unresolved questions in ``incomplete`` exactly like a full
run, and a later unbudgeted reclassification must repair a predecessor's
incompleteness.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpora.generators import random_tbox, random_tbox_edit
from repro.dl import (
    And,
    Atomic,
    ConceptHierarchy,
    Not,
    Reasoner,
    Subsumption,
    TBox,
    parse_axiom,
    parse_tbox,
    reclassify,
    some,
)
from repro.dl.incremental import ReclassifyResult
from repro.obs import Recorder, use_recorder
from repro.robust import Budget

# a fixed pool of axioms covering told chains, role restrictions,
# negation (so edits can create/destroy unsatisfiable names), and an
# atomic equivalence; subsets of this pool are the edit space below
_POOL = [
    Subsumption(Atomic("A"), Atomic("B")),
    Subsumption(Atomic("B"), Atomic("C")),
    Subsumption(Atomic("C"), And.of([Atomic("D"), some("r", Atomic("E"))])),
    Subsumption(Atomic("D"), Atomic("E")),
    Subsumption(Atomic("E"), Not(Atomic("A"))),
    Subsumption(Atomic("F"), And.of([Atomic("A"), Not(Atomic("B"))])),
    parse_axiom("G = A & D"),
    Subsumption(Atomic("H"), some("s", Atomic("B"))),
]


def _assert_equals_full(result: ReclassifyResult, tbox: TBox) -> None:
    full = ConceptHierarchy(tbox)
    got = result.hierarchy
    assert got.groups() == full.groups()
    assert got.group_of == full.group_of
    assert got.poset == full.poset
    assert got.top_equivalents() == full.top_equivalents()
    assert not got.incomplete


@settings(max_examples=20, deadline=None, derandomize=True)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_edits=st.integers(min_value=1, max_value=4),
)
def test_incremental_equals_full_on_corpus_edit_chains(seed, n_edits):
    """Chains of corpus edits: every step's answer matches from-scratch."""
    tbox = random_tbox(seed, n_defined=8, n_primitive=4, n_roles=2)
    hierarchy = Reasoner(tbox).classify()
    rng = random.Random(seed)
    for _ in range(n_edits):
        tbox = random_tbox_edit(rng, tbox)
        result = reclassify(hierarchy, tbox)
        _assert_equals_full(result, tbox)
        hierarchy = result.hierarchy


@settings(max_examples=30, deadline=None, derandomize=True)
@given(
    before=st.sets(st.sampled_from(range(len(_POOL))), min_size=1),
    after=st.sets(st.sampled_from(range(len(_POOL))), min_size=1),
)
def test_incremental_equals_full_on_axiom_subsets(before, after):
    """Arbitrary add/remove deltas over the pool, incl. unsat churn."""
    old_tbox = TBox([_POOL[i] for i in sorted(before)])
    new_tbox = TBox([_POOL[i] for i in sorted(after)])
    old = Reasoner(old_tbox).classify()
    result = reclassify(old, new_tbox)
    _assert_equals_full(result, new_tbox)


@settings(max_examples=10, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_budget_incomplete_predecessor_is_repaired(seed):
    """Unresolved pairs of a starved predecessor are re-asked and settled."""
    tbox = random_tbox(seed, n_defined=8, n_primitive=4, n_roles=2)
    starved = ConceptHierarchy(tbox, budget=Budget(max_nodes=1))
    if not starved.incomplete:
        return  # this seed never exhausted the budget; nothing to repair
    edited = random_tbox_edit(random.Random(seed), tbox)
    result = reclassify(starved, edited)
    _assert_equals_full(result, edited)


class TestNoOpDelta:
    def test_mode_incremental_and_nothing_affected(self):
        tbox = random_tbox(2, n_defined=6, n_primitive=3, n_roles=2)
        old = Reasoner(tbox).classify()
        result = reclassify(old, TBox(list(tbox.axioms)))
        assert result.incremental
        assert result.affected == frozenset()
        assert result.fallback_reason is None

    def test_no_tableau_work(self):
        tbox = random_tbox(2, n_defined=6, n_primitive=3, n_roles=2)
        old = Reasoner(tbox).classify()
        recorder = Recorder()
        with use_recorder(recorder):
            result = reclassify(old, TBox(list(tbox.axioms)))
        assert recorder.counters.get("tableau.solve_calls", 0) == 0
        _assert_equals_full(result, tbox)


class TestReuse:
    def test_edges_and_caches_are_carried(self):
        tbox = random_tbox(4, n_defined=10, n_primitive=4, n_roles=2)
        # enhanced predecessor: a saturation-classified old reasoner has
        # no tableau caches for the successor to carry
        old = Reasoner(tbox).classify(algorithm="enhanced")
        edited = random_tbox_edit(random.Random(4), tbox)
        recorder = Recorder()
        with use_recorder(recorder):
            result = reclassify(old, edited)
        assert result.incremental
        assert result.reused_edges > 0
        assert result.cache_carryover > 0
        assert recorder.counters["incremental.reused_edges"] == result.reused_edges
        assert (
            recorder.counters["incremental.cache_carryover"]
            == result.cache_carryover
        )
        assert recorder.counters["incremental.affected"] == len(result.affected)

    def test_incremental_does_less_tableau_work(self):
        tbox = random_tbox(4, n_defined=10, n_primitive=4, n_roles=2)
        old = Reasoner(tbox).classify()
        edited = random_tbox_edit(random.Random(4), tbox)
        inc, full = Recorder(), Recorder()
        with use_recorder(inc):
            reclassify(old, edited)
        with use_recorder(full):
            ConceptHierarchy(edited)
        assert inc.counters.get("tableau.solve_calls", 0) < full.counters.get(
            "tableau.solve_calls", 0
        )

    def test_reasoner_reclassify_seeds_classify_cache(self):
        tbox = random_tbox(2, n_defined=6, n_primitive=3, n_roles=2)
        old = Reasoner(tbox).classify()
        edited = random_tbox_edit(random.Random(2), tbox)
        reasoner = Reasoner(edited)
        result = reasoner.reclassify(old)
        assert reasoner.classify() is result.hierarchy


class TestFallbacks:
    def test_general_gci_change_falls_back(self):
        old_tbox = parse_tbox("A [= B\nC [= B")
        new_tbox = parse_tbox("A [= B\nC [= B\nB & C [= D")
        old = Reasoner(old_tbox).classify()
        result = reclassify(old, new_tbox)
        assert result.mode == "full"
        assert "general" in result.fallback_reason
        _assert_equals_full(result, new_tbox)

    def test_edit_reaching_general_gci_vocabulary_falls_back(self):
        # the general axiom itself is unchanged, but the edited name B is
        # part of its vocabulary: no locality argument holds
        shared = "B & C [= D\nA [= B\nC [= E"
        old_tbox = parse_tbox(shared + "\nB [= E")
        new_tbox = parse_tbox(shared + "\nB [= E & F")
        old = Reasoner(old_tbox).classify()
        result = reclassify(old, new_tbox)
        assert result.mode == "full"
        _assert_equals_full(result, new_tbox)

    def test_affected_fraction_threshold_falls_back(self):
        tbox = random_tbox(6, n_defined=8, n_primitive=4, n_roles=2)
        old = Reasoner(tbox).classify()
        edited = random_tbox_edit(random.Random(6), tbox)
        result = reclassify(old, edited, max_affected_fraction=0.0)
        assert result.mode == "full"
        assert "fraction" in result.fallback_reason
        _assert_equals_full(result, edited)

    def test_fallback_is_counted(self):
        tbox = random_tbox(6, n_defined=8, n_primitive=4, n_roles=2)
        old = Reasoner(tbox).classify()
        edited = random_tbox_edit(random.Random(6), tbox)
        recorder = Recorder()
        with use_recorder(recorder):
            reclassify(old, edited, max_affected_fraction=0.0)
        assert recorder.counters["incremental.full_fallbacks"] == 1

    def test_mismatched_reasoner_is_rejected(self):
        tbox = random_tbox(2, n_defined=6, n_primitive=3, n_roles=2)
        old = Reasoner(tbox).classify()
        with pytest.raises(ValueError):
            reclassify(old, TBox(list(tbox.axioms)), reasoner=Reasoner(tbox))


class TestVocabularyChurn:
    def test_removed_name_leaves_the_hierarchy(self):
        old_tbox = parse_tbox("A [= B\nC [= D")
        new_tbox = parse_tbox("A [= B")
        old = Reasoner(old_tbox).classify()
        result = reclassify(old, new_tbox)
        _assert_equals_full(result, new_tbox)
        assert "C" not in result.hierarchy.group_of
        assert "D" not in result.hierarchy.group_of

    def test_added_name_is_inserted(self):
        old_tbox = parse_tbox("A [= B")
        new_tbox = parse_tbox("A [= B\nNew [= A")
        old = Reasoner(old_tbox).classify()
        result = reclassify(old, new_tbox)
        assert result.incremental
        assert "New" in result.affected
        _assert_equals_full(result, new_tbox)
        assert result.hierarchy.parents("New") == frozenset({"A"})
