"""Tests for finite interpretations and tableau model extraction.

The property tests here are the reasoner's external audit: every model
the tableau claims to have found is re-checked by the independent
evaluator in ``repro.dl.interpretation``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpora import vehicle_tbox
from repro.dl import (
    And,
    Atomic,
    DLSyntaxError,
    Interpretation,
    Not,
    Or,
    Reasoner,
    TBox,
    at_least,
    at_most,
    only,
    parse_tbox,
    some,
)

A, B, C = Atomic("A"), Atomic("B"), Atomic("C")


def tiny() -> Interpretation:
    return Interpretation(
        domain=["x", "y", "z"],
        concepts={"A": ["x", "y"], "B": ["y"]},
        roles={"r": [("x", "y"), ("x", "z")]},
    )


class TestInterpretation:
    def test_atomic_and_boolean(self):
        m = tiny()
        assert m.satisfies("x", A)
        assert not m.satisfies("z", A)
        assert m.satisfies("y", A & B)
        assert m.satisfies("z", Not(A))
        assert m.satisfies("x", A | B)

    def test_quantifiers(self):
        m = tiny()
        assert m.satisfies("x", some("r", B))
        assert not m.satisfies("x", only("r", B))  # z is not B
        assert m.satisfies("y", only("r", B))      # vacuously: no successors

    def test_number_restrictions(self):
        m = tiny()
        assert m.satisfies("x", at_least(2, "r"))
        assert not m.satisfies("x", at_least(3, "r"))
        assert m.satisfies("x", at_most(1, "r", B))
        assert not m.satisfies("x", at_most(0, "r", B))

    def test_extension(self):
        m = tiny()
        assert m.extension(A) == frozenset({"x", "y"})
        assert m.extension(some("r", B)) == frozenset({"x"})

    def test_satisfies_tbox(self):
        m = tiny()
        assert m.satisfies_tbox(parse_tbox("B [= A"))
        assert not m.satisfies_tbox(parse_tbox("A [= B"))

    def test_validation(self):
        with pytest.raises(DLSyntaxError):
            Interpretation([])
        with pytest.raises(DLSyntaxError):
            Interpretation(["x"], concepts={"A": ["ghost"]})
        with pytest.raises(DLSyntaxError):
            Interpretation(["x"], roles={"r": [("x", "ghost")]})
        with pytest.raises(DLSyntaxError):
            tiny().satisfies("ghost", A)


class TestModelExtraction:
    def test_simple_witness(self):
        r = Reasoner()
        concept = A & some("r", B & Not(A))
        model = r.extract_model(concept)
        assert model is not None
        assert any(model.satisfies(e, concept) for e in model.domain)

    def test_unsat_yields_none(self):
        r = Reasoner()
        assert r.extract_model(A & Not(A)) is None

    def test_number_restriction_witness(self):
        r = Reasoner()
        concept = at_least(3, "r", A) & at_most(3, "r")
        model = r.extract_model(concept)
        assert model is not None
        assert any(model.satisfies(e, concept) for e in model.domain)

    def test_witness_with_tbox_unfolding(self):
        r = Reasoner(vehicle_tbox())
        model = r.extract_model(Atomic("car"))
        assert model is not None
        element = next(iter(model.extension(Atomic("car"))))
        # the unfolded consequences hold at the witness
        assert model.satisfies(element, some("uses", Atomic("gasoline")))
        assert model.satisfies(element, at_least(4, "has", Atomic("wheel")))

    def test_cyclic_tbox_blocked_model(self):
        # A ⊑ ∃r.A: the blocked graph unravels into a finite cyclic model
        tbox = parse_tbox("A [= some r.A")
        r = Reasoner(tbox)
        model = r.extract_model(Atomic("A"))
        assert model is not None
        element = next(iter(model.extension(Atomic("A"))))
        # following r from A always reaches another A
        assert model.satisfies(element, some("r", Atomic("A")))


# ---------------------------------------------------------------------- #
# property-based: the tableau's verdicts audited by the evaluator
# ---------------------------------------------------------------------- #

atoms = st.sampled_from([A, B, C])


@st.composite
def concepts(draw, depth=3):
    if depth == 0:
        return draw(atoms)
    kind = draw(st.integers(min_value=0, max_value=6))
    if kind == 0:
        return draw(atoms)
    if kind == 1:
        return Not(draw(concepts(depth=depth - 1)))
    if kind == 2:
        return And.of([draw(concepts(depth=depth - 1)), draw(concepts(depth=depth - 1))])
    if kind == 3:
        return Or.of([draw(concepts(depth=depth - 1)), draw(concepts(depth=depth - 1))])
    if kind == 4:
        return some(draw(st.sampled_from(["r", "s"])), draw(concepts(depth=depth - 1)))
    if kind == 5:
        return only(draw(st.sampled_from(["r", "s"])), draw(concepts(depth=depth - 1)))
    return at_least(
        draw(st.integers(min_value=1, max_value=3)),
        draw(st.sampled_from(["r", "s"])),
        draw(concepts(depth=depth - 1)),
    )


@settings(max_examples=80, deadline=None)
@given(concepts())
def test_extracted_models_verify(concept):
    r = Reasoner()
    model = r.extract_model(concept)
    if model is not None:
        assert any(model.satisfies(e, concept) for e in model.domain)


@settings(max_examples=60, deadline=None)
@given(concepts())
def test_concept_or_negation_satisfiable(concept):
    r = Reasoner()
    # excluded middle at the meta level: C and ¬C cannot both be unsat
    assert r.is_satisfiable(concept) or r.is_satisfiable(Not(concept))
