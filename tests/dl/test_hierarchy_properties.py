"""Property tests: enhanced-traversal classification ≡ brute force.

The enhanced-traversal algorithm prunes tableau subsumption tests via
told subsumers, transitivity, and negative-result propagation; none of
that may change the *answer*.  These properties generate TBoxes two ways
— the seeded corpus generator used by the benches, and a Hypothesis
strategy with negation so unsatisfiable and ⊤-equivalent names occur —
and assert both algorithms yield the identical hierarchy: same
equivalence classes, same poset, same group mapping.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpora import random_tbox
from repro.dl import (
    And,
    Atomic,
    Equivalence,
    Not,
    Or,
    Subsumption,
    TBox,
    classify,
    some,
)

_NAMES = ["A", "B", "C", "D", "E"]
_ROLES = ["r", "s"]
_atoms = st.sampled_from([Atomic(n) for n in _NAMES])


@st.composite
def _concepts(draw, depth=2):
    if depth == 0:
        return draw(_atoms)
    kind = draw(st.integers(min_value=0, max_value=4))
    if kind == 0:
        return draw(_atoms)
    if kind == 1:
        return Not(draw(_concepts(depth=depth - 1)))
    if kind == 2:
        return And.of(
            [draw(_concepts(depth=depth - 1)), draw(_concepts(depth=depth - 1))]
        )
    if kind == 3:
        return Or.of(
            [draw(_concepts(depth=depth - 1)), draw(_concepts(depth=depth - 1))]
        )
    return some(draw(st.sampled_from(_ROLES)), draw(_concepts(depth=depth - 1)))


@st.composite
def _axioms(draw):
    left = draw(_atoms)
    right = draw(_concepts())
    if draw(st.booleans()):
        return Subsumption(left, right)
    return Equivalence(left, right)


_tboxes = st.lists(_axioms(), min_size=1, max_size=5).map(TBox)


def _assert_same_hierarchy(tbox: TBox) -> None:
    enhanced = classify(tbox, algorithm="enhanced")
    brute = classify(tbox, algorithm="brute")
    assert enhanced.groups() == brute.groups()
    assert enhanced.group_of == brute.group_of
    assert enhanced.poset == brute.poset
    assert enhanced.top_equivalents() == brute.top_equivalents()


@settings(max_examples=30, deadline=None, derandomize=True)
@given(_tboxes)
def test_enhanced_equals_brute_on_random_axioms(tbox):
    _assert_same_hierarchy(tbox)


@settings(max_examples=12, deadline=None, derandomize=True)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_defined=st.integers(min_value=2, max_value=10),
    n_primitive=st.integers(min_value=1, max_value=5),
)
def test_enhanced_equals_brute_on_corpus_tboxes(seed, n_defined, n_primitive):
    tbox = random_tbox(seed, n_defined=n_defined, n_primitive=n_primitive, n_roles=2)
    _assert_same_hierarchy(tbox)


@settings(max_examples=12, deadline=None, derandomize=True)
@given(_tboxes)
def test_told_seeding_never_changes_enhanced_answer(tbox):
    with_told = classify(tbox, algorithm="enhanced", use_told_subsumers=True)
    without = classify(tbox, algorithm="enhanced", use_told_subsumers=False)
    assert with_told.groups() == without.groups()
    assert with_told.poset == without.poset
