"""Test package."""
