"""Unit tests for the tableau and the reasoning services."""

import pytest

from repro.corpora.vehicles import vehicle_tbox
from repro.dl import (
    ABox,
    And,
    Atomic,
    BOTTOM,
    ConceptAssertion,
    Equivalence,
    Not,
    Or,
    Reasoner,
    ReasonerError,
    Role,
    RoleAssertion,
    Subsumption,
    TBox,
    TOP,
    at_least,
    at_most,
    only,
    parse_concept,
    parse_tbox,
    some,
)

A, B, C = Atomic("A"), Atomic("B"), Atomic("C")


class TestSatisfiabilityNoTBox:
    def test_atomic_satisfiable(self):
        assert Reasoner().is_satisfiable(A)

    def test_contradiction(self):
        assert not Reasoner().is_satisfiable(A & Not(A))

    def test_top_bottom(self):
        r = Reasoner()
        assert r.is_satisfiable(TOP)
        assert not r.is_satisfiable(BOTTOM)

    def test_disjunction_branching(self):
        r = Reasoner()
        assert r.is_satisfiable((A | B) & Not(A))
        assert not r.is_satisfiable((A | B) & Not(A) & Not(B))

    def test_exists_forall_interaction(self):
        r = Reasoner()
        # ∃r.A ⊓ ∀r.¬A is unsatisfiable
        assert not r.is_satisfiable(some("r", A) & only("r", Not(A)))
        # ∃r.A ⊓ ∀r.B is fine
        assert r.is_satisfiable(some("r", A) & only("r", B))

    def test_forall_propagates_through_chain(self):
        r = Reasoner()
        c = some("r", some("s", A)) & only("r", only("s", Not(A)))
        assert not r.is_satisfiable(c)

    def test_number_restrictions_conflict(self):
        r = Reasoner()
        # ≥3 r ⊓ ≤2 r is unsatisfiable
        assert not r.is_satisfiable(at_least(3, "r") & at_most(2, "r"))
        assert r.is_satisfiable(at_least(2, "r") & at_most(2, "r"))

    def test_atleast_with_incompatible_forall(self):
        r = Reasoner()
        c = at_least(2, "r", A) & only("r", Not(A))
        assert not r.is_satisfiable(c)

    def test_atmost_merging_satisfies(self):
        r = Reasoner()
        # two ∃-successors can merge to satisfy ≤1 r
        c = some("r", A) & some("r", B) & at_most(1, "r")
        assert r.is_satisfiable(c)

    def test_atmost_merging_fails_on_clash(self):
        r = Reasoner()
        c = some("r", A) & some("r", Not(A)) & at_most(1, "r")
        assert not r.is_satisfiable(c)

    def test_atleast_zero_trivial(self):
        assert Reasoner().is_satisfiable(at_least(0, "r"))


class TestQualifiedAtMost:
    """The choose-rule: ≤n r.C with C ≠ ⊤."""

    def test_qualified_conflict(self):
        r = Reasoner()
        assert not r.is_satisfiable(at_least(3, "r", A) & at_most(2, "r", A))
        assert r.is_satisfiable(at_least(2, "r", A) & at_most(2, "r", A))

    def test_merge_candidates_only(self):
        r = Reasoner()
        # two A-successors with incompatible decorations cannot merge
        c = at_most(1, "r", A) & some("r", A & B) & some("r", A & Not(B))
        assert not r.is_satisfiable(c)
        # compatible decorations merge fine
        c = at_most(1, "r", A) & some("r", A & B) & some("r", A & C)
        assert r.is_satisfiable(c)

    def test_choose_rule_can_classify_successor_as_non_filler(self):
        r = Reasoner()
        # the B-successor need not be an A: choose ¬A for it
        assert r.is_satisfiable(at_most(0, "r", A) & some("r", B))
        assert not r.is_satisfiable(at_most(0, "r", A) & some("r", A))

    def test_non_candidates_do_not_count(self):
        r = Reasoner()
        # three successors but only two can be A-instances
        c = (
            at_most(2, "r", A)
            & at_least(2, "r", A)
            & some("r", B & Not(A))
        )
        assert r.is_satisfiable(c)

    def test_paper_query_now_decidable(self):
        # pickup ⊑ ≥4 has.wheel: the negation is the qualified ≤3 has.wheel
        r = Reasoner(vehicle_tbox())
        assert r.subsumes(parse_concept(">= 4 has.wheel"), Atomic("pickup"))
        assert not r.subsumes(parse_concept(">= 5 has.wheel"), Atomic("pickup"))

    def test_interaction_with_forall(self):
        r = Reasoner()
        # all r-successors are A, there are 3 of them, at most 2 may be A
        c = at_least(3, "r") & only("r", A) & at_most(2, "r", A)
        assert not r.is_satisfiable(c)


class TestTBoxReasoning:
    def test_told_subsumption(self):
        r = Reasoner(TBox([Subsumption(A, B)]))
        assert r.subsumes(B, A)
        assert not r.subsumes(A, B)

    def test_transitive_subsumption(self):
        r = Reasoner(TBox([Subsumption(A, B), Subsumption(B, C)]))
        assert r.subsumes(C, A)

    def test_equivalence_axiom(self):
        r = Reasoner(TBox([Equivalence(A, B & C)]))
        assert r.subsumes(B, A)
        assert r.subsumes(A, B & C)
        assert r.equivalent(A, B & C)

    def test_defined_concept_via_equivalence_back_direction(self):
        # A ≡ B ⊓ C: anything that is B ⊓ C must be A
        r = Reasoner(TBox([Equivalence(A, B & C)]))
        assert r.subsumes(A, And.of([B, C]))

    def test_general_gci(self):
        # non-atomic lhs: B ⊓ C ⊑ A
        r = Reasoner(TBox([Subsumption(B & C, A)]))
        assert r.subsumes(A, B & C)
        assert not r.subsumes(A, B)

    def test_unsatisfiable_concept_via_tbox(self):
        r = Reasoner(TBox([Subsumption(A, B), Subsumption(A, Not(B))]))
        assert not r.is_satisfiable(A)
        assert r.unsatisfiable_names() == ["A"]
        assert not r.is_coherent()

    def test_cyclic_tbox_terminates_by_blocking(self):
        # A ⊑ ∃r.A is satisfiable in an infinite (or blocked-loop) model
        r = Reasoner(TBox([Subsumption(A, some("r", A))]))
        assert r.is_satisfiable(A)

    def test_cyclic_tbox_with_contradiction(self):
        tbox = TBox(
            [
                Subsumption(A, some("r", A) & B),
                Subsumption(B, Not(A) | C,),
                Subsumption(C, Not(B)),
            ]
        )
        r = Reasoner(tbox)
        # A forces B; B forces ¬A ⊔ C; ¬A clashes, so C; C forces ¬B: clash
        assert not r.is_satisfiable(A)

    def test_disjoint(self):
        r = Reasoner(TBox([Subsumption(A, Not(B))]))
        assert r.disjoint(A, B)
        assert not r.disjoint(A, C)

    def test_vehicle_tbox_coherent(self):
        r = Reasoner(vehicle_tbox())
        assert r.is_coherent()
        assert r.subsumes(Atomic("motorvehicle"), Atomic("car"))
        assert r.subsumes(parse_concept("some uses.gasoline"), Atomic("car"))
        assert not r.subsumes(Atomic("car"), Atomic("motorvehicle"))

    def test_subsumption_cache_consistency(self):
        r = Reasoner(TBox([Subsumption(A, B)]))
        assert r.subsumes(B, A)
        assert r.subsumes(B, A)  # cached path


class TestABox:
    def kb(self):
        tbox = parse_tbox(
            """
            car [= motorvehicle
            motorvehicle [= some uses.gasoline
            """
        )
        abox = ABox(
            [
                ConceptAssertion("herbie", Atomic("car")),
                ConceptAssertion("trigger", Atomic("horse")),
                RoleAssertion("herbie", "fuel1", Role("uses")),
            ]
        )
        return Reasoner(tbox), abox

    def test_consistent(self):
        r, abox = self.kb()
        assert r.is_consistent(abox)

    def test_inconsistent_direct_clash(self):
        r, _ = self.kb()
        abox = ABox(
            [
                ConceptAssertion("x", Atomic("car")),
                ConceptAssertion("x", Not(Atomic("motorvehicle"))),
            ]
        )
        assert not r.is_consistent(abox)

    def test_instance_checking(self):
        r, abox = self.kb()
        assert r.is_instance(abox, "herbie", Atomic("motorvehicle"))
        assert r.is_instance(abox, "herbie", parse_concept("some uses.gasoline"))
        assert not r.is_instance(abox, "trigger", Atomic("motorvehicle"))

    def test_instance_unknown_individual(self):
        r, abox = self.kb()
        with pytest.raises(ReasonerError):
            r.is_instance(abox, "ghost", Atomic("car"))

    def test_retrieve(self):
        r, abox = self.kb()
        assert r.retrieve(abox, Atomic("motorvehicle")) == ["herbie"]

    def test_unique_name_assumption_with_atmost(self):
        tbox = TBox([Subsumption(A, at_most(1, "r"))])
        abox = ABox(
            [
                ConceptAssertion("a", A),
                RoleAssertion("a", "b", Role("r")),
                RoleAssertion("a", "c", Role("r")),
            ]
        )
        r = Reasoner(tbox)
        # b and c are distinct named individuals: ≤1 r is violated
        assert not r.is_consistent(abox)

    def test_empty_abox_consistent(self):
        r, _ = self.kb()
        assert r.is_consistent(ABox())


class TestSatCacheCrossSeeding:
    def test_failed_subsumption_seeds_sat_cache(self):
        from repro.obs import Recorder, use_recorder

        reasoner = Reasoner(TBox([Subsumption(A, B)]))
        recorder = Recorder()
        with use_recorder(recorder):
            # B ⋢ A, so the test concept B ⊓ ¬A has a model — and that
            # model witnesses sat(B), which cross-seeds the sat cache
            assert not reasoner.subsumes(A, B)
            assert recorder.counters["reasoner.sat_cross_seeds"] == 1
            assert reasoner.known_satisfiability(B) is True
            assert reasoner.is_satisfiable(B)
        # the sat check above was answered from the seeded cache
        assert recorder.counters["reasoner.sat_cache_hits"] == 1
        assert "reasoner.sat_cache_misses" not in recorder.counters

    def test_positive_subsumption_does_not_seed(self):
        reasoner = Reasoner(TBox([Subsumption(A, B)]))
        assert reasoner.subsumes(B, A)  # test concept unsatisfiable
        assert reasoner.known_satisfiability(A) is None

    def test_known_satisfiability_never_runs_tableau(self):
        from repro.obs import Recorder, use_recorder

        reasoner = Reasoner(TBox([Subsumption(A, B)]))
        recorder = Recorder()
        with use_recorder(recorder):
            assert reasoner.known_satisfiability(A) is None
        assert "tableau.solve_calls" not in recorder.counters

    def test_classification_reuses_cross_seeded_answers(self):
        from repro.obs import Recorder, use_recorder

        reasoner = Reasoner(vehicle_tbox())
        recorder = Recorder()
        with use_recorder(recorder):
            # pin enhanced: the auto default classifies this EL corpus by
            # saturation and never opens a tableau, so no cross-seeding
            reasoner.classify(algorithm="enhanced")
        assert recorder.counters.get("reasoner.sat_cross_seeds", 0) > 0
        assert recorder.counters.get("reasoner.sat_cache_hits", 0) > 0
