"""Unit tests for semantic TBox diffing."""

from repro.corpora import animal_tbox, repaired_animal_tbox
from repro.dl import parse_tbox, tbox_diff


class TestTBoxDiff:
    def test_no_change(self):
        tbox = parse_tbox("A [= B")
        diff = tbox_diff(tbox, parse_tbox("A [= B"))
        assert diff.unchanged
        assert diff.summary() == "no semantic change"
        assert ("A", "B") in diff.subsumptions_kept

    def test_syntactic_change_no_semantic_change(self):
        # same entailments, different axiom shapes
        before = parse_tbox("A [= B & C")
        after = parse_tbox("A [= B\nA [= C")
        assert tbox_diff(before, after).unchanged

    def test_gained_subsumption(self):
        before = parse_tbox("A [= B\nC [= B")
        after = parse_tbox("A [= B\nC [= A")
        diff = tbox_diff(before, after)
        assert ("C", "A") in diff.subsumptions_gained
        assert diff.subsumptions_lost == frozenset()
        assert diff.is_conservative

    def test_lost_subsumption(self):
        before = parse_tbox("A [= B\nB [= C")
        # drop B ⊑ C while keeping C in the vocabulary
        after = parse_tbox("A [= B\nC [= C")
        diff = tbox_diff(before, after)
        assert ("B", "C") in diff.subsumptions_lost
        assert ("A", "C") in diff.subsumptions_lost
        assert not diff.is_conservative

    def test_vocabulary_changes_reported_separately(self):
        before = parse_tbox("A [= B")
        after = parse_tbox("A [= B\nNew [= A")
        diff = tbox_diff(before, after)
        assert diff.names_added == frozenset({"New"})
        assert diff.subsumptions_gained == frozenset()
        assert diff.is_conservative

    def test_paper_repair_is_a_gain(self):
        """The (9)-(11) repair adds quadruped ⊑ animal without losing anything."""
        diff = tbox_diff(animal_tbox(), repaired_animal_tbox())
        assert ("quadruped", "animal") in diff.subsumptions_gained
        assert diff.subsumptions_lost == frozenset()
        assert diff.is_conservative
        assert "+⊑ quadruped ⊑ animal" in diff.summary()
