"""Unit tests for syntactic (axiom_diff) and semantic (tbox_diff) TBox diffing."""

from repro.corpora import animal_tbox, repaired_animal_tbox
from repro.dl import TBox, axiom_diff, parse_axiom, parse_tbox, tbox_diff


class TestAxiomDiff:
    def test_self_diff_is_empty(self):
        tbox = parse_tbox("A [= B & some r.C\nD = A & B")
        delta = axiom_diff(tbox, tbox)
        assert delta.unchanged
        assert delta.added == frozenset()
        assert delta.removed == frozenset()
        assert delta.changed_names == frozenset()
        assert delta.names_added == frozenset()
        assert delta.names_removed == frozenset()
        assert not delta.general_changed
        assert delta.summary() == "no syntactic change"

    def test_axiom_identical_copy_is_no_op(self):
        before = parse_tbox("A [= B\nC [= D")
        after = TBox(list(before.axioms))
        assert axiom_diff(before, after).unchanged

    def test_added_concept(self):
        before = parse_tbox("A [= B")
        after = parse_tbox("A [= B\nNew [= A")
        delta = axiom_diff(before, after)
        assert delta.added == frozenset({parse_axiom("New [= A")})
        assert delta.removed == frozenset()
        assert delta.names_added == frozenset({"New"})
        assert delta.changed_names == frozenset({"New"})
        assert not delta.general_changed

    def test_removed_concept(self):
        before = parse_tbox("A [= B\nGone [= A & some r.B")
        after = parse_tbox("A [= B")
        delta = axiom_diff(before, after)
        assert delta.removed == frozenset({parse_axiom("Gone [= A & some r.B")})
        assert delta.changed_names == frozenset({"Gone"})
        # the role filler B survives; Gone and the role vocab vanish
        assert delta.names_removed == frozenset({"Gone"})

    def test_renamed_concept_is_remove_plus_add(self):
        before = parse_tbox("Old [= B & some r.C")
        after = parse_tbox("Fresh [= B & some r.C")
        delta = axiom_diff(before, after)
        assert delta.changed_names == frozenset({"Old", "Fresh"})
        assert delta.names_added == frozenset({"Fresh"})
        assert delta.names_removed == frozenset({"Old"})
        assert not delta.general_changed

    def test_role_change_marks_the_defined_name(self):
        before = parse_tbox("A [= some drives.B")
        after = parse_tbox("A [= some owns.B")
        delta = axiom_diff(before, after)
        assert delta.changed_names == frozenset({"A"})
        assert len(delta.added) == 1 and len(delta.removed) == 1
        assert not delta.general_changed

    def test_duplicate_axiom_is_no_change(self):
        before = parse_tbox("A [= B")
        after = TBox([parse_axiom("A [= B"), parse_axiom("A [= B")])
        assert axiom_diff(before, after).unchanged

    def test_general_gci_flags_general_changed(self):
        before = parse_tbox("A [= B")
        after = parse_tbox("A [= B\nB & C [= D")
        delta = axiom_diff(before, after)
        assert delta.general_changed

    def test_complex_equivalence_flags_general_changed(self):
        before = parse_tbox("A [= B")
        after = parse_tbox("A [= B\nE = B & some r.C")
        delta = axiom_diff(before, after)
        # the forward half is definitorial for E, the reverse half is a GCI
        assert "E" in delta.changed_names
        assert delta.general_changed

    def test_atomic_equivalence_marks_both_names(self):
        before = parse_tbox("A [= C")
        after = parse_tbox("A [= C\nA = B")
        delta = axiom_diff(before, after)
        assert delta.changed_names == frozenset({"A", "B"})
        assert not delta.general_changed

    def test_summary_lists_signed_axioms(self):
        before = parse_tbox("A [= B")
        after = parse_tbox("C [= B")
        summary = axiom_diff(before, after).summary()
        assert summary.count("+") == 1
        assert summary.count("-") == 1


class TestTBoxDiff:
    def test_no_change(self):
        tbox = parse_tbox("A [= B")
        diff = tbox_diff(tbox, parse_tbox("A [= B"))
        assert diff.unchanged
        assert diff.summary() == "no semantic change"
        assert ("A", "B") in diff.subsumptions_kept

    def test_syntactic_change_no_semantic_change(self):
        # same entailments, different axiom shapes
        before = parse_tbox("A [= B & C")
        after = parse_tbox("A [= B\nA [= C")
        assert tbox_diff(before, after).unchanged

    def test_gained_subsumption(self):
        before = parse_tbox("A [= B\nC [= B")
        after = parse_tbox("A [= B\nC [= A")
        diff = tbox_diff(before, after)
        assert ("C", "A") in diff.subsumptions_gained
        assert diff.subsumptions_lost == frozenset()
        assert diff.is_conservative

    def test_lost_subsumption(self):
        before = parse_tbox("A [= B\nB [= C")
        # drop B ⊑ C while keeping C in the vocabulary
        after = parse_tbox("A [= B\nC [= C")
        diff = tbox_diff(before, after)
        assert ("B", "C") in diff.subsumptions_lost
        assert ("A", "C") in diff.subsumptions_lost
        assert not diff.is_conservative

    def test_vocabulary_changes_reported_separately(self):
        before = parse_tbox("A [= B")
        after = parse_tbox("A [= B\nNew [= A")
        diff = tbox_diff(before, after)
        assert diff.names_added == frozenset({"New"})
        assert diff.subsumptions_gained == frozenset()
        assert diff.is_conservative

    def test_paper_repair_is_a_gain(self):
        """The (9)-(11) repair adds quadruped ⊑ animal without losing anything."""
        diff = tbox_diff(animal_tbox(), repaired_animal_tbox())
        assert ("quadruped", "animal") in diff.subsumptions_gained
        assert diff.subsumptions_lost == frozenset()
        assert diff.is_conservative
        assert "+⊑ quadruped ⊑ animal" in diff.summary()
