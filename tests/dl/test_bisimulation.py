"""Unit and property tests for bisimulation and ALC invariance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    And,
    Atomic,
    Interpretation,
    Not,
    Or,
    are_bisimilar,
    at_least,
    bisimulation_classes,
    is_alc_concept,
    only,
    some,
)

A, B = Atomic("A"), Atomic("B")


def two_chains() -> tuple[Interpretation, Interpretation]:
    """x→y with A at y, versus a longer chain with the same one-step view."""
    m1 = Interpretation(["x", "y"], {"A": ["y"]}, {"r": [("x", "y")]})
    m2 = Interpretation(
        ["u", "v", "w"], {"A": ["v", "w"]}, {"r": [("u", "v"), ("v", "w")]}
    )
    return m1, m2


class TestBisimulation:
    def test_identical_elements_bisimilar(self):
        m1, _ = two_chains()
        assert are_bisimilar(m1, "x", m1, "x")
        assert are_bisimilar(m1, "y", m1, "y")

    def test_atomic_difference_separates(self):
        m1, _ = two_chains()
        assert not are_bisimilar(m1, "x", m1, "y")

    def test_successor_structure_separates(self):
        m1, m2 = two_chains()
        # y has no successors; v has an r-successor: not bisimilar
        assert not are_bisimilar(m1, "y", m2, "v")
        # but y and w (both A, both terminal) are bisimilar
        assert are_bisimilar(m1, "y", m2, "w")

    def test_unfolding_is_bisimilar(self):
        # a self-loop and its two-element unfolding
        loop = Interpretation(["a"], {"P": ["a"]}, {"r": [("a", "a")]})
        cycle = Interpretation(
            ["b", "c"], {"P": ["b", "c"]}, {"r": [("b", "c"), ("c", "b")]}
        )
        assert are_bisimilar(loop, "a", cycle, "b")
        assert are_bisimilar(loop, "a", cycle, "c")

    def test_counting_difference_is_invisible(self):
        # one A-successor vs two: bisimilar (sets, not multisets)
        one = Interpretation(["x", "y"], {"A": ["y"]}, {"r": [("x", "y")]})
        two = Interpretation(
            ["u", "v1", "v2"], {"A": ["v1", "v2"]},
            {"r": [("u", "v1"), ("u", "v2")]},
        )
        assert are_bisimilar(one, "x", two, "u")
        # ...and exactly here number restrictions SEE the difference:
        assert not one.satisfies("x", at_least(2, "r", A))
        assert two.satisfies("u", at_least(2, "r", A))

    def test_classes_cover_all_elements(self):
        m1, m2 = two_chains()
        classes = bisimulation_classes(m1, m2)
        assert set(classes) == {(1, "x"), (1, "y"), (2, "u"), (2, "v"), (2, "w")}


class TestALCFragment:
    def test_alc_membership(self):
        assert is_alc_concept(A & Not(B))
        assert is_alc_concept(some("r", only("s", A | B)))
        assert not is_alc_concept(at_least(2, "r", A))
        assert not is_alc_concept(some("r", at_least(1, "s", A)))


# ---------------------------------------------------------------------- #
# the invariance theorem, property-tested
# ---------------------------------------------------------------------- #

_atoms = st.sampled_from([A, B])


@st.composite
def alc_concepts(draw, depth=3):
    if depth == 0:
        return draw(_atoms)
    kind = draw(st.integers(min_value=0, max_value=5))
    if kind == 0:
        return draw(_atoms)
    if kind == 1:
        return Not(draw(alc_concepts(depth=depth - 1)))
    if kind == 2:
        return And.of([draw(alc_concepts(depth=depth - 1)),
                       draw(alc_concepts(depth=depth - 1))])
    if kind == 3:
        return Or.of([draw(alc_concepts(depth=depth - 1)),
                      draw(alc_concepts(depth=depth - 1))])
    if kind == 4:
        return some(draw(st.sampled_from(["r", "s"])), draw(alc_concepts(depth=depth - 1)))
    return only(draw(st.sampled_from(["r", "s"])), draw(alc_concepts(depth=depth - 1)))


@st.composite
def interpretations(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    domain = list(range(n))
    concepts = {
        name: draw(st.lists(st.sampled_from(domain), max_size=n))
        for name in ("A", "B")
    }
    roles = {
        role: draw(
            st.lists(st.tuples(st.sampled_from(domain), st.sampled_from(domain)), max_size=6)
        )
        for role in ("r", "s")
    }
    return Interpretation(domain, concepts, roles)


@settings(max_examples=60, deadline=None)
@given(interpretations(), interpretations(), alc_concepts())
def test_alc_invariance_under_bisimulation(m1, m2, concept):
    """Bisimilar elements satisfy the same ALC concepts."""
    classes = bisimulation_classes(m1, m2)
    for e1 in m1.domain:
        for e2 in m2.domain:
            if classes[(1, e1)] == classes[(2, e2)]:
                assert m1.satisfies(e1, concept) == m2.satisfies(e2, concept)


@settings(max_examples=60, deadline=None)
@given(interpretations(), alc_concepts())
def test_bisimulation_reflexive_within_model(m, concept):
    classes = bisimulation_classes(m, m)
    for e in m.domain:
        assert classes[(1, e)] == classes[(2, e)]
