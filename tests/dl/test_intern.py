"""Interned-id plumbing: bitset helpers, intern tables, syntax caches."""

import pytest

from repro.dl import (
    BOTTOM,
    BOTTOM_ID,
    TOP,
    TOP_ID,
    Atomic,
    BitSet,
    ConceptTable,
    InternTable,
    Role,
    some,
)
from repro.obs import Recorder, use_recorder


class TestBitSet:
    def test_of_and_bits_round_trip(self):
        mask = BitSet.of([0, 3, 7])
        assert mask == 0b10001001
        assert list(BitSet.bits(mask)) == [0, 3, 7]

    def test_of_empty(self):
        assert BitSet.of([]) == 0
        assert list(BitSet.bits(0)) == []

    def test_has(self):
        mask = BitSet.of([2, 5])
        assert BitSet.has(mask, 2)
        assert BitSet.has(mask, 5)
        assert not BitSet.has(mask, 3)
        assert not BitSet.has(mask, 64)  # beyond the top set bit

    def test_count(self):
        assert BitSet.count(0) == 0
        assert BitSet.count(BitSet.of(range(10))) == 10

    def test_set_algebra_is_int_algebra(self):
        a, b = BitSet.of([1, 2, 3]), BitSet.of([3, 4])
        assert list(BitSet.bits(a | b)) == [1, 2, 3, 4]
        assert list(BitSet.bits(a & b)) == [3]
        assert (BitSet.of([1, 2]) & a) == BitSet.of([1, 2])  # subset test


class TestInternTable:
    def test_ids_dense_and_first_seen_ordered(self):
        table = InternTable()
        assert table.intern("x") == 0
        assert table.intern("y") == 1
        assert table.intern("x") == 0  # stable on re-intern
        assert len(table) == 2
        assert table.items() == ["x", "y"]
        assert table[1] == "y"

    def test_get_never_grows(self):
        table = InternTable()
        table.intern("x")
        assert table.get("ghost") is None
        assert len(table) == 1
        assert "x" in table and "ghost" not in table

    def test_mask_interns_and_combines(self):
        table = InternTable()
        mask = table.mask(["a", "b", "a"])
        assert mask == BitSet.of([0, 1])

    def test_table_size_counter_ticks_once_per_distinct_item(self):
        recorder = Recorder()
        with use_recorder(recorder):
            table = InternTable()
            table.intern("a")
            table.intern("b")
            table.intern("a")
        assert recorder.counters["intern.table_size"] == 2

    def test_determinism_under_same_call_sequence(self):
        def build():
            t = InternTable()
            for name in ["c", "a", "b", "a"]:
                t.intern(name)
            return [t.get(n) for n in ["a", "b", "c"]]

        assert build() == build()


class TestConceptTable:
    def test_top_and_bottom_pinned(self):
        table = ConceptTable()
        assert table.get(TOP) == TOP_ID == 0
        assert table.get(BOTTOM) == BOTTOM_ID == 1
        assert table.intern(Atomic("A")) == 2

    def test_structural_equality_keys(self):
        table = ConceptTable()
        cid = table.intern(some("r", Atomic("A")))
        assert table.intern(some("r", Atomic("A"))) == cid


class TestSyntaxInterning:
    def test_atomic_identity(self):
        assert Atomic("car") is Atomic("car")
        assert Atomic("car") is not Atomic("cat")

    def test_role_identity(self):
        assert Role("has") is Role("has")

    def test_empty_name_still_rejected(self):
        with pytest.raises(Exception):
            Atomic("")
        with pytest.raises(Exception):
            Role("")

    def test_interned_instances_stay_value_equal(self):
        # identity is an optimization, not a semantic change
        assert Atomic("x") == Atomic("x")
        assert hash(Atomic("x")) == hash(Atomic("x"))
