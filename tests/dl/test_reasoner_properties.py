"""Meta-property audit of the tableau reasoner.

Logical laws the reasoner must respect regardless of input: subsumption
is a preorder, equivalences the NNF transformation promises really hold,
and satisfiability behaves correctly under the Boolean structure.  These
run against randomly generated concepts, so they police exactly the code
paths hand-written cases miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    And,
    Atomic,
    BOTTOM,
    Not,
    Or,
    Reasoner,
    TOP,
    at_least,
    negate,
    only,
    some,
    to_nnf,
)

A, B, C = Atomic("A"), Atomic("B"), Atomic("C")
_atoms = st.sampled_from([A, B, C])


@st.composite
def concepts(draw, depth=2):
    if depth == 0:
        return draw(_atoms)
    kind = draw(st.integers(min_value=0, max_value=6))
    if kind == 0:
        return draw(_atoms)
    if kind == 1:
        return Not(draw(concepts(depth=depth - 1)))
    if kind == 2:
        return And.of([draw(concepts(depth=depth - 1)), draw(concepts(depth=depth - 1))])
    if kind == 3:
        return Or.of([draw(concepts(depth=depth - 1)), draw(concepts(depth=depth - 1))])
    if kind == 4:
        return some(draw(st.sampled_from(["r", "s"])), draw(concepts(depth=depth - 1)))
    if kind == 5:
        return only(draw(st.sampled_from(["r", "s"])), draw(concepts(depth=depth - 1)))
    return at_least(
        draw(st.integers(min_value=1, max_value=2)),
        draw(st.sampled_from(["r", "s"])),
        draw(concepts(depth=depth - 1)),
    )


@settings(max_examples=60, deadline=None)
@given(concepts())
def test_subsumption_reflexive(c):
    assert Reasoner().subsumes(c, c)


@settings(max_examples=40, deadline=None)
@given(concepts(), concepts(), concepts())
def test_subsumption_transitive(a, b, c):
    r = Reasoner()
    if r.subsumes(b, a) and r.subsumes(c, b):
        assert r.subsumes(c, a)


@settings(max_examples=60, deadline=None)
@given(concepts())
def test_everything_under_top_bottom_under_everything(c):
    r = Reasoner()
    assert r.subsumes(TOP, c)
    assert r.subsumes(c, BOTTOM)


@settings(max_examples=60, deadline=None)
@given(concepts())
def test_nnf_preserves_equivalence(c):
    r = Reasoner()
    assert r.equivalent(c, to_nnf(c))


@settings(max_examples=60, deadline=None)
@given(concepts())
def test_negation_is_complement(c):
    r = Reasoner()
    # C ⊓ ¬C is unsatisfiable; C ⊔ ¬C is ⊤
    assert not r.is_satisfiable(And.of([c, negate(c)]))
    assert r.subsumes(Or.of([c, negate(c)]), TOP)


@settings(max_examples=60, deadline=None)
@given(concepts(), concepts())
def test_conjunction_subsumed_by_conjuncts(a, b):
    r = Reasoner()
    conjunction = And.of([a, b])
    assert r.subsumes(a, conjunction)
    assert r.subsumes(b, conjunction)


@settings(max_examples=60, deadline=None)
@given(concepts(), concepts())
def test_disjunction_subsumes_disjuncts(a, b):
    r = Reasoner()
    disjunction = Or.of([a, b])
    assert r.subsumes(disjunction, a)
    assert r.subsumes(disjunction, b)


@settings(max_examples=40, deadline=None)
@given(concepts(), concepts())
def test_exists_monotone(a, b):
    # a ⊑ b implies ∃r.a ⊑ ∃r.b
    r = Reasoner()
    if r.subsumes(b, a):
        assert r.subsumes(some("r", b), some("r", a))
