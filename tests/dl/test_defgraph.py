"""Tests for definition graphs and structural meaning — the paper's §3.

These tests ARE the reproduction of the paper's central semantic
argument: the vehicle ontonomy (4) and the animal ontonomy (8) have
isomorphic definition structures, so a purely structural theory of
meaning identifies CAR with DOG; the repair (9)–(11) breaks the
isomorphism.
"""

import pytest

from repro.corpora.animals import (
    VEHICLE_TO_ANIMAL_NAMES,
    VEHICLE_TO_ANIMAL_ROLES,
    animal_tbox,
    repaired_animal_tbox,
)
from repro.corpora.vehicles import abstract_tbox, vehicle_tbox
from repro.dl import (
    DefGraphError,
    anonymized_meaning,
    definition_graph,
    graph_roles,
    meaning_isomorphic,
    meanings_identical,
    parse_tbox,
    rename_roles,
    structural_meaning,
)
from repro.graphs import are_isomorphic


class TestExtraction:
    def test_isa_edges(self):
        g = definition_graph(vehicle_tbox())
        assert g.has_edge("car", "motorvehicle", label=("isa",))
        assert g.has_edge("car", "roadvehicle", label=("isa",))

    def test_exists_edges_carry_role(self):
        g = definition_graph(vehicle_tbox())
        assert g.has_edge("car", "small", label=("some", "size"))
        assert g.has_edge("motorvehicle", "gasoline", label=("some", "uses"))

    def test_atleast_edge_carries_cardinality(self):
        g = definition_graph(vehicle_tbox())
        assert g.has_edge("roadvehicle", "wheel", label=("atleast", "has", 4))

    def test_all_names_are_nodes(self):
        g = definition_graph(vehicle_tbox())
        for name in ("car", "pickup", "motorvehicle", "roadvehicle",
                     "small", "big", "gasoline", "wheel"):
            assert name in g

    def test_non_atomic_lhs_rejected(self):
        tbox = parse_tbox("A & B [= C")
        with pytest.raises(DefGraphError):
            definition_graph(tbox)

    def test_complex_filler_rejected(self):
        tbox = parse_tbox("A [= some r.(B & C)")
        with pytest.raises(DefGraphError):
            definition_graph(tbox)

    def test_negated_conjunct_rejected(self):
        tbox = parse_tbox("A [= ~B")
        with pytest.raises(DefGraphError):
            definition_graph(tbox)

    def test_forall_edges(self):
        g = definition_graph(parse_tbox("A [= all r.B"))
        assert g.has_edge("A", "B", label=("all", "r"))

    def test_unqualified_atleast_targets_top(self):
        g = definition_graph(parse_tbox("A [= >= 2 r"))
        assert g.has_edge("A", "⊤", label=("atleast", "r", 2))


class TestStructuralMeaning:
    def test_meaning_of_car_reaches_the_whole_web(self):
        g = structural_meaning(vehicle_tbox(), "car")
        # pickup is NOT reachable from car: it shares parents but car's
        # definition never mentions it
        assert "pickup" not in g
        for name in ("car", "motorvehicle", "roadvehicle", "small",
                     "gasoline", "wheel"):
            assert name in g

    def test_unknown_name_rejected(self):
        with pytest.raises(DefGraphError):
            structural_meaning(vehicle_tbox(), "banana")

    def test_anonymized_meaning_has_no_labels(self):
        g = anonymized_meaning(vehicle_tbox(), "car")
        assert all(g.node_label(n) is None for n in g.nodes())

    def test_structure_5_is_exact_rename_of_structure_4(self):
        """The paper's move from (4) to (5): pure renaming, same graph."""
        concrete = definition_graph(vehicle_tbox())
        abstract = definition_graph(abstract_tbox())
        result = meaning_isomorphic(concrete, abstract)
        assert result is not None
        node_map, role_map = result
        assert node_map["car"] == "D"
        assert node_map["motorvehicle"] == "B"
        assert role_map == {"uses": "rho1", "has": "rho2", "size": "rho3"}


class TestTheReductio:
    """The paper's central result: CAR = DOG under structural meaning."""

    def test_car_dog_graphs_isomorphic(self):
        vehicles = definition_graph(vehicle_tbox())
        animals = definition_graph(animal_tbox())
        result = meaning_isomorphic(vehicles, animals)
        assert result is not None
        node_map, role_map = result
        assert node_map == VEHICLE_TO_ANIMAL_NAMES
        assert role_map == VEHICLE_TO_ANIMAL_ROLES

    def test_meanings_identical_car_dog(self):
        assert meanings_identical(vehicle_tbox(), "car", animal_tbox(), "dog")

    def test_meanings_identical_pickup_horse(self):
        assert meanings_identical(vehicle_tbox(), "pickup", animal_tbox(), "horse")

    def test_car_is_even_horse(self):
        # sharper than the paper states it: the meaning subgraph of car
        # cannot even tell small from big, so structurally CAR = HORSE too
        assert meanings_identical(vehicle_tbox(), "car", animal_tbox(), "horse")

    def test_whole_graph_identification_maps_car_to_dog(self):
        # on the FULL ontonomies the pickup/horse halves pin the mapping:
        # car goes to dog, not to horse
        result = meaning_isomorphic(
            definition_graph(vehicle_tbox()), definition_graph(animal_tbox())
        )
        assert result is not None
        assert result[0]["car"] == "dog"

    def test_repair_breaks_the_isomorphism(self):
        """Structures (9)-(11): adding quadruped ⊑ animal de-identifies."""
        vehicles = definition_graph(vehicle_tbox())
        repaired = definition_graph(repaired_animal_tbox())
        assert meaning_isomorphic(vehicles, repaired) is None
        assert not meanings_identical(
            vehicle_tbox(), "car", repaired_animal_tbox(), "dog"
        )

    def test_within_tbox_car_differs_from_pickup(self):
        # even inside one ontonomy, car and pickup have isomorphic-shaped
        # definitions but are distinguished by their shared neighborhood:
        # the meaning subgraphs ARE isomorphic (small↔big swap)
        assert meanings_identical(vehicle_tbox(), "car", vehicle_tbox(), "pickup")


class TestRoleRenaming:
    def test_rename_roles(self):
        g = definition_graph(vehicle_tbox())
        renamed = rename_roles(g, {"uses": "ingests", "has": "has"})
        assert renamed.has_edge("motorvehicle", "gasoline", label=("some", "ingests"))
        assert renamed.has_edge("roadvehicle", "wheel", label=("atleast", "has", 4))

    def test_graph_roles(self):
        g = definition_graph(vehicle_tbox())
        assert graph_roles(g) == frozenset({"size", "uses", "has"})

    def test_role_count_mismatch_fails_fast(self):
        g1 = definition_graph(parse_tbox("A [= some r.B"))
        g2 = definition_graph(parse_tbox("A [= B"))
        assert meaning_isomorphic(g1, g2) is None

    def test_isomorphism_requires_matching_cardinalities(self):
        g1 = definition_graph(parse_tbox("A [= >= 4 r.B"))
        g2 = definition_graph(parse_tbox("A [= >= 3 r.B"))
        assert meaning_isomorphic(g1, g2) is None

    def test_isa_edges_never_map_to_role_edges(self):
        g1 = definition_graph(parse_tbox("A [= B"))
        g2 = definition_graph(parse_tbox("A [= some r.B"))
        assert meaning_isomorphic(g1, g2) is None
