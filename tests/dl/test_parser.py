"""Unit tests for the DL text syntax."""

import pytest

from repro.dl import (
    BOTTOM,
    TOP,
    And,
    Atomic,
    Equivalence,
    Not,
    Or,
    ParseError,
    Subsumption,
    at_least,
    at_most,
    only,
    parse_axiom,
    parse_concept,
    parse_tbox,
    some,
)

A, B = Atomic("A"), Atomic("B")


class TestConcepts:
    def test_atomic(self):
        assert parse_concept("car") == Atomic("car")

    def test_top_bottom(self):
        assert parse_concept("Top") is TOP
        assert parse_concept("Bottom") is BOTTOM

    def test_conjunction(self):
        assert parse_concept("A & B") == And.of([A, B])

    def test_disjunction_precedence(self):
        # & binds tighter than |
        c = parse_concept("A & B | A")
        assert c == Or.of([And.of([A, B]), A])

    def test_parentheses(self):
        c = parse_concept("A & (B | A)")
        assert c == And.of([A, Or.of([B, A])])

    def test_negation(self):
        assert parse_concept("~A") == Not(A)
        assert parse_concept("~~A") == Not(Not(A))

    def test_exists_forall(self):
        assert parse_concept("some size.small") == some("size", Atomic("small"))
        assert parse_concept("all has.wheel") == only("has", Atomic("wheel"))

    def test_quantifier_binds_tightly(self):
        c = parse_concept("some r.A & B")
        assert c == And.of([some("r", A), B])

    def test_number_restrictions(self):
        assert parse_concept(">= 4 has.wheel") == at_least(4, "has", Atomic("wheel"))
        assert parse_concept("<= 2 has") == at_most(2, "has")
        assert parse_concept(">= 1 r") == at_least(1, "r")

    def test_nested_quantifiers(self):
        c = parse_concept("some r.(some s.A)")
        assert c == some("r", some("s", A))

    def test_hyphenated_names(self):
        assert parse_concept("road-vehicle") == Atomic("road-vehicle")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_concept("A B")

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            parse_concept("A ⊓ B")

    def test_missing_filler_rejected(self):
        with pytest.raises(ParseError):
            parse_concept("some r.")

    def test_empty_input_rejected(self):
        with pytest.raises(ParseError):
            parse_concept("")


class TestAxiomsAndTBoxes:
    def test_subsumption(self):
        axiom = parse_axiom("car [= motorvehicle")
        assert axiom == Subsumption(Atomic("car"), Atomic("motorvehicle"))

    def test_equivalence(self):
        axiom = parse_axiom("car = motorvehicle & some size.small")
        assert isinstance(axiom, Equivalence)

    def test_missing_connective_rejected(self):
        with pytest.raises(ParseError):
            parse_axiom("car motorvehicle")

    def test_tbox_parses_paper_structure_4(self):
        tbox = parse_tbox(
            """
            # structure (4)
            car [= motorvehicle & roadvehicle & some size.small
            pickup [= motorvehicle & roadvehicle & some size.big
            motorvehicle [= some uses.gasoline
            roadvehicle [= >= 4 has.wheel
            """
        )
        assert len(tbox) == 4
        assert tbox.is_definitorial()
        assert "car" in tbox.defined_names()
        assert tbox.role_names() == frozenset({"size", "uses", "has"})

    def test_tbox_blank_lines_and_comments(self):
        tbox = parse_tbox("\n# only a comment\n\nA [= B\n")
        assert len(tbox) == 1

    def test_tbox_error_reports_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_tbox("A [= B\nC [= &")

    def test_round_trip_pretty(self):
        text = "car [= motorvehicle & some size.small"
        tbox = parse_tbox(text)
        assert tbox.pretty() == "car ⊑ motorvehicle ⊓ ∃size.small"


class TestSerialization:
    def test_round_trip_paper_structure(self):
        from repro.corpora.vehicles import vehicle_tbox
        from repro.dl import parse_tbox, tbox_to_text

        tbox = vehicle_tbox()
        again = parse_tbox(tbox_to_text(tbox))
        assert again.pretty() == tbox.pretty()

    def test_to_text_forms(self):
        from repro.dl import to_text

        assert to_text(parse_concept("A & (B | C)")) == "A & (B | C)"
        assert to_text(parse_concept("~(A & B)")) == "~(A & B)"
        assert to_text(parse_concept(">= 4 has.wheel")) == ">= 4 has.wheel"
        assert to_text(parse_concept("<= 2 has")) == "<= 2 has"
        assert to_text(parse_concept("some r.(A & B)")) == "some r.(A & B)"
        assert to_text(parse_concept("Top")) == "Top"


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import TOP, at_least as _at_least, to_text as _to_text

_names = st.sampled_from(["A", "B", "C"])
_roles = st.sampled_from(["r", "s"])


@st.composite
def _concepts(draw, depth=3):
    from repro.dl import And as _And, Or as _Or

    if depth == 0:
        return Atomic(draw(_names))
    kind = draw(st.integers(min_value=0, max_value=7))
    if kind == 0:
        return Atomic(draw(_names))
    if kind == 1:
        return TOP
    if kind == 2:
        return Not(draw(_concepts(depth=depth - 1)))
    if kind == 3:
        return _And.of([draw(_concepts(depth=depth - 1)), draw(_concepts(depth=depth - 1))])
    if kind == 4:
        return _Or.of([draw(_concepts(depth=depth - 1)), draw(_concepts(depth=depth - 1))])
    if kind == 5:
        return some(draw(_roles), draw(_concepts(depth=depth - 1)))
    if kind == 6:
        return only(draw(_roles), draw(_concepts(depth=depth - 1)))
    return _at_least(draw(st.integers(0, 4)), draw(_roles), draw(_concepts(depth=depth - 1)))


@settings(max_examples=100, deadline=None)
@given(_concepts())
def test_parse_inverts_to_text(concept):
    assert parse_concept(_to_text(concept)) == concept
