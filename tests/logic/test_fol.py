"""Unit tests for finite-model first-order logic."""

import pytest

from repro.logic import (
    Atom,
    Eq,
    Exists,
    FAnd,
    FImplies,
    FNot,
    FolError,
    FOr,
    Forall,
    Structure,
    TApp,
    TConst,
    TVar,
    Vocabulary,
    all_structures,
    fol_and,
    has_finite_model,
)

x, y = TVar("x"), TVar("y")
a, b = TConst("a"), TConst("b")


def blocks_world() -> Structure:
    """The paper's block-world from eqs. (1)-(3): a above b and d, b above d."""
    return Structure(
        ["a", "b", "c", "d"],
        constants={"a": "a", "b": "b", "c": "c", "d": "d"},
        relations={"above": [("a", "b"), ("a", "d"), ("b", "d")]},
    )


class TestTermsAndFormulas:
    def test_free_variables_atom(self):
        f = Atom("above", (x, a))
        assert f.free_variables() == frozenset({"x"})

    def test_free_variables_quantified(self):
        f = Forall("x", Atom("above", (x, y)))
        assert f.free_variables() == frozenset({"y"})

    def test_str_round_trip_readable(self):
        f = Exists("x", FAnd(Atom("P", (x,)), FNot(Atom("Q", (x,)))))
        assert str(f) == "∃x.(P(x) ∧ ¬Q(x))"

    def test_fol_and_requires_nonempty(self):
        with pytest.raises(FolError):
            fol_and([])

    def test_function_term_free_variables(self):
        t = TApp("f", (x, a))
        assert t.free_variables() == frozenset({"x"})


class TestVocabulary:
    def test_role_overlap_rejected(self):
        with pytest.raises(FolError):
            Vocabulary(constants=frozenset({"a"}), predicates={"a": 1})

    def test_validate_accepts_wellformed(self):
        v = Vocabulary(constants=frozenset({"a"}), predicates={"above": 2})
        v.validate(Atom("above", (x, a)))  # no raise

    def test_validate_rejects_unknown_predicate(self):
        v = Vocabulary(constants=frozenset({"a"}), predicates={})
        with pytest.raises(FolError):
            v.validate(Atom("above", (x, a)))

    def test_validate_rejects_bad_arity(self):
        v = Vocabulary(constants=frozenset(), predicates={"P": 1})
        with pytest.raises(FolError):
            v.validate(Atom("P", (x, y)))

    def test_validate_rejects_unknown_constant(self):
        v = Vocabulary(constants=frozenset(), predicates={"P": 1})
        with pytest.raises(FolError):
            v.validate(Atom("P", (a,)))

    def test_validate_function_arity(self):
        v = Vocabulary(constants=frozenset({"a"}), functions={"f": 2}, predicates={"P": 1})
        with pytest.raises(FolError):
            v.validate(Atom("P", (TApp("f", (a,)),)))


class TestSatisfaction:
    def test_atomic_ground(self):
        m = blocks_world()
        assert m.satisfies(Atom("above", (a, b)))
        assert not m.satisfies(Atom("above", (b, a)))

    def test_negation_and_connectives(self):
        m = blocks_world()
        assert m.satisfies(FNot(Atom("above", (b, a))))
        assert m.satisfies(FAnd(Atom("above", (a, b)), Atom("above", (b, TConst("d")))))
        assert m.satisfies(FOr(Atom("above", (b, a)), Atom("above", (a, b))))
        assert m.satisfies(FImplies(Atom("above", (b, a)), Atom("above", (TConst("c"), a))))

    def test_equality(self):
        m = blocks_world()
        assert m.satisfies(Eq(a, a))
        assert not m.satisfies(Eq(a, b))

    def test_existential(self):
        m = blocks_world()
        assert m.satisfies(Exists("x", Atom("above", (x, b))))
        assert not m.satisfies(Exists("x", Atom("above", (x, a))))

    def test_universal(self):
        m = blocks_world()
        # everything a is above, is above-able: ∀x. above(a,x) → ¬above(x,a)
        f = Forall("x", FImplies(Atom("above", (a, x)), FNot(Atom("above", (x, a)))))
        assert m.satisfies(f)

    def test_nested_quantifiers_transitivity_fails(self):
        m = blocks_world()
        trans = Forall(
            "x",
            Forall(
                "y",
                Forall(
                    "z",
                    FImplies(
                        FAnd(Atom("above", (TVar("x"), TVar("y"))), Atom("above", (TVar("y"), TVar("z")))),
                        Atom("above", (TVar("x"), TVar("z"))),
                    ),
                ),
            ),
        )
        assert m.satisfies(trans)  # a>b, b>d, a>d present: holds

    def test_unbound_variable_raises(self):
        m = blocks_world()
        with pytest.raises(FolError):
            m.satisfies(Atom("above", (x, b)))

    def test_function_interpretation(self):
        m = Structure(
            [0, 1],
            constants={"a": 0},
            functions={"s": {(0,): 1, (1,): 0}},
            relations={"Z": [(0,)]},
        )
        assert m.satisfies(Atom("Z", (TConst("a"),)))
        assert not m.satisfies(Atom("Z", (TApp("s", (TConst("a"),)),)))

    def test_empty_domain_rejected(self):
        with pytest.raises(FolError):
            Structure([])

    def test_relation_outside_domain_rejected(self):
        with pytest.raises(FolError):
            Structure([1], relations={"P": [(2,)]})


class TestModelSearch:
    def test_enumeration_counts(self):
        v = Vocabulary(constants=frozenset(), predicates={"P": 1})
        structures = list(all_structures(["d0"], v))
        # one domain element, unary predicate: 2 subsets
        assert len(structures) == 2

    def test_enumeration_with_constants(self):
        v = Vocabulary(constants=frozenset({"a"}), predicates={"P": 1})
        structures = list(all_structures(["d0", "d1"], v))
        # 2 constant choices x 4 subsets
        assert len(structures) == 8

    def test_has_finite_model_satisfiable(self):
        v = Vocabulary(constants=frozenset({"a"}), predicates={"P": 1})
        m = has_finite_model([Atom("P", (a,))], v)
        assert m is not None
        assert m.satisfies(Atom("P", (a,)))

    def test_has_finite_model_contradiction(self):
        v = Vocabulary(constants=frozenset({"a"}), predicates={"P": 1})
        f = FAnd(Atom("P", (a,)), FNot(Atom("P", (a,))))
        assert has_finite_model([f], v) is None

    def test_has_finite_model_needs_two_elements(self):
        v = Vocabulary(constants=frozenset({"a", "b"}), predicates={"P": 1})
        fs = [FNot(Eq(a, b))]
        m = has_finite_model(fs, v, max_domain_size=2)
        assert m is not None
        assert len(m.domain) == 2

    def test_functions_not_enumerable(self):
        v = Vocabulary(constants=frozenset(), functions={"f": 1}, predicates={})
        with pytest.raises(FolError):
            list(all_structures(["d0"], v))
