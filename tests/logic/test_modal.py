"""Unit and property tests for modal logic and correspondence theory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import (
    AXIOM_4,
    AXIOM_5,
    AXIOM_B,
    AXIOM_D,
    AXIOM_T,
    Box,
    Diamond,
    KripkeFrame,
    MImplies,
    MNot,
    MVar,
    ModalError,
    valid_on_frame,
)

p, q = MVar("p"), MVar("q")


def chain_frame() -> KripkeFrame:
    """w0 → w1 → w2, p true only at w1."""
    return KripkeFrame(
        ["w0", "w1", "w2"],
        [("w0", "w1"), ("w1", "w2")],
        {"w1": {"p"}},
    )


class TestForcing:
    def test_variables(self):
        f = chain_frame()
        assert f.forces("w1", p)
        assert not f.forces("w0", p)

    def test_connectives(self):
        f = chain_frame()
        assert f.forces("w0", MNot(p))
        assert f.forces("w1", p | q)
        assert f.forces("w0", p >> q)  # antecedent false

    def test_box_diamond(self):
        f = chain_frame()
        assert f.forces("w0", Box(p))       # all successors (w1) satisfy p
        assert f.forces("w0", Diamond(p))
        assert not f.forces("w1", Diamond(p))  # w2 has no p
        assert f.forces("w2", Box(p))       # vacuously: no successors
        assert not f.forces("w2", Diamond(p))

    def test_nested_modalities(self):
        f = chain_frame()
        # at w0: □◇... w1's successors = {w2}, no p: ◇p false at w1
        assert not f.forces("w0", Box(Diamond(p)))

    def test_unknown_world_rejected(self):
        with pytest.raises(ModalError):
            chain_frame().forces("ghost", p)

    def test_bad_frame_rejected(self):
        with pytest.raises(ModalError):
            KripkeFrame([], [])
        with pytest.raises(ModalError):
            KripkeFrame(["w"], [("w", "ghost")])


class TestFrameProperties:
    def test_reflexive(self):
        f = KripkeFrame(["a", "b"], [("a", "a"), ("b", "b"), ("a", "b")])
        assert f.is_reflexive()
        assert not chain_frame().is_reflexive()

    def test_transitive(self):
        f = KripkeFrame(["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")])
        assert f.is_transitive()
        assert not chain_frame().is_transitive()

    def test_symmetric(self):
        f = KripkeFrame(["a", "b"], [("a", "b"), ("b", "a")])
        assert f.is_symmetric()
        assert not chain_frame().is_symmetric()

    def test_serial(self):
        f = KripkeFrame(["a", "b"], [("a", "b"), ("b", "a")])
        assert f.is_serial()
        assert not chain_frame().is_serial()

    def test_euclidean(self):
        f = KripkeFrame(["a", "b"], [("a", "b"), ("b", "b")])
        assert f.is_euclidean()


class TestCorrespondence:
    """The classical results, verified on concrete finite frames."""

    def test_t_valid_on_reflexive(self):
        f = KripkeFrame(["a", "b"], [("a", "a"), ("b", "b"), ("a", "b")])
        assert valid_on_frame(f, AXIOM_T, ["p"])

    def test_t_fails_on_irreflexive(self):
        assert not valid_on_frame(chain_frame(), AXIOM_T, ["p"])

    def test_4_valid_on_transitive(self):
        f = KripkeFrame(["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")])
        assert valid_on_frame(f, AXIOM_4, ["p"])

    def test_4_fails_on_nontransitive(self):
        assert not valid_on_frame(chain_frame(), AXIOM_4, ["p"])

    def test_b_valid_on_symmetric(self):
        f = KripkeFrame(["a", "b"], [("a", "b"), ("b", "a")])
        assert valid_on_frame(f, AXIOM_B, ["p"])

    def test_d_valid_on_serial(self):
        f = KripkeFrame(["a", "b"], [("a", "b"), ("b", "a")])
        assert valid_on_frame(f, AXIOM_D, ["p"])

    def test_d_fails_on_nonserial(self):
        assert not valid_on_frame(chain_frame(), AXIOM_D, ["p"])

    def test_5_valid_on_equivalence_frame(self):
        f = KripkeFrame(
            ["a", "b"],
            [("a", "a"), ("b", "b"), ("a", "b"), ("b", "a")],
        )
        assert valid_on_frame(f, AXIOM_5, ["p"])


# ---------------------------------------------------------------------- #
# property-based: correspondence on random frames
# ---------------------------------------------------------------------- #

WORLDS = ["u", "v", "w"]


@st.composite
def frames(draw):
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(WORLDS), st.sampled_from(WORLDS)),
            max_size=9,
        )
    )
    return KripkeFrame(WORLDS, pairs)


@settings(max_examples=40, deadline=None)
@given(frames())
def test_reflexive_frames_validate_t(frame):
    if frame.is_reflexive():
        assert valid_on_frame(frame, AXIOM_T, ["p"])


@settings(max_examples=40, deadline=None)
@given(frames())
def test_transitive_frames_validate_4(frame):
    if frame.is_transitive():
        assert valid_on_frame(frame, AXIOM_4, ["p"])


@settings(max_examples=40, deadline=None)
@given(frames())
def test_serial_frames_validate_d(frame):
    if frame.is_serial():
        assert valid_on_frame(frame, AXIOM_D, ["p"])


@settings(max_examples=30, deadline=None)
@given(frames())
def test_box_distributes_over_implication_K(frame):
    # K is valid on EVERY frame: □(p→q) → (□p → □q)
    k = MImplies(Box(MImplies(p, q)), MImplies(Box(p), Box(q)))
    assert valid_on_frame(frame, k, ["p", "q"])
