"""Test package."""
