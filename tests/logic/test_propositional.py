"""Unit and property tests for propositional logic and DPLL."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import (
    FALSE,
    TRUE,
    And,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    conj,
    disj,
    dpll,
    entails,
    equivalent,
    is_satisfiable,
    is_tautology,
    models,
    to_cnf,
    to_nnf,
    truth_table,
)

p, q, r = Var("p"), Var("q"), Var("r")


class TestEvaluation:
    def test_var(self):
        assert p.evaluate({"p": True})
        assert not p.evaluate({"p": False})

    def test_connectives(self):
        a = {"p": True, "q": False}
        assert not And(p, q).evaluate(a)
        assert Or(p, q).evaluate(a)
        assert Not(q).evaluate(a)
        assert not Implies(p, q).evaluate(a)
        assert Implies(q, p).evaluate(a)
        assert not Iff(p, q).evaluate(a)

    def test_constants(self):
        assert TRUE.evaluate({})
        assert not FALSE.evaluate({})

    def test_operator_sugar(self):
        a = {"p": True, "q": False}
        assert (p & ~q).evaluate(a)
        assert (p | q).evaluate(a)
        assert (q >> p).evaluate(a)

    def test_missing_variable_raises(self):
        import pytest

        with pytest.raises(KeyError):
            p.evaluate({})

    def test_variables(self):
        assert Implies(And(p, q), r).variables() == frozenset({"p", "q", "r"})

    def test_conj_disj_empty(self):
        assert conj([]) is TRUE
        assert disj([]) is FALSE

    def test_conj_combines(self):
        f = conj([p, q, r])
        assert f.evaluate({"p": True, "q": True, "r": True})
        assert not f.evaluate({"p": True, "q": False, "r": True})


class TestSemantics:
    def test_truth_table_size(self):
        assert len(truth_table(And(p, q))) == 4

    def test_models(self):
        ms = models(And(p, Not(q)))
        assert ms == [{"p": True, "q": False}]

    def test_tautologies(self):
        assert is_tautology(Or(p, Not(p)))
        assert is_tautology(Implies(And(p, q), p))
        assert is_tautology(Iff(p, p))
        assert not is_tautology(p)
        assert not is_tautology(Or(p, q))

    def test_satisfiability(self):
        assert is_satisfiable(p)
        assert is_satisfiable(And(p, q))
        assert not is_satisfiable(And(p, Not(p)))
        assert not is_satisfiable(FALSE)
        assert is_satisfiable(TRUE)

    def test_entails(self):
        assert entails([p, Implies(p, q)], q)  # modus ponens
        assert not entails([Or(p, q)], p)
        assert entails([And(p, q)], p)

    def test_equivalent(self):
        assert equivalent(Implies(p, q), Or(Not(p), q))
        assert equivalent(Not(And(p, q)), Or(Not(p), Not(q)))  # De Morgan
        assert not equivalent(p, q)


class TestNormalForms:
    def test_nnf_pushes_negation(self):
        f = Not(And(p, Or(q, Not(r))))
        nnf = to_nnf(f)
        assert str(nnf) == "(¬p ∨ (¬q ∧ r))"

    def test_nnf_eliminates_implication(self):
        nnf = to_nnf(Implies(p, q))
        assert "→" not in str(nnf)
        assert equivalent(nnf, Implies(p, q))

    def test_nnf_constants(self):
        assert to_nnf(Not(TRUE)) == FALSE
        assert to_nnf(Not(FALSE)) == TRUE

    def test_cnf_clauses(self):
        cnf = to_cnf(And(p, Or(q, r)))
        assert frozenset({("p", True)}) in cnf
        assert frozenset({("q", True), ("r", True)}) in cnf

    def test_cnf_drops_tautological_clauses(self):
        cnf = to_cnf(Or(p, Not(p)))
        assert cnf == frozenset()

    def test_cnf_of_contradiction_has_empty_clause_or_conflict(self):
        assert dpll(to_cnf(And(p, Not(p)))) is None


class TestDPLL:
    def test_dpll_finds_model(self):
        cnf = to_cnf(And(Or(p, q), Not(p)))
        model = dpll(cnf)
        assert model is not None
        assert model["q"] is True and model["p"] is False

    def test_dpll_unsat(self):
        f = And(And(Or(p, q), Or(Not(p), q)), And(Or(p, Not(q)), Or(Not(p), Not(q))))
        assert dpll(to_cnf(f)) is None

    def test_dpll_empty_cnf_is_sat(self):
        assert dpll(frozenset()) == {}


# ---------------------------------------------------------------------- #
# property-based
# ---------------------------------------------------------------------- #

names = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def formulas(draw, depth=3):
    if depth == 0:
        return Var(draw(names))
    kind = draw(st.integers(min_value=0, max_value=6))
    if kind == 0:
        return Var(draw(names))
    if kind == 1:
        return Not(draw(formulas(depth=depth - 1)))
    sub1 = draw(formulas(depth=depth - 1))
    sub2 = draw(formulas(depth=depth - 1))
    ctor = [And, Or, Implies, Iff, And][kind - 2]
    return ctor(sub1, sub2)


@settings(max_examples=80, deadline=None)
@given(formulas())
def test_nnf_preserves_truth(f):
    nnf = to_nnf(f)
    for assignment, value in truth_table(f):
        assert nnf.evaluate(assignment) == value


@settings(max_examples=80, deadline=None)
@given(formulas())
def test_dpll_agrees_with_truth_table(f):
    sat_by_table = len(models(f)) > 0
    assert is_satisfiable(f) == sat_by_table


@settings(max_examples=60, deadline=None)
@given(formulas())
def test_dpll_model_satisfies_formula(f):
    model = dpll(to_cnf(f))
    if model is not None:
        # complete the partial assignment with arbitrary values
        full = {name: model.get(name, False) for name in f.variables()}
        # the CNF conversion is equivalence-preserving, so the completed
        # model must satisfy the original formula
        assert f.evaluate(full)


@settings(max_examples=60, deadline=None)
@given(formulas())
def test_excluded_middle_is_tautology(f):
    assert is_tautology(Or(f, Not(f)))


@settings(max_examples=60, deadline=None)
@given(formulas(), formulas())
def test_entailment_reflects_implication_tautology(f, g):
    assert entails([f], g) == is_tautology(Implies(f, g))
