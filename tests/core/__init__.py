"""Test package."""
