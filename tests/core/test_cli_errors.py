"""Failure-injection tests for the CLI."""

import pytest

from repro.__main__ import main
from repro.dl import ParseError


class TestCLIFailures:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["check", str(tmp_path / "nope.tbox")])

    def test_parse_error_reports_line(self, tmp_path):
        path = tmp_path / "broken.tbox"
        path.write_text("A [= B\nC [= &&&\n", encoding="utf-8")
        with pytest.raises(ParseError, match="line 2"):
            main(["critique", str(path)])

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main(["dance"])

    def test_contrast_file_missing(self, tmp_path):
        good = tmp_path / "ok.tbox"
        good.write_text("A [= B\n", encoding="utf-8")
        with pytest.raises(FileNotFoundError):
            main(["critique", str(good), "--contrast", str(tmp_path / "gone.tbox")])

    def test_regress_on_undefined_term(self, tmp_path):
        good = tmp_path / "ok.tbox"
        good.write_text("A [= B\n", encoding="utf-8")
        with pytest.raises(ValueError):
            main(["critique", str(good), "--regress", "unicorn"])

    def test_empty_tbox_file_is_fine(self, tmp_path, capsys):
        path = tmp_path / "empty.tbox"
        path.write_text("# nothing here\n", encoding="utf-8")
        assert main(["check", str(path)]) == 0
        assert "coherent" in capsys.readouterr().out
