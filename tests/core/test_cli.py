"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main
from repro.corpora.animals import ANIMAL_TEXT
from repro.corpora.vehicles import VEHICLE_TEXT


@pytest.fixture
def vehicle_file(tmp_path):
    path = tmp_path / "vehicles.tbox"
    path.write_text(VEHICLE_TEXT, encoding="utf-8")
    return str(path)


@pytest.fixture
def animal_file(tmp_path):
    path = tmp_path / "animals.tbox"
    path.write_text(ANIMAL_TEXT, encoding="utf-8")
    return str(path)


class TestCritiqueCommand:
    def test_basic_run(self, vehicle_file, capsys):
        code = main(["critique", vehicle_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "Critique of vehicles" in out
        assert "I. Syntactic" in out

    def test_contrast_finds_car_dog(self, vehicle_file, animal_file, capsys):
        main(["critique", vehicle_file, "--contrast", animal_file])
        out = capsys.readouterr().out
        assert "dog" in out

    def test_regress(self, vehicle_file, capsys):
        main(["critique", vehicle_file, "--regress", "car"])
        out = capsys.readouterr().out
        assert "differentiation regress" in out or "never escaped" in out

    def test_strict_exit_code(self, vehicle_file):
        assert main(["critique", vehicle_file, "--strict"]) == 1

    def test_artifact_only_drops_discipline_findings(self, vehicle_file, capsys):
        main(["critique", vehicle_file, "--artifact-only"])
        out = capsys.readouterr().out
        assert "Guarino" not in out


class TestClassifyCommand:
    def test_hierarchy_printed(self, vehicle_file, capsys):
        assert main(["classify", vehicle_file]) == 0
        out = capsys.readouterr().out
        assert "motorvehicle" in out
        assert out.startswith("⊤")


class TestStatsFlag:
    def test_critique_stats_prints_snapshot(self, vehicle_file, capsys):
        main(["critique", vehicle_file, "--stats"])
        out = capsys.readouterr().out
        assert "observability snapshot:" in out
        # vehicles is Horn/EL, so classification runs by saturation and
        # the tableau never opens
        assert '"saturation.rules_fired"' in out
        assert '"intern.table_size"' in out
        assert "phase timings:" in out

    def test_classify_stats_prints_snapshot(self, vehicle_file, capsys):
        assert main(["classify", vehicle_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("⊤")
        assert "observability snapshot:" in out
        assert '"saturation.rules_fired"' in out

    def test_stats_snapshot_is_valid_json(self, vehicle_file, capsys):
        import json

        main(["classify", vehicle_file, "--stats"])
        out = capsys.readouterr().out
        payload = out.split("observability snapshot:", 1)[1]
        snapshot = json.loads(payload)
        assert snapshot["counters"]["hierarchy.classifications"] == 1

    def test_without_stats_no_snapshot(self, vehicle_file, capsys):
        main(["classify", vehicle_file])
        assert "observability snapshot:" not in capsys.readouterr().out

    def test_profile_prints_timer_and_counter_tables(self, vehicle_file, capsys):
        assert main(["classify", vehicle_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "timers by total time):" in out
        assert "counters by value):" in out
        # counter rows are "name value" pairs, largest first
        counter_section = out.split("counters by value):", 1)[1]
        rows = [line.split() for line in counter_section.strip().splitlines()[1:]]
        values = [int(row[1]) for row in rows]
        assert values == sorted(values, reverse=True)
        assert any(row[0] == "saturation.rules_fired" for row in rows)

    def test_stats_does_not_leak_recorder(self, vehicle_file, capsys):
        from repro.obs import NULL, get_recorder

        main(["critique", vehicle_file, "--stats"])
        capsys.readouterr()
        assert get_recorder() is NULL


class TestBenchCommand:
    def test_bench_writes_all_files(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_B8_SCALE", "tiny")
        monkeypatch.setenv("REPRO_B9_SCALE", "tiny")
        monkeypatch.setenv("REPRO_B10_SCALE", "tiny")
        monkeypatch.setenv("REPRO_B11_SCALE", "tiny")
        monkeypatch.setenv("REPRO_B12_SCALE", "tiny")
        monkeypatch.setenv("REPRO_B13_SCALE", "tiny")
        assert main(["bench", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        written = sorted(p.name for p in tmp_path.glob("BENCH_*.json"))
        assert written == sorted(f"BENCH_B{i}.json" for i in range(1, 14))
        assert "non-zero counters" in out

    def test_bench_only_subset(self, tmp_path, capsys):
        assert main(["bench", "--out", str(tmp_path), "--only", "B4"]) == 0
        assert [p.name for p in tmp_path.glob("BENCH_*.json")] == ["BENCH_B4.json"]
        assert "B4: wrote" in capsys.readouterr().out

    def test_bench_output_validates(self, tmp_path, capsys):
        import json

        from repro.bench import validate_record

        main(["bench", "--out", str(tmp_path), "--only", "B1"])
        capsys.readouterr()
        record = json.loads((tmp_path / "BENCH_B1.json").read_text(encoding="utf-8"))
        assert validate_record(record) == []
        assert record["counters"]["tableau.expansions"] > 0

    def test_bench_rejects_unknown_id(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "--out", str(tmp_path), "--only", "B99"])


class TestCheckCommand:
    def test_coherent(self, vehicle_file, capsys):
        assert main(["check", vehicle_file]) == 0
        assert "coherent" in capsys.readouterr().out

    def test_incoherent(self, tmp_path, capsys):
        path = tmp_path / "bad.tbox"
        path.write_text("A [= B\nA [= ~B\n", encoding="utf-8")
        assert main(["check", str(path)]) == 1
        assert "INCOHERENT" in capsys.readouterr().out
