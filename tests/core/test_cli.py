"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main
from repro.corpora.animals import ANIMAL_TEXT
from repro.corpora.vehicles import VEHICLE_TEXT


@pytest.fixture
def vehicle_file(tmp_path):
    path = tmp_path / "vehicles.tbox"
    path.write_text(VEHICLE_TEXT, encoding="utf-8")
    return str(path)


@pytest.fixture
def animal_file(tmp_path):
    path = tmp_path / "animals.tbox"
    path.write_text(ANIMAL_TEXT, encoding="utf-8")
    return str(path)


class TestCritiqueCommand:
    def test_basic_run(self, vehicle_file, capsys):
        code = main(["critique", vehicle_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "Critique of vehicles" in out
        assert "I. Syntactic" in out

    def test_contrast_finds_car_dog(self, vehicle_file, animal_file, capsys):
        main(["critique", vehicle_file, "--contrast", animal_file])
        out = capsys.readouterr().out
        assert "dog" in out

    def test_regress(self, vehicle_file, capsys):
        main(["critique", vehicle_file, "--regress", "car"])
        out = capsys.readouterr().out
        assert "differentiation regress" in out or "never escaped" in out

    def test_strict_exit_code(self, vehicle_file):
        assert main(["critique", vehicle_file, "--strict"]) == 1

    def test_artifact_only_drops_discipline_findings(self, vehicle_file, capsys):
        main(["critique", vehicle_file, "--artifact-only"])
        out = capsys.readouterr().out
        assert "Guarino" not in out


class TestClassifyCommand:
    def test_hierarchy_printed(self, vehicle_file, capsys):
        assert main(["classify", vehicle_file]) == 0
        out = capsys.readouterr().out
        assert "motorvehicle" in out
        assert out.startswith("⊤")


class TestCheckCommand:
    def test_coherent(self, vehicle_file, capsys):
        assert main(["check", vehicle_file]) == 0
        assert "coherent" in capsys.readouterr().out

    def test_incoherent(self, tmp_path, capsys):
        path = tmp_path / "bad.tbox"
        path.write_text("A [= B\nA [= ~B\n", encoding="utf-8")
        assert main(["check", str(path)]) == 1
        assert "INCOHERENT" in capsys.readouterr().out
