"""Unit tests for the pragmatic analysis and the full critique engine."""

import pytest

from repro.core import (
    CritiqueReport,
    Finding,
    Section,
    Severity,
    critique,
    imposition_loss,
    imposition_report,
    pragmatic_profile,
)
from repro.corpora import (
    age_lexicalizations,
    animal_tbox,
    english_door,
    italian_door,
    vehicle_tbox,
)
from repro.dl import parse_axiom, parse_tbox


class TestPragmaticProfile:
    def test_vehicle_profile(self):
        profile = pragmatic_profile(vehicle_tbox())
        assert profile.axiom_count == 4
        # every vehicle axiom mentions a role (size/uses/has)
        assert profile.relational_axioms == 4
        assert profile.taxonomy_axioms == 0
        assert not profile.hierarchy_is_tree  # car under two parents

    def test_pure_taxonomy_profile(self):
        tbox = parse_tbox("A [= B\nB [= C\nD [= C")
        profile = pragmatic_profile(tbox)
        assert profile.taxonomy_axioms == 3
        assert profile.taxonomy_fraction == 1.0
        assert profile.hierarchy_is_tree

    def test_orthodoxy(self):
        single = parse_tbox("A [= B")
        multi = parse_tbox("A [= B\nA [= C")
        assert pragmatic_profile(single).orthodoxy == 1.0
        assert pragmatic_profile(multi).orthodoxy == 0.0

    def test_empty_tbox(self):
        profile = pragmatic_profile(parse_tbox(""))
        assert profile.axiom_count == 0
        assert profile.taxonomy_fraction == 0.0


class TestImposition:
    def test_loss_is_zero_on_self(self):
        assert imposition_loss(english_door(), english_door()) == 0.0

    def test_english_erases_italian_distinction(self):
        # Italian separates round_knob (pomello) from twist_grip (maniglia);
        # English merges them under doorknob
        loss = imposition_loss(english_door(), italian_door())
        assert loss > 0.0

    def test_loss_is_directional(self):
        report = imposition_report([english_door(), italian_door()])
        table = {(a, b): l for a, b, l in report.losses}
        # both directions lose something here, but symmetry is not guaranteed
        assert table[("English", "Italian")] >= 0
        assert table[("Italian", "English")] >= 0

    def test_age_imposition_worst_pair(self):
        report = imposition_report(age_lexicalizations())
        imposed, community, loss = report.worst()
        assert loss > 0.0
        # Spanish draws the most distinctions (5 terms): imposing a
        # 3-term system on it must lose the most
        assert community == "Spanish"

    def test_mismatched_fields_rejected(self):
        with pytest.raises(ValueError):
            imposition_loss(english_door(), age_lexicalizations()[0])


class TestEngine:
    def test_full_critique_sections_populated(self):
        report = critique(
            vehicle_tbox(),
            label="vehicles",
            contrast_tboxes=[("animals", animal_tbox())],
            lexicalizations=age_lexicalizations(),
            regress_term="car",
        )
        assert report.section(Section.SYNTACTIC)
        assert report.section(Section.SEMANTIC)
        assert report.section(Section.PRAGMATIC)
        assert report.worst is Severity.DEFECT

    def test_car_dog_finding_present(self):
        report = critique(
            vehicle_tbox(),
            contrast_tboxes=[("animals", animal_tbox())],
        )
        cross = report.by_code("meaning-collision-cross")
        assert any("dog" in f.title for f in cross)

    def test_sibling_finding_always_present(self):
        report = critique(parse_tbox("A [= B"))
        assert report.by_code("confusable-sibling")

    def test_regress_finding(self):
        report = critique(
            animal_tbox(),
            regress_term="dog",
            regress_repairs=[[parse_axiom("quadruped [= animal")]],
        )
        (finding,) = report.by_code("differentiation-regress")
        assert "never escaped" in finding.title
        assert finding.severity is Severity.DEFECT

    def test_discipline_findings_optional(self):
        with_ = critique(vehicle_tbox())
        without = critique(vehicle_tbox(), include_discipline_findings=False)
        assert len(without.findings) < len(with_.findings)
        assert not without.by_code("guarino-circularity")

    def test_render_is_sectioned_text(self):
        text = critique(vehicle_tbox(), label="vehicles").render()
        assert text.startswith("Critique of vehicles")
        assert "I. Syntactic" in text
        assert "II. Semantic" in text
        assert "III. Pragmatic" in text

    def test_report_accessors(self):
        report = CritiqueReport("x")
        finding = Finding(Section.SEMANTIC, "c", Severity.CAUTION, "t", "d")
        report.add(finding)
        assert report.by_code("c") == [finding]
        assert report.defects() == []
        assert report.worst is Severity.CAUTION
        assert "(no findings)" in CritiqueReport("empty").render()


class TestRigidityIntegration:
    def test_backbone_violation_reported(self):
        from repro.dl import parse_tbox
        from repro.intensional import Rigidity

        tbox = parse_tbox("person [= student")  # the classic error
        profile = {"person": Rigidity.RIGID, "student": Rigidity.ANTI_RIGID}
        report = critique(tbox, rigidity=profile, include_discipline_findings=False)
        (finding,) = report.by_code("rigidity-violation")
        assert finding.severity is Severity.DEFECT
        assert "cannot subsume" in finding.details

    def test_clean_taxonomy_has_no_rigidity_finding(self):
        from repro.dl import parse_tbox
        from repro.intensional import Rigidity

        tbox = parse_tbox("student [= person")
        profile = {"person": Rigidity.RIGID, "student": Rigidity.ANTI_RIGID}
        report = critique(tbox, rigidity=profile, include_discipline_findings=False)
        assert report.by_code("rigidity-violation") == []

    def test_names_outside_profile_ignored(self):
        from repro.dl import parse_tbox
        from repro.intensional import Rigidity

        tbox = parse_tbox("person [= mystery")
        profile = {"person": Rigidity.RIGID}
        report = critique(tbox, rigidity=profile, include_discipline_findings=False)
        assert report.by_code("rigidity-violation") == []


class TestCritiqueFields:
    def test_door_languages(self):
        from repro.core import critique_fields
        from repro.corpora import english_door, italian_door

        report = critique_fields([english_door(), italian_door()], label="doors")
        assert report.by_code("partial-overlap")
        (loss,) = report.by_code("translation-loss")
        assert loss.severity is Severity.DEFECT
        assert report.by_code("imposition-loss")
        assert report.by_code("interlingua-cost")
        assert "doors" in report.render()

    def test_aligned_languages_clean(self):
        from repro.core import critique_fields
        from repro.corpora import english_door

        clone = english_door()
        other = english_door()
        # same carving under a different banner: no defects
        from repro.semiotics import Lexicalization

        renamed = Lexicalization(
            "Mirror", clone.field,
            {f"m_{t}": clone.extents[t] for t in clone.terms},
        )
        report = critique_fields([clone, renamed])
        assert not report.by_code("partial-overlap")
        (loss,) = report.by_code("translation-loss")
        assert loss.severity is Severity.INFO

    def test_age_languages_full_report(self):
        from repro.core import critique_fields
        from repro.corpora import age_lexicalizations

        report = critique_fields(age_lexicalizations(), label="old age")
        (cost,) = report.by_code("interlingua-cost")
        assert cost.severity is Severity.CAUTION  # overlapping registers erased
        assert report.worst is Severity.DEFECT

    def test_needs_two_languages(self):
        from repro.core import critique_fields
        from repro.corpora import english_door

        with pytest.raises(ValueError):
            critique_fields([english_door()])
