"""The CLI exit-code contract: 0 ok / 1 failure / 2 usage / 3 partial.

Scripts and CI depend on these four values; this file pins each one to
an observable behaviour and pins the ``--help`` epilog that documents
them (the table in README.md mirrors :data:`repro.__main__.EXIT_CODES`).
"""

import pytest

from repro.__main__ import (
    EXIT_CODES,
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_USAGE,
    exit_code_epilog,
    main,
)
from repro.robust import faults


@pytest.fixture(autouse=True)
def quiet_faults():
    with faults.suspended():
        yield


@pytest.fixture
def coherent_file(tmp_path):
    path = tmp_path / "ok.tbox"
    path.write_text("car [= motorvehicle\n", encoding="utf-8")
    return str(path)


@pytest.fixture
def wide_file(tmp_path):
    # >= 12 successors need 13 nodes: reliably exhausts a 10-node budget
    path = tmp_path / "wide.tbox"
    path.write_text(
        "car [= motorvehicle & >= 12 has.wheel\n"
        "motorvehicle [= some uses.gasoline\n",
        encoding="utf-8",
    )
    return str(path)


class TestContract:
    def test_the_four_values(self):
        assert (EXIT_OK, EXIT_FAILURE, EXIT_USAGE, EXIT_PARTIAL) == (0, 1, 2, 3)
        assert sorted(EXIT_CODES) == [0, 1, 2, 3]

    def test_ok(self, coherent_file):
        assert main(["classify", coherent_file]) == EXIT_OK

    def test_failure_from_strict_critique(self, coherent_file, tmp_path, capsys):
        cyclic = tmp_path / "cyclic.tbox"
        cyclic.write_text("dog [= cat\ncat [= dog\n", encoding="utf-8")
        assert main(["critique", str(cyclic), "--strict"]) == EXIT_FAILURE
        capsys.readouterr()

    def test_usage_error_from_argparse(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["classify", "--no-such-flag"])
        assert info.value.code == EXIT_USAGE
        capsys.readouterr()

    def test_unknown_subcommand_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["frobnicate"])
        assert info.value.code == EXIT_USAGE
        capsys.readouterr()

    def test_partial_from_starved_budget(self, wide_file, capsys):
        assert main(["classify", wide_file, "--budget-nodes", "10"]) == EXIT_PARTIAL
        capsys.readouterr()


class TestHelpEpilog:
    def test_epilog_documents_every_code(self):
        epilog = exit_code_epilog()
        for code, meaning in EXIT_CODES.items():
            assert f"{code} " in epilog
            # the epilog wraps the meaning verbatim
            assert meaning.split(":")[0] in epilog

    def test_help_output_carries_the_table(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--help"])
        assert info.value.code == EXIT_OK
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "partial: a budget or fault left UNKNOWN answers" in out
        assert "HTTP analogue: 206" in out

    def test_serve_help_documents_the_http_degradation_contract(self, capsys):
        """The serve epilog is the HTTP half of the exit-code contract:
        206/429/503 for queries, deferred/coalesced for throttled edits."""
        with pytest.raises(SystemExit) as info:
            main(["serve", "--help"])
        assert info.value.code == EXIT_OK
        out = capsys.readouterr().out
        assert "HTTP 206" in out
        assert "429/503" in out
        assert "swap_status deferred (queued) or coalesced" in out
        assert "Live traffic" in out
        # the knobs the epilog's edit contract depends on are real flags
        assert "--edit-log" in out
        assert "--min-swap-interval-ms" in out
        assert "--rebase-limit" in out

    def test_readme_table_matches_exit_codes(self):
        import pathlib

        readme = (
            pathlib.Path(__file__).resolve().parents[2] / "README.md"
        ).read_text(encoding="utf-8")
        for code in EXIT_CODES:
            assert f"| {code} |" in readme, (
                f"README.md exit-code table is missing code {code}"
            )
