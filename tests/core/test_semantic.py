"""Unit and property tests for collisions, siblings, and the regress (F4/F5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    confusable_sibling,
    differentiation_regress,
    find_collisions,
    find_cross_collisions,
    rename_concept,
    rename_tbox,
    tbox_definition_size,
)
from repro.corpora import (
    animal_tbox,
    random_tbox,
    repaired_animal_tbox,
    vehicle_tbox,
)
from repro.dl import Atomic, Not, meanings_identical, parse_axiom, parse_concept, parse_tbox


class TestRenaming:
    def test_rename_concept_names_and_roles(self):
        c = parse_concept("motorvehicle & some size.small")
        renamed = rename_concept(c, {"motorvehicle": "animal", "small": "tiny"}, {"size": "bulk"})
        assert renamed == parse_concept("animal & some bulk.tiny")

    def test_rename_preserves_cardinality(self):
        c = parse_concept(">= 4 has.wheel")
        renamed = rename_concept(c, {"wheel": "leg"}, {"has": "has"})
        assert renamed == parse_concept(">= 4 has.leg")

    def test_rename_through_negation_and_disjunction(self):
        c = parse_concept("~A | all r.B")
        renamed = rename_concept(c, {"A": "X", "B": "Y"}, {"r": "s"})
        assert renamed == parse_concept("~X | all s.Y")

    def test_rename_tbox_preserves_axiom_kinds(self):
        tbox = parse_tbox("A [= B\nC = B")
        renamed = rename_tbox(tbox, {"A": "A2", "B": "B2", "C": "C2"}, {})
        assert renamed.pretty() == "A2 ⊑ B2\nC2 ≡ B2"


class TestCollisions:
    def test_within_tbox_collision_car_pickup(self):
        collisions = find_collisions(vehicle_tbox(), label="vehicles")
        pairs = {(c.term_a, c.term_b) for c in collisions}
        assert ("car", "pickup") in pairs

    def test_cross_collisions_reproduce_the_paper(self):
        collisions = find_cross_collisions(
            vehicle_tbox(), animal_tbox(), label_a="vehicles", label_b="animals"
        )
        pairs = {(c.term_a, c.term_b) for c in collisions}
        assert ("car", "dog") in pairs
        assert ("pickup", "horse") in pairs
        assert ("motorvehicle", "animal") in pairs
        assert ("roadvehicle", "quadruped") in pairs

    def test_repair_separates_dog_from_car(self):
        collisions = find_cross_collisions(vehicle_tbox(), repaired_animal_tbox())
        pairs = {(c.term_a, c.term_b) for c in collisions}
        # the repair breaks the headline identification...
        assert ("car", "dog") not in pairs
        assert ("pickup", "horse") not in pairs
        # ...but the shallow leaf definitions still collide: motorvehicle's
        # one-edge web is indistinguishable from animal's — the repair only
        # pushed the problem down a level, as the regress predicts
        assert ("motorvehicle", "animal") in pairs

    def test_collision_str(self):
        (collision, *_) = find_collisions(vehicle_tbox(), label="v")
        assert "≡" in str(collision)


class TestConfusableSibling:
    def test_sibling_has_disjoint_vocabulary(self):
        tbox = vehicle_tbox()
        sibling, name_map, role_map = confusable_sibling(tbox)
        assert not (tbox.atomic_names() & sibling.atomic_names())
        assert not (tbox.role_names() & sibling.role_names())
        assert name_map["car"] == "carʹ"

    def test_sibling_collides_on_every_defined_name(self):
        tbox = vehicle_tbox()
        sibling, name_map, _ = confusable_sibling(tbox)
        for name in tbox.defined_names():
            assert meanings_identical(tbox, name, sibling, name_map[name])

    def test_sibling_of_repaired_tbox_still_collides(self):
        """The punchline: the repair that broke CAR=DOG spawns a new rival."""
        tbox = repaired_animal_tbox()
        sibling, name_map, _ = confusable_sibling(tbox)
        assert meanings_identical(tbox, "dog", sibling, name_map["dog"])


class TestRegress:
    def test_paper_repair_sequence(self):
        # start from the animal ontonomy, apply the paper's (9)-(11) repair
        repair = [
            parse_axiom("quadruped [= animal"),
        ]
        steps = differentiation_regress(animal_tbox(), "dog", [repair])
        assert len(steps) == 2
        assert steps[0].round == 0
        assert steps[1].axiom_count == steps[0].axiom_count + 1
        # the regress never escapes: every round has a confusable rival
        assert all(s.rival_identical for s in steps)

    def test_definition_size_grows_monotonically(self):
        repairs = [
            [parse_axiom("quadruped [= animal")],
            [parse_axiom("dog [= some emits.bark")],
            [parse_axiom("horse [= some emits.neigh")],
        ]
        steps = differentiation_regress(animal_tbox(), "dog", repairs)
        sizes = [s.definition_size for s in steps]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_unknown_term_rejected(self):
        with pytest.raises(ValueError):
            differentiation_regress(animal_tbox(), "unicorn", [])

    def test_step_str(self):
        (step,) = differentiation_regress(animal_tbox(), "dog", [])
        assert "still confusable" in str(step)

    def test_tbox_definition_size(self):
        assert tbox_definition_size(parse_tbox("A [= B")) == 2
        assert tbox_definition_size(parse_tbox("A [= B & C")) == 4


# ---------------------------------------------------------------------- #
# property-based: for EVERY definitorial TBox the sibling collides —
# the mechanized form of "we can't stop"
# ---------------------------------------------------------------------- #


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_confusable_sibling_exists_for_random_tboxes(seed):
    tbox = random_tbox(seed, n_defined=4, n_primitive=3, n_roles=2)
    sibling, name_map, _ = confusable_sibling(tbox)
    for name in sorted(tbox.defined_names()):
        assert meanings_identical(tbox, name, sibling, name_map[name])


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_rename_tbox_round_trip(seed):
    tbox = random_tbox(seed, n_defined=3, n_primitive=3, n_roles=2)
    name_map = {n: f"{n}X" for n in tbox.atomic_names()}
    role_map = {r: f"{r}X" for r in tbox.role_names()}
    there = rename_tbox(tbox, name_map, role_map)
    back = rename_tbox(
        there,
        {v: k for k, v in name_map.items()},
        {v: k for k, v in role_map.items()},
    )
    assert back.pretty() == tbox.pretty()
