"""Unit tests for report rendering (text and markdown)."""

from repro.core import CritiqueReport, Finding, Section, Severity, critique
from repro.corpora import vehicle_tbox


def small_report() -> CritiqueReport:
    report = CritiqueReport("widget ontology")
    report.add(
        Finding(
            Section.SYNTACTIC,
            "demo-info",
            Severity.INFO,
            "an informational note",
            "details line one\ndetails line two",
            paper_ref="§2",
        )
    )
    report.add(
        Finding(
            Section.PRAGMATIC,
            "demo-defect",
            Severity.DEFECT,
            "a defect",
            "something broke",
        )
    )
    return report


class TestTextRendering:
    def test_sections_ordered(self):
        text = small_report().render()
        assert text.index("I. Syntactic") < text.index("III. Pragmatic")
        assert "II. Semantic" not in text  # empty sections are omitted

    def test_severity_badges(self):
        text = small_report().render()
        assert "· an informational note" in text
        assert "✗ a defect" in text

    def test_multiline_details_indented(self):
        text = small_report().render()
        assert "    details line one" in text
        assert "    details line two" in text

    def test_paper_ref_shown(self):
        assert "[§2]" in small_report().render()


class TestMarkdownRendering:
    def test_structure(self):
        md = small_report().render_markdown()
        assert md.startswith("# Critique of widget ontology")
        assert "## I. Syntactic" in md
        assert "## III. Pragmatic" in md
        assert "## II. Semantic" not in md

    def test_badges_and_refs(self):
        md = small_report().render_markdown()
        assert "ℹ️ **an informational note** *(§2)*" in md
        assert "❌ **a defect**" in md

    def test_empty_report(self):
        md = CritiqueReport("empty").render_markdown()
        assert "*(no findings)*" in md

    def test_full_engine_markdown(self):
        md = critique(vehicle_tbox(), label="vehicles").render_markdown()
        assert "# Critique of vehicles" in md
        assert md.endswith("\n")
        # the markdown mentions the same defects as the text rendering
        assert "Gruber" in md
