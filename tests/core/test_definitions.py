"""Unit tests for the structural/functional definition framework (Q1)."""

from repro.core import (
    ALL_DEFINITIONS,
    AI_VOCABULARY_DEFINITION,
    BCM_ONTONOMY_DEFINITION,
    GRAMMAR_DEFINITION,
    GRUBER_DEFINITION,
    Verdict,
    decidability_table,
    use_dependence_demonstration,
)
from repro.grammar import Grammar, Production
from repro.logic import Vocabulary


def sample_grammar() -> Grammar:
    return Grammar({"S"}, {"a"}, "S", [Production(("S",), ("a",))])


class TestStructuralDefinitions:
    def test_grammar_definition_decides_both_ways(self):
        assert GRAMMAR_DEFINITION.classify(sample_grammar()).verdict is Verdict.MEMBER
        assert GRAMMAR_DEFINITION.classify("a grocery list").verdict is Verdict.NON_MEMBER

    def test_ai_vocabulary_definition(self):
        vocab = Vocabulary(constants=frozenset({"a"}), predicates={"P": 1})
        assert AI_VOCABULARY_DEFINITION.classify(vocab).verdict is Verdict.MEMBER
        assert AI_VOCABULARY_DEFINITION.classify(42).verdict is Verdict.NON_MEMBER

    def test_bcm_definition(self):
        assert BCM_ONTONOMY_DEFINITION.classify("nope").verdict is Verdict.NON_MEMBER

    def test_declared_use_is_ignored_by_structural(self):
        with_use = GRAMMAR_DEFINITION.classify(sample_grammar(), "anything at all")
        without = GRAMMAR_DEFINITION.classify(sample_grammar())
        assert with_use.verdict == without.verdict


class TestFunctionalDefinition:
    def test_undecidable_from_artifact_alone(self):
        result = GRUBER_DEFINITION.classify(sample_grammar())
        assert result.verdict is Verdict.UNDECIDABLE
        assert "use" in result.reason

    def test_verdict_echoes_declaration(self):
        member = GRUBER_DEFINITION.classify(
            sample_grammar(), "formalizing a conceptualization"
        )
        non_member = GRUBER_DEFINITION.classify(sample_grammar(), "making coffee")
        assert member.verdict is Verdict.MEMBER
        assert non_member.verdict is Verdict.NON_MEMBER

    def test_use_dependence_demonstration(self):
        verdicts = use_dependence_demonstration(
            GRUBER_DEFINITION,
            sample_grammar(),
            ["formalizing a conceptualization", "remembering what to buy"],
        )
        assert verdicts == [Verdict.MEMBER, Verdict.NON_MEMBER]


class TestDecidabilityTable:
    def test_q1_table_shape(self):
        vocab = Vocabulary(constants=frozenset({"a"}), predicates={"P": 1})
        rows = decidability_table(
            {"a grammar": sample_grammar(), "a vocabulary": vocab, "a string": "hi"}
        )
        assert len(rows) == 3
        by_artifact = {row["artifact"]: row for row in rows}
        grammar_row = by_artifact["a grammar"]
        # structural definitions always answer
        assert grammar_row["formal grammar (4-tuple)"] == "member"
        assert grammar_row["BCM ontonomy (Σ, A)"] == "non-member"
        # Gruber's column is uniformly undecidable
        for row in rows:
            assert row["Gruber ontology"] == "undecidable"

    def test_every_definition_present_in_columns(self):
        rows = decidability_table({"x": 1})
        for definition in ALL_DEFINITIONS:
            assert definition.name in rows[0]
