"""Unit and property tests for finite posets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.order import OrderError, Poset, chain, discrete, from_cover_graph, is_monotone
from repro.graphs import DiGraph, is_acyclic


def diamond() -> Poset:
    return Poset(
        ["bot", "l", "r", "top"],
        [("bot", "l"), ("bot", "r"), ("l", "top"), ("r", "top")],
    )


def vehicle_hierarchy() -> Poset:
    return Poset(
        ["car", "pickup", "motorvehicle", "roadvehicle", "vehicle"],
        [
            ("car", "motorvehicle"),
            ("car", "roadvehicle"),
            ("pickup", "motorvehicle"),
            ("pickup", "roadvehicle"),
            ("motorvehicle", "vehicle"),
            ("roadvehicle", "vehicle"),
        ],
    )


class TestBasics:
    def test_leq_reflexive(self):
        p = diamond()
        for e in p.elements:
            assert p.leq(e, e)

    def test_leq_transitive_closure(self):
        p = diamond()
        assert p.leq("bot", "top")

    def test_lt_is_strict(self):
        p = diamond()
        assert p.lt("bot", "top")
        assert not p.lt("bot", "bot")

    def test_incomparable(self):
        p = diamond()
        assert not p.comparable("l", "r")
        assert p.comparable("bot", "l")

    def test_cycle_rejected(self):
        with pytest.raises(OrderError):
            Poset(["a", "b"], [("a", "b"), ("b", "a")])

    def test_unknown_element_in_pair_rejected(self):
        with pytest.raises(OrderError):
            Poset(["a"], [("a", "zz")])

    def test_unknown_element_query_raises(self):
        with pytest.raises(OrderError):
            diamond().leq("a", "zz")

    def test_duplicate_elements_deduped(self):
        p = Poset(["a", "a", "b"], [("a", "b")])
        assert len(p) == 2

    def test_up_down_sets(self):
        p = diamond()
        assert p.up_set("l") == frozenset({"l", "top"})
        assert p.down_set("l") == frozenset({"l", "bot"})


class TestStructure:
    def test_covers_of_diamond(self):
        assert set(diamond().covers()) == {
            ("bot", "l"),
            ("bot", "r"),
            ("l", "top"),
            ("r", "top"),
        }

    def test_covers_skip_transitive_pairs(self):
        p = chain(["a", "b", "c"])
        assert set(p.covers()) == {("a", "b"), ("b", "c")}

    def test_hasse_diagram(self):
        h = diamond().hasse_diagram()
        assert h.has_edge("bot", "l")
        assert not h.has_edge("bot", "top")

    def test_min_max(self):
        p = diamond()
        assert p.minimal_elements() == frozenset({"bot"})
        assert p.maximal_elements() == frozenset({"top"})

    def test_bottom_top(self):
        p = diamond()
        assert p.bottom() == "bot"
        assert p.top() == "top"

    def test_no_bottom_in_antichain(self):
        p = discrete(["a", "b"])
        assert p.bottom() is None
        assert p.top() is None

    def test_bounds(self):
        p = diamond()
        assert p.upper_bounds(["l", "r"]) == frozenset({"top"})
        assert p.lower_bounds(["l", "r"]) == frozenset({"bot"})

    def test_meet_join(self):
        p = diamond()
        assert p.join("l", "r") == "top"
        assert p.meet("l", "r") == "bot"
        assert p.join("bot", "l") == "l"

    def test_join_absent(self):
        p = discrete(["a", "b"])
        assert p.join("a", "b") is None

    def test_is_lattice(self):
        assert diamond().is_lattice()
        assert not discrete(["a", "b"]).is_lattice()

    def test_is_chain(self):
        assert chain(["a", "b", "c"]).is_chain()
        assert not diamond().is_chain()

    def test_is_tree_vs_dag(self):
        # the paper: a partial order is a DAG, more general than a tree —
        # car under BOTH motorvehicle and roadvehicle is not a tree
        assert not vehicle_hierarchy().is_tree()
        tree = Poset(["a", "b", "c"], [("b", "a"), ("c", "a")])
        assert tree.is_tree()

    def test_height_width(self):
        p = diamond()
        assert p.height() == 2
        assert p.width() == 2
        assert vehicle_hierarchy().height() == 2
        assert vehicle_hierarchy().width() == 2

    def test_linear_extension_is_compatible(self):
        p = vehicle_hierarchy()
        order = p.linear_extension()
        pos = {e: i for i, e in enumerate(order)}
        for x in p.elements:
            for y in p.elements:
                if p.lt(x, y):
                    assert pos[x] < pos[y]


class TestConstructions:
    def test_subposet(self):
        p = vehicle_hierarchy().subposet(["car", "vehicle", "motorvehicle"])
        assert p.leq("car", "vehicle")
        assert len(p) == 3

    def test_dual_reverses(self):
        p = diamond().dual()
        assert p.leq("top", "bot")
        assert p.bottom() == "top"

    def test_product_order(self):
        p = chain([0, 1]).product(chain([0, 1]))
        assert p.leq((0, 0), (1, 1))
        assert not p.comparable((0, 1), (1, 0))

    def test_from_cover_graph(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        p = from_cover_graph(g)
        assert p.leq("a", "c")

    def test_from_cyclic_graph_rejected(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(OrderError):
            from_cover_graph(g)

    def test_equality_and_hash(self):
        assert diamond() == diamond()
        assert hash(diamond()) == hash(diamond())
        assert diamond() != discrete(["bot", "l", "r", "top"])


class TestMonotone:
    def test_identity_is_monotone(self):
        p = diamond()
        assert is_monotone(lambda e: e, p, p)

    def test_collapse_to_top_is_monotone(self):
        p = diamond()
        assert is_monotone(lambda e: "top", p, p)

    def test_order_reversal_not_monotone(self):
        p = chain(["a", "b"])
        swap = {"a": "b", "b": "a"}
        assert not is_monotone(lambda e: swap[e], p, p)


# ---------------------------------------------------------------------- #
# property-based: poset axioms hold for arbitrary generated DAG orders
# ---------------------------------------------------------------------- #


@st.composite
def random_poset(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    elements = list(range(n))
    # edges only from lower to higher index: guarantees acyclicity
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda t: t[0] < t[1]
            ),
            max_size=10,
        )
    )
    return Poset(elements, pairs)


@settings(max_examples=60, deadline=None)
@given(random_poset())
def test_order_axioms(p):
    es = p.elements
    for x in es:
        assert p.leq(x, x)  # reflexivity
        for y in es:
            if p.leq(x, y) and p.leq(y, x):
                assert x == y  # antisymmetry
            for z in es:
                if p.leq(x, y) and p.leq(y, z):
                    assert p.leq(x, z)  # transitivity


@settings(max_examples=60, deadline=None)
@given(random_poset())
def test_covers_generate_the_order(p):
    rebuilt = Poset(p.elements, p.covers())
    assert rebuilt == p


@settings(max_examples=60, deadline=None)
@given(random_poset())
def test_hasse_is_acyclic_and_dual_involutive(p):
    assert is_acyclic(p.hasse_diagram())
    assert p.dual().dual() == p
