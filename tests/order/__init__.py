"""Test package."""
