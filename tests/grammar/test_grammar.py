"""Unit tests for grammars, classification, and the structural decider."""

import pytest

from repro.grammar import (
    ChomskyType,
    Grammar,
    GrammarError,
    Production,
    chomsky_type,
    is_formal_grammar,
)


def anbn() -> Grammar:
    """The classic aⁿbⁿ grammar (context-free, not regular)."""
    return Grammar(
        {"S"},
        {"a", "b"},
        "S",
        [Production(("S",), ("a", "S", "b")), Production(("S",), ())],
    )


def astar() -> Grammar:
    """a* as a right-linear grammar."""
    return Grammar(
        {"S"},
        {"a"},
        "S",
        [Production(("S",), ("a", "S")), Production(("S",), ())],
    )


class TestGrammar:
    def test_valid_grammar_builds(self):
        g = anbn()
        assert g.start == "S"
        assert len(g.productions) == 2

    def test_empty_nonterminals_rejected(self):
        with pytest.raises(GrammarError):
            Grammar([], {"a"}, "S", [])

    def test_overlap_rejected(self):
        with pytest.raises(GrammarError):
            Grammar({"S"}, {"S"}, "S", [])

    def test_start_not_in_n_rejected(self):
        with pytest.raises(GrammarError):
            Grammar({"S"}, {"a"}, "X", [])

    def test_unknown_symbol_rejected(self):
        with pytest.raises(GrammarError):
            Grammar({"S"}, {"a"}, "S", [Production(("S",), ("z",))])

    def test_terminal_only_lhs_rejected(self):
        with pytest.raises(GrammarError):
            Grammar({"S"}, {"a"}, "S", [Production(("a",), ("a",))])

    def test_empty_lhs_rejected(self):
        with pytest.raises(GrammarError):
            Production((), ("a",))

    def test_productions_for(self):
        g = anbn()
        assert len(g.productions_for("S")) == 2

    def test_pretty(self):
        text = anbn().pretty()
        assert "S → a S b" in text
        assert "S → ε" in text


class TestChomskyType:
    def test_regular(self):
        assert chomsky_type(astar()) == ChomskyType.REGULAR

    def test_context_free(self):
        assert chomsky_type(anbn()) == ChomskyType.CONTEXT_FREE

    def test_context_sensitive(self):
        # a S b -> a a b (noncontracting, multi-symbol lhs)
        g = Grammar(
            {"S"},
            {"a", "b"},
            "S",
            [
                Production(("S",), ("a", "S", "b")),
                Production(("a", "S", "b"), ("a", "a", "b", "b")),
            ],
        )
        assert chomsky_type(g) == ChomskyType.CONTEXT_SENSITIVE

    def test_unrestricted(self):
        g = Grammar(
            {"S", "A"},
            {"a"},
            "S",
            [Production(("S", "A"), ("a",)), Production(("S",), ("S", "A"))],
        )
        assert chomsky_type(g) == ChomskyType.UNRESTRICTED

    def test_start_epsilon_allowed_in_cs(self):
        g = Grammar(
            {"S", "A"},
            {"a"},
            "S",
            [
                Production(("S",), ()),
                Production(("S",), ("A", "A")),
                Production(("A", "A"), ("a", "a")),
            ],
        )
        # S -> ε is fine because S never occurs on a rhs
        assert chomsky_type(g) == ChomskyType.CONTEXT_SENSITIVE

    def test_left_linear_is_not_right_linear_here(self):
        g = Grammar(
            {"S"},
            {"a"},
            "S",
            [Production(("S",), ("S", "a")), Production(("S",), ("a",))],
        )
        assert chomsky_type(g) == ChomskyType.CONTEXT_FREE


class TestStructuralDecider:
    """Q1's reference case: grammar membership is decidable from structure."""

    def test_grammar_instance_accepted(self):
        assert is_formal_grammar(anbn())

    def test_raw_tuple_accepted(self):
        raw = (
            {"S"},
            {"a", "b"},
            "S",
            [(("S",), ("a", "S", "b")), (("S",), ())],
        )
        assert is_formal_grammar(raw)

    def test_wrong_shape_rejected(self):
        assert not is_formal_grammar("a string")
        assert not is_formal_grammar(({"S"}, {"a"}, "S"))  # 3-tuple
        assert not is_formal_grammar(42)

    def test_structurally_invalid_tuple_rejected(self):
        raw = ({"S"}, {"S"}, "S", [])  # N and T overlap
        assert not is_formal_grammar(raw)
        raw = ({"S"}, {"a"}, "X", [])  # start outside N
        assert not is_formal_grammar(raw)

    def test_decision_is_use_independent(self):
        """The same artifact is (or is not) a grammar regardless of its use —
        unlike Gruber's 'formalization of a conceptualization'."""
        raw = ({"S"}, {"a"}, "S", [(("S",), ("a",))])
        # decide twice in different "contexts of use": same verdict
        as_language_spec = is_formal_grammar(raw)
        as_grocery_list_encoding = is_formal_grammar(raw)
        assert as_language_spec == as_grocery_list_encoding == True  # noqa: E712
