"""Unit and property tests for the Earley recognizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar import (
    Grammar,
    GrammarError,
    Production,
    cyk_recognizes,
    derives,
    earley_recognizes,
    to_cnf,
)


def anbn() -> Grammar:
    return Grammar(
        {"S"},
        {"a", "b"},
        "S",
        [Production(("S",), ("a", "S", "b")), Production(("S",), ())],
    )


def nullable_heavy() -> Grammar:
    """S → A A; A → ε | a — the classic Earley ε-production stress test."""
    return Grammar(
        {"S", "A"},
        {"a"},
        "S",
        [
            Production(("S",), ("A", "A")),
            Production(("A",), ()),
            Production(("A",), ("a",)),
        ],
    )


def unit_chain() -> Grammar:
    return Grammar(
        {"S", "A", "B"},
        {"x"},
        "S",
        [
            Production(("S",), ("A",)),
            Production(("A",), ("B",)),
            Production(("B",), ("x",)),
        ],
    )


class TestEarley:
    def test_anbn(self):
        g = anbn()
        assert earley_recognizes(g, [])
        assert earley_recognizes(g, ["a", "b"])
        assert earley_recognizes(g, ["a", "a", "b", "b"])
        assert not earley_recognizes(g, ["a", "b", "b"])
        assert not earley_recognizes(g, ["b"])

    def test_nullable_productions(self):
        g = nullable_heavy()
        assert earley_recognizes(g, [])        # A A with both empty
        assert earley_recognizes(g, ["a"])     # one empty
        assert earley_recognizes(g, ["a", "a"])
        assert not earley_recognizes(g, ["a", "a", "a"])

    def test_unit_chains(self):
        g = unit_chain()
        assert earley_recognizes(g, ["x"])
        assert not earley_recognizes(g, [])
        assert not earley_recognizes(g, ["x", "x"])

    def test_non_cfg_rejected(self):
        g = Grammar(
            {"S"}, {"a"}, "S",
            [Production(("S", "S"), ("a",)), Production(("S",), ("a",))],
        )
        with pytest.raises(GrammarError):
            earley_recognizes(g, ["a"])

    def test_unknown_terminal_rejected(self):
        with pytest.raises(GrammarError):
            earley_recognizes(anbn(), ["z"])

    def test_no_cnf_conversion_needed(self):
        # Earley runs directly on grammars CYK must first transform
        g = unit_chain()
        assert earley_recognizes(g, ["x"]) == cyk_recognizes(g, ["x"])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["a", "b"]), max_size=8))
def test_earley_matches_cyk(word):
    g = anbn()
    cnf = to_cnf(g)
    assert earley_recognizes(g, word) == cyk_recognizes(cnf, word)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["a"]), max_size=5))
def test_earley_matches_derivation_oracle_on_nullables(word):
    g = nullable_heavy()
    assert earley_recognizes(g, word) == derives(g, word)
