"""Test package."""
