"""Unit and property tests for DFA minimization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar import (
    Grammar,
    Production,
    compile_regular,
    minimize_dfa,
)


def ab_star() -> Grammar:
    return Grammar(
        {"S", "B"},
        {"a", "b"},
        "S",
        [
            Production(("S",), ("a", "B")),
            Production(("B",), ("b", "S")),
            Production(("S",), ()),
        ],
    )


def redundant_grammar() -> Grammar:
    """a* written with gratuitous duplicated nonterminals."""
    return Grammar(
        {"S", "T", "U"},
        {"a"},
        "S",
        [
            Production(("S",), ("a", "T")),
            Production(("T",), ("a", "U")),
            Production(("U",), ("a", "S")),
            Production(("S",), ()),
            Production(("T",), ()),
            Production(("U",), ()),
        ],
    )


class TestMinimize:
    def test_language_preserved(self):
        dfa = compile_regular(ab_star())
        minimal = minimize_dfa(dfa)
        for word in ([], ["a"], ["a", "b"], ["b"], ["a", "b", "a"],
                     ["a", "b", "a", "b"], ["b", "a"]):
            assert minimal.accepts(word) == dfa.accepts(word)

    def test_redundant_states_collapse(self):
        dfa = compile_regular(redundant_grammar())
        minimal = minimize_dfa(dfa)
        # the language is a*: one state suffices
        assert len(minimal.states) < len(dfa.states)
        assert len(minimal.states) == 1
        for n in range(6):
            assert minimal.accepts(["a"] * n)

    def test_idempotent(self):
        minimal = minimize_dfa(compile_regular(ab_star()))
        again = minimize_dfa(minimal)
        assert len(again.states) == len(minimal.states)

    def test_minimal_size_for_ab_star(self):
        # (ab)* needs exactly 2 live states (even/odd position)
        minimal = minimize_dfa(compile_regular(ab_star()))
        assert len(minimal.states) == 2


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["a", "b"]), max_size=10))
def test_minimized_agrees_on_random_words(word):
    dfa = compile_regular(ab_star())
    assert minimize_dfa(dfa).accepts(word) == dfa.accepts(word)
