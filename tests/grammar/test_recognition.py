"""Unit and property tests for CNF, CYK, derivations, and the DFA pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar import (
    Grammar,
    GrammarError,
    Production,
    compile_regular,
    cyk_recognizes,
    derivations,
    derives,
    generate,
    grammar_to_nfa,
    is_cnf,
    nfa_to_dfa,
    sample_sentences,
    to_cnf,
)


def anbn() -> Grammar:
    return Grammar(
        {"S"},
        {"a", "b"},
        "S",
        [Production(("S",), ("a", "S", "b")), Production(("S",), ())],
    )


def balanced_parens() -> Grammar:
    return Grammar(
        {"S"},
        {"(", ")"},
        "S",
        [
            Production(("S",), ("(", "S", ")")),
            Production(("S",), ("S", "S")),
            Production(("S",), ()),
        ],
    )


def ab_star() -> Grammar:
    """(ab)* as a right-linear grammar."""
    return Grammar(
        {"S", "B"},
        {"a", "b"},
        "S",
        [
            Production(("S",), ("a", "B")),
            Production(("B",), ("b", "S")),
            Production(("S",), ()),
        ],
    )


class TestCNF:
    def test_cnf_shape(self):
        cnf = to_cnf(anbn())
        assert is_cnf(cnf)

    def test_cnf_preserves_epsilon(self):
        cnf = to_cnf(anbn())
        assert cyk_recognizes(cnf, [])

    def test_cnf_requires_cfg(self):
        g = Grammar(
            {"S"}, {"a"}, "S", [Production(("S", "S"), ("a",)), Production(("S",), ("a",))]
        )
        with pytest.raises(GrammarError):
            to_cnf(g)

    def test_unit_chains_eliminated(self):
        g = Grammar(
            {"S", "A", "B"},
            {"a"},
            "S",
            [
                Production(("S",), ("A",)),
                Production(("A",), ("B",)),
                Production(("B",), ("a",)),
            ],
        )
        cnf = to_cnf(g)
        assert is_cnf(cnf)
        assert cyk_recognizes(cnf, ["a"])

    def test_long_rhs_binarized(self):
        g = Grammar(
            {"S"},
            {"a", "b", "c", "d"},
            "S",
            [Production(("S",), ("a", "b", "c", "d"))],
        )
        cnf = to_cnf(g)
        assert is_cnf(cnf)
        assert cyk_recognizes(cnf, ["a", "b", "c", "d"])
        assert not cyk_recognizes(cnf, ["a", "b", "c"])


class TestCYK:
    def test_anbn_membership(self):
        g = anbn()
        assert cyk_recognizes(g, [])
        assert cyk_recognizes(g, ["a", "b"])
        assert cyk_recognizes(g, ["a", "a", "b", "b"])
        assert not cyk_recognizes(g, ["a", "b", "b"])
        assert not cyk_recognizes(g, ["b", "a"])
        assert not cyk_recognizes(g, ["a", "a", "b"])

    def test_balanced_parens(self):
        g = balanced_parens()
        assert cyk_recognizes(g, list("()()"))
        assert cyk_recognizes(g, list("(())"))
        assert not cyk_recognizes(g, list("(()"))
        assert not cyk_recognizes(g, list(")("))

    def test_unknown_terminal_rejected(self):
        with pytest.raises(GrammarError):
            cyk_recognizes(anbn(), ["z"])


class TestDerivations:
    def test_enumeration_finds_small_sentences(self):
        found = set()
        for sentence in derivations(anbn(), max_length=6):
            found.add(sentence)
        assert () in found
        assert ("a", "b") in found
        assert ("a", "a", "b", "b") in found

    def test_derives_oracle(self):
        assert derives(anbn(), ["a", "b"])
        assert not derives(anbn(), ["b", "a"])

    def test_generate_produces_members(self):
        g = balanced_parens()
        sentence = generate(g, seed=3)
        assert sentence is not None
        assert cyk_recognizes(g, list(sentence))

    def test_sample_sentences_deterministic(self):
        s1 = sample_sentences(anbn(), 5, seed=1)
        s2 = sample_sentences(anbn(), 5, seed=1)
        assert s1 == s2


class TestRegularPipeline:
    def test_nfa_accepts(self):
        nfa = grammar_to_nfa(ab_star())
        assert nfa.accepts([])
        assert nfa.accepts(["a", "b"])
        assert nfa.accepts(["a", "b", "a", "b"])
        assert not nfa.accepts(["a"])
        assert not nfa.accepts(["b", "a"])

    def test_dfa_agrees_with_nfa(self):
        nfa = grammar_to_nfa(ab_star())
        dfa = nfa_to_dfa(nfa)
        for word in ([], ["a"], ["a", "b"], ["b"], ["a", "b", "a"], ["a", "b", "a", "b"]):
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_compile_regular_rejects_cfg(self):
        with pytest.raises(GrammarError):
            compile_regular(anbn())

    def test_multi_terminal_body(self):
        g = Grammar(
            {"S"},
            {"a", "b", "c"},
            "S",
            [Production(("S",), ("a", "b", "c")), Production(("S",), ("a", "S"))],
        )
        dfa = compile_regular(g)
        assert dfa.accepts(["a", "b", "c"])
        assert dfa.accepts(["a", "a", "b", "c"])
        assert not dfa.accepts(["a", "b"])


# ---------------------------------------------------------------------- #
# property-based: CYK agrees with the BFS derivation oracle, and the DFA
# pipeline agrees with CYK on regular grammars
# ---------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4))
def test_cyk_matches_anbn_ground_truth(n_a, n_b):
    word = ["a"] * n_a + ["b"] * n_b
    assert cyk_recognizes(anbn(), word) == (n_a == n_b)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["a", "b"]), max_size=6))
def test_cyk_matches_derivation_oracle(word):
    assert cyk_recognizes(anbn(), word) == derives(anbn(), word)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["a", "b"]), max_size=8))
def test_dfa_matches_cyk_on_regular(word):
    g = ab_star()
    assert compile_regular(g).accepts(word) == cyk_recognizes(g, word)
