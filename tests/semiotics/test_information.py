"""Unit and property tests for the information-theoretic field metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpora import (
    age_lexicalizations,
    english_door,
    italian_door,
    random_field,
    random_lexicalization,
)
from repro.semiotics import (
    FieldError,
    Lexicalization,
    SemanticField,
    joint_entropy,
    mutual_information,
    term_entropy,
    variation_of_information,
)


def trivial_lex() -> Lexicalization:
    field = SemanticField("f", frozenset({"p0", "p1", "p2", "p3"}))
    return Lexicalization("blob", field, {"thing": field.points})


def maximal_lex() -> Lexicalization:
    field = SemanticField("f", frozenset({"p0", "p1", "p2", "p3"}))
    return Lexicalization(
        "precise", field, {f"t{p}": {p} for p in field.points}
    )


class TestEntropy:
    def test_no_distinctions_zero_entropy(self):
        assert term_entropy(trivial_lex()) == 0.0

    def test_full_distinctions_max_entropy(self):
        assert term_entropy(maximal_lex()) == pytest.approx(2.0)  # log2(4)

    def test_english_door_one_bit(self):
        # two equal blocks over four points: exactly 1 bit
        assert term_entropy(english_door()) == pytest.approx(1.0)

    def test_italian_door_less_balanced(self):
        # blocks of size 1 and 3: H = -(1/4)log(1/4) - (3/4)log(3/4)
        expected = -(0.25 * math.log2(0.25) + 0.75 * math.log2(0.75))
        assert term_entropy(italian_door()) == pytest.approx(expected)


class TestMutualInformation:
    def test_self_information_is_entropy(self):
        english = english_door()
        assert mutual_information(english, english) == pytest.approx(
            term_entropy(english)
        )

    def test_door_languages_share_information(self):
        mi = mutual_information(english_door(), italian_door())
        assert 0 < mi < term_entropy(english_door()) + 1e-9 or mi > 0

    def test_mismatched_fields_rejected(self):
        with pytest.raises(FieldError):
            joint_entropy(english_door(), age_lexicalizations()[0])


class TestVariationOfInformation:
    def test_zero_on_self(self):
        assert variation_of_information(english_door(), english_door()) == 0.0

    def test_positive_on_misaligned(self):
        assert variation_of_information(english_door(), italian_door()) > 0

    def test_symmetry(self):
        a, b = english_door(), italian_door()
        assert variation_of_information(a, b) == pytest.approx(
            variation_of_information(b, a)
        )

    def test_age_languages_pairwise(self):
        lexs = age_lexicalizations()
        for x in lexs:
            for y in lexs:
                vi = variation_of_information(x, y)
                assert vi >= 0
                if x is y:
                    assert vi == 0


# ---------------------------------------------------------------------- #
# property-based: metric axioms on random lexicalizations
# ---------------------------------------------------------------------- #

FIELD = random_field(5, n_points=5)


@st.composite
def lex(draw, language):
    seed = draw(st.integers(min_value=0, max_value=5_000))
    return random_lexicalization(seed, FIELD, language=language, n_terms=3)


@settings(max_examples=50, deadline=None)
@given(lex("A"), lex("B"))
def test_vi_nonnegative_and_symmetric(a, b):
    vi = variation_of_information(a, b)
    assert vi >= 0
    assert vi == pytest.approx(variation_of_information(b, a))


@settings(max_examples=40, deadline=None)
@given(lex("A"), lex("B"), lex("C"))
def test_vi_triangle_inequality(a, b, c):
    ab = variation_of_information(a, b)
    bc = variation_of_information(b, c)
    ac = variation_of_information(a, c)
    assert ac <= ab + bc + 1e-9


@settings(max_examples=50, deadline=None)
@given(lex("A"), lex("B"))
def test_mi_bounded_by_entropies(a, b):
    mi = mutual_information(a, b)
    assert mi <= term_entropy(a) + 1e-9
    assert mi <= term_entropy(b) + 1e-9
