"""Unit tests for signs (designation vs signification), translation loss,
and differential meaning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpora.lexical import (
    AGE_FIELD,
    english_door,
    french_age,
    italian_age,
    italian_door,
    spanish_age,
)
from repro.semiotics import (
    Expression,
    FieldError,
    Lexicalization,
    SemanticField,
    designation_confusion,
    husserl_example,
    jaccard_distance,
    lossless_iff_aligned,
    oppositions,
    partial_overlaps,
    requires_differential_explanation,
    same_designation,
    same_signification,
    same_value,
    translate_point,
    translate_term,
    translation_report,
    value_of,
)


class TestSigns:
    def test_husserl_same_designation_different_signification(self):
        winner, loser = husserl_example()
        assert same_designation(winner, loser)
        assert not same_signification(winner, loser)
        assert designation_confusion(winner, loser)

    def test_identical_expressions_no_confusion(self):
        winner, _ = husserl_example()
        assert not designation_confusion(winner, winner)

    def test_different_designata(self):
        a = Expression("the capital of France", frozenset({("capital", "France")}), "Paris")
        b = Expression("the capital of Spain", frozenset({("capital", "Spain")}), "Madrid")
        assert not same_designation(a, b)
        assert not same_signification(a, b)
        assert not designation_confusion(a, b)


class TestTranslation:
    def test_translate_term_doorknob(self):
        # doorknob's best Italian fit overlaps on one point each way;
        # the tie is broken toward the more specific term
        english, italian = english_door(), italian_door()
        assert translate_term(english, italian, "doorknob") == "pomello"
        assert translate_term(english, italian, "door handle") == "maniglia"

    def test_translate_back_is_lossy(self):
        english, italian = english_door(), italian_door()
        # maniglia covers 3 points; best English fit is door handle (2 shared)
        assert translate_term(italian, english, "maniglia") == "door handle"
        # so twist_grip's Italian word round-trips to the WRONG English term
        report = translation_report(english, italian)
        assert not report.lossless
        assert report.mean_distortion > 0

    def test_translate_point(self):
        assert translate_point(italian_door(), "round_knob") == "pomello"
        assert translate_point(spanish_age(), "respected_elder") == "mayor"

    def test_identity_translation_lossless(self):
        report = translation_report(english_door(), english_door())
        assert report.lossless
        assert report.round_trip_failures == ()

    def test_age_translation_italian_spanish(self):
        report = translation_report(italian_age(), spanish_age())
        mapping = dict(report.term_map)
        assert mapping["vecchio"] == "viejo"
        assert mapping["antico"] == "antiguo"
        # anziano has no exact Spanish counterpart: distortion is nonzero
        distortion = dict(report.distortion)
        assert distortion["anziano"] > 0

    def test_mismatched_fields_rejected(self):
        with pytest.raises(FieldError):
            translate_term(english_door(), italian_age(), "doorknob")

    def test_jaccard_distance(self):
        a = frozenset({1, 2})
        b = frozenset({2, 3})
        assert jaccard_distance(a, a) == 0.0
        assert jaccard_distance(a, frozenset()) == 1.0
        assert abs(jaccard_distance(a, b) - (1 - 1 / 3)) < 1e-12

    def test_lossless_iff_aligned_on_paper_data(self):
        assert lossless_iff_aligned(english_door(), italian_door())
        assert lossless_iff_aligned(italian_age(), spanish_age())
        assert lossless_iff_aligned(english_door(), english_door())


class TestOpposition:
    def test_oppositions_kinds(self):
        spanish = spanish_age()
        kinds = {o.rival: o.kind for o in oppositions(spanish, "viejo")}
        assert kinds["añejo"] == "exclusive"
        assert kinds["anciano"] == "hypernym"  # anciano inside viejo

    def test_value_is_system_relative(self):
        # doorknob and door handle occupy symmetric slots within English
        assert same_value(english_door(), "doorknob", english_door(), "door handle")
        # but antico ≠ antique: Italian carves age with 3 terms, French
        # with 4, so the "same" word sits in a different web of oppositions
        # — value is relative to the whole system, as Saussure has it
        assert not same_value(italian_age(), "antico", french_age(), "antique")

    def test_doorknob_and_pomello_differ_in_value(self):
        # same field, overlapping extents, different positions
        assert not same_value(english_door(), "doorknob", italian_door(), "pomello")

    def test_partial_overlaps_doorknob_maniglia(self):
        overlaps = partial_overlaps(english_door(), italian_door())
        pairs = {(a, b) for a, b, _ in overlaps}
        assert ("doorknob", "maniglia") in pairs

    def test_requires_differential_explanation(self):
        assert requires_differential_explanation(english_door(), italian_door())
        assert requires_differential_explanation(italian_age(), spanish_age())
        # a language compared with itself never partially overlaps
        assert not requires_differential_explanation(english_door(), english_door())

    def test_value_of_profile_shape(self):
        value = value_of(english_door(), "doorknob")
        assert value.extent_size == 2
        assert value.opposition_profile == (("exclusive", 1),)


# ---------------------------------------------------------------------- #
# property-based: translation loss is zero iff lexicalizations align
# ---------------------------------------------------------------------- #

POINTS = ["p0", "p1", "p2", "p3"]
FIELD = SemanticField("random", frozenset(POINTS))


@st.composite
def random_lexicalization(draw, language: str):
    n_terms = draw(st.integers(min_value=1, max_value=3))
    extents = {}
    # guarantee coverage: partition the points among terms, then optionally
    # grow extents
    assignment = draw(st.lists(st.integers(0, n_terms - 1), min_size=4, max_size=4))
    for i in range(n_terms):
        extents[f"{language}_t{i}"] = {p for p, a in zip(POINTS, assignment) if a == i}
    extras = draw(st.lists(st.tuples(st.integers(0, n_terms - 1), st.sampled_from(POINTS)), max_size=4))
    for term_index, point in extras:
        extents[f"{language}_t{term_index}"].add(point)
    extents = {t: e for t, e in extents.items() if e}
    return Lexicalization(language, FIELD, extents)


@settings(max_examples=60, deadline=None)
@given(random_lexicalization("A"), random_lexicalization("B"))
def test_lossless_iff_aligned_property(a, b):
    assert lossless_iff_aligned(a, b)


@settings(max_examples=60, deadline=None)
@given(random_lexicalization("A"))
def test_self_translation_always_lossless(a):
    assert translation_report(a, a).lossless
