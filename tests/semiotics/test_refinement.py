"""Unit and property tests for distinction partitions and the interlingua."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import imposition_loss
from repro.corpora import (
    age_lexicalizations,
    english_door,
    french_age,
    italian_age,
    italian_door,
    random_field,
    random_lexicalization,
)
from repro.semiotics import (
    FieldError,
    Lexicalization,
    common_refinement,
    distinctions,
    granularity,
    interlingua,
    refines,
)


class TestDistinctions:
    def test_partition_covers_field(self):
        blocks = distinctions(english_door())
        union = {p for block in blocks for p in block}
        assert union == set(english_door().field.points)

    def test_english_door_draws_two_distinctions(self):
        assert granularity(english_door()) == 2

    def test_italian_door_draws_two_distinctions(self):
        # pomello vs maniglia also yields two blocks, but different ones
        assert granularity(italian_door()) == 2
        assert distinctions(italian_door()) != distinctions(english_door())

    def test_overlapping_terms_create_finer_blocks(self):
        # Italian age: anziano/vecchio overlap on old_person, so the
        # signature of old_person differs from old_thing's
        blocks = distinctions(italian_age())
        assert frozenset({"old_person"}) in blocks


class TestRefines:
    def test_reflexive(self):
        assert refines(english_door(), english_door())

    def test_neither_door_language_refines_the_other(self):
        assert not refines(english_door(), italian_door())
        assert not refines(italian_door(), english_door())

    def test_french_refines_italian_age(self):
        # matches the imposition table: French-on-Italian loss is 0
        assert refines(french_age(), italian_age())
        assert imposition_loss(french_age(), italian_age()) == 0.0

    def test_refinement_iff_zero_imposition_loss(self):
        lexs = age_lexicalizations()
        for imposed in lexs:
            for community in lexs:
                zero_loss = imposition_loss(imposed, community) == 0.0
                assert refines(imposed, community) == zero_loss

    def test_mismatched_fields_rejected(self):
        with pytest.raises(FieldError):
            refines(english_door(), italian_age())


class TestInterlingua:
    def test_common_refinement_is_finer_than_each(self):
        lexs = age_lexicalizations()
        shared = interlingua(lexs)
        for lex in lexs:
            assert refines(shared, lex)

    def test_interlingua_is_a_partition(self):
        shared = interlingua(age_lexicalizations())
        assert shared.is_partition()

    def test_interlingua_erases_overlap_structure(self):
        # Spanish distinguishes mayor from anciano by REGISTER on
        # overlapping extents; the interlingua has no overlaps at all —
        # the nuance is legislated away
        shared = interlingua(age_lexicalizations())
        spanish = age_lexicalizations()[1]
        assert not spanish.is_partition()
        assert shared.is_partition()

    def test_block_count_bounded_by_field(self):
        blocks = common_refinement(age_lexicalizations())
        assert len(blocks) <= len(age_lexicalizations()[0].field)

    def test_empty_input_rejected(self):
        with pytest.raises(FieldError):
            common_refinement([])

    def test_mixed_fields_rejected(self):
        with pytest.raises(FieldError):
            common_refinement([english_door(), italian_age()])


# ---------------------------------------------------------------------- #
# property-based
# ---------------------------------------------------------------------- #

FIELD = random_field(0, n_points=5)


@st.composite
def lex(draw, language):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_lexicalization(seed, FIELD, language=language, n_terms=3)


@settings(max_examples=50, deadline=None)
@given(lex("A"), lex("B"))
def test_interlingua_refines_both(a, b):
    shared = interlingua([a, b])
    assert refines(shared, a)
    assert refines(shared, b)


@settings(max_examples=50, deadline=None)
@given(lex("A"), lex("B"))
def test_refinement_implies_zero_loss(a, b):
    if refines(a, b):
        assert imposition_loss(a, b) == 0.0


@settings(max_examples=50, deadline=None)
@given(lex("A"))
def test_granularity_bounds(a):
    assert 1 <= granularity(a) <= len(FIELD)
