"""Unit tests for semantic fields and lexicalizations."""

import pytest

from repro.corpora.lexical import (
    AGE_FIELD,
    DOOR_FIELD,
    age_lexicalizations,
    english_door,
    french_age,
    italian_age,
    italian_door,
    spanish_age,
)
from repro.semiotics import (
    FieldError,
    Lexicalization,
    SemanticField,
    aligned,
    correspondence_table,
    overlap_matrix,
    render_table,
)


class TestField:
    def test_membership(self):
        assert "round_knob" in DOOR_FIELD
        assert "piano" not in DOOR_FIELD
        assert len(DOOR_FIELD) == 4

    def test_empty_field_rejected(self):
        with pytest.raises(FieldError):
            SemanticField("void", frozenset())


class TestLexicalization:
    def test_extents_and_terms(self):
        english = english_door()
        assert english.terms == ["door handle", "doorknob"]
        assert english.extent("doorknob") == frozenset({"round_knob", "twist_grip"})

    def test_terms_for_point(self):
        italian = italian_door()
        assert italian.terms_for("round_knob") == frozenset({"pomello"})
        assert italian.terms_for("twist_grip") == frozenset({"maniglia"})

    def test_unknown_point_rejected(self):
        with pytest.raises(FieldError):
            english_door().terms_for("piano")

    def test_unknown_term_rejected(self):
        with pytest.raises(FieldError):
            english_door().extent("maniglia")

    def test_uncovered_point_rejected(self):
        with pytest.raises(FieldError):
            Lexicalization("bad", DOOR_FIELD, {"knob": {"round_knob"}})

    def test_empty_extent_rejected(self):
        with pytest.raises(FieldError):
            Lexicalization(
                "bad",
                DOOR_FIELD,
                {"knob": set(), "handle": DOOR_FIELD.points},
            )

    def test_stray_point_rejected(self):
        with pytest.raises(FieldError):
            Lexicalization(
                "bad",
                DOOR_FIELD,
                {"knob": {"piano"}, "handle": DOOR_FIELD.points},
            )

    def test_partition_check(self):
        assert english_door().is_partition()
        assert italian_door().is_partition()
        # Italian age terms overlap on old_person: a covering, not a partition
        assert not italian_age().is_partition()

    def test_primary_term_prefers_specific(self):
        spanish = spanish_age()
        # anciano (1 point) beats viejo (2 points) on old_person
        assert spanish.primary_term_for("old_person") == "anciano"
        assert spanish.primary_term_for("old_thing") == "viejo"


class TestOverlapSchema:
    """T1: the doorknob/pomello schema, recomputed."""

    def test_matrix_reproduces_the_paper_schema(self):
        matrix = overlap_matrix(english_door(), italian_door())
        # pomelli are, in general, doorknobs:
        assert matrix[("doorknob", "pomello")] == 1
        # ...but some doorknobs are, for the Italian, maniglie:
        assert matrix[("doorknob", "maniglia")] == 1
        # and no pomello is a door handle:
        assert matrix[("door handle", "pomello")] == 0
        assert matrix[("door handle", "maniglia")] == 2

    def test_mismatched_fields_rejected(self):
        with pytest.raises(FieldError):
            overlap_matrix(english_door(), italian_age())

    def test_alignment(self):
        assert not aligned(english_door(), italian_door())
        assert aligned(english_door(), english_door())


class TestCorrespondenceTable:
    """T2: the age-adjective table, recomputed."""

    def test_paper_rows(self):
        rows = correspondence_table(age_lexicalizations())
        by_point = {row["point"]: row for row in rows}
        # vecchio / viejo / vieux on things
        assert by_point["old_thing"]["Italian"] == ("vecchio",)
        assert by_point["old_thing"]["Spanish"] == ("viejo",)
        assert by_point["old_thing"]["French"] == ("vieux",)
        # añejo is Spanish-only for beverages
        assert by_point["aged_beverage"]["Spanish"] == ("añejo",)
        assert by_point["aged_beverage"]["Italian"] == ("vecchio",)
        # seniority: anziano / antiguo / ancien
        assert by_point["senior_in_function"]["Italian"] == ("anziano",)
        assert by_point["senior_in_function"]["Spanish"] == ("antiguo",)
        assert by_point["senior_in_function"]["French"] == ("ancien",)
        # mayor is the Spanish softer form
        assert by_point["respected_elder"]["Spanish"] == ("mayor",)
        # antico / antiguo / antique
        assert by_point["antique_artifact"]["Italian"] == ("antico",)
        assert by_point["antique_artifact"]["Spanish"] == ("antiguo",)
        assert by_point["antique_artifact"]["French"] == ("antique",)

    def test_anziano_broader_than_anciano(self):
        # "anziano has a broader meaning than the other two adjectives"
        assert len(italian_age().extent("anziano")) > len(spanish_age().extent("anciano"))
        assert len(italian_age().extent("anziano")) > len(french_age().extent("âgé"))

    def test_render_table_contains_all_terms(self):
        rows = correspondence_table(age_lexicalizations())
        text = render_table(rows, ["Italian", "Spanish", "French"])
        for term in ("vecchio", "añejo", "mayor", "ancien", "antique"):
            assert term in text

    def test_empty_input_rejected(self):
        with pytest.raises(FieldError):
            correspondence_table([])

    def test_mixed_fields_rejected(self):
        with pytest.raises(FieldError):
            correspondence_table([english_door(), italian_age()])
