"""Test package."""
