"""Tests for the JSON bench harness: schema, determinism, coverage.

These encode the PR's acceptance criteria: ``python -m repro bench``
writes valid ``BENCH_B1.json`` … ``BENCH_B10.json`` whose counters are
non-zero for at least the tableau, hierarchy, and store subsystems, and
two runs over the seeded inputs produce identical counter values.
"""

import json
import os
from pathlib import Path

import pytest

from repro.bench import (
    BENCHES,
    SCHEMA_VERSION,
    run_bench,
    run_suite,
    validate_record,
)

ALL_IDS = sorted(BENCHES)

# keep the scaled workloads at test scale regardless of the caller's shell
os.environ.setdefault("REPRO_B8_SCALE", "small")
os.environ.setdefault("REPRO_B9_SCALE", "tiny")
os.environ.setdefault("REPRO_B10_SCALE", "tiny")
os.environ.setdefault("REPRO_B12_SCALE", "tiny")
os.environ.setdefault("REPRO_B13_SCALE", "tiny")


@pytest.fixture(scope="module")
def suite_records(tmp_path_factory):
    """Run the full suite once; return {bench_id: parsed record}."""
    out = tmp_path_factory.mktemp("bench")
    paths = run_suite(out)
    return {
        path.name.removeprefix("BENCH_").removesuffix(".json"): json.loads(
            path.read_text(encoding="utf-8")
        )
        for path in paths
    }


class TestSchema:
    def test_all_benches_written(self, suite_records):
        assert sorted(suite_records) == ALL_IDS

    def test_every_record_validates(self, suite_records):
        for bench_id, record in suite_records.items():
            assert validate_record(record) == [], bench_id

    def test_schema_fields(self, suite_records):
        for record in suite_records.values():
            assert record["schema_version"] == SCHEMA_VERSION
            assert record["bench"] in BENCHES
            assert record["wall_time_s"] > 0
            assert isinstance(record["params"], dict) and record["params"]
            assert all(
                isinstance(v, int) and v >= 0 for v in record["counters"].values()
            )

    def test_validate_record_rejects_garbage(self):
        assert validate_record(None)
        assert validate_record({}) == [
            f"missing key {key!r}"
            for key in (
                "schema_version",
                "bench",
                "description",
                "params",
                "wall_time_s",
                "counters",
                "timers",
                "histograms",
            )
        ]
        good = run_bench("B4")
        assert validate_record(good) == []
        bad = dict(good, schema_version=99)
        assert validate_record(bad)
        bad = dict(good, wall_time_s="fast")
        assert validate_record(bad)

    def test_run_bench_unknown_id(self):
        with pytest.raises(KeyError):
            run_bench("B99")


class TestCounterCoverage:
    """Acceptance: non-zero counters from tableau, hierarchy, and store."""

    def test_b1_has_tableau_and_hierarchy_counters(self, suite_records):
        counters = suite_records["B1"]["counters"]
        assert counters["tableau.expansions"] > 0
        assert counters["tableau.solve_calls"] > 0
        assert counters["hierarchy.classifications"] > 0
        # classification of the Horn/EL workloads goes through the
        # consequence-based saturation fast path, not told seeding
        assert counters["saturation.rules_fired"] > 0
        assert counters["intern.table_size"] > 0
        assert counters["reasoner.subs_cache_misses"] > 0

    def test_b3_has_store_counters(self, suite_records):
        counters = suite_records["B3"]["counters"]
        assert counters["store.index_lookups"] > 0
        assert counters["store.scan_lookups"] > 0
        assert counters["store.query.joins"] > 0
        assert counters["materialize.facts_added"] > 0
        # materialization reaches down into the tableau too
        assert counters["tableau.solve_calls"] > 0

    def test_b7_has_serve_counters(self, suite_records):
        counters = suite_records["B7"]["counters"]
        assert counters["serve.batches"] > 0
        assert counters["serve.batched_hits"] > 0
        assert counters["serve.admitted"] >= 500
        params = suite_records["B7"]["params"]
        assert params["requests"] == 500
        # the acceptance criterion, re-checked from the committed record:
        # batched serving beats 500 one-shot calls by >= 3x tableau tests
        assert (
            params["served_tableau_tests"] * 3 <= params["one_shot_tableau_tests"]
        )
        # schema v2: latency/batch distributions are histograms with
        # quantiles from the sample rings, not params entries
        histograms = suite_records["B7"]["histograms"]
        latency = histograms["serve.request_latency_ms"]
        assert latency["count"] == params["requests"]
        assert latency["p99"] >= latency["p50"] > 0
        batch = histograms["serve.batch_size"]
        assert batch["count"] > 0
        assert batch["max"] >= 1

    def test_b8_has_incremental_counters(self, suite_records):
        counters = suite_records["B8"]["counters"]
        assert counters["incremental.runs"] > 0
        assert counters["incremental.reused_edges"] > 0
        # the saturation-classified predecessor has no tableau caches to
        # carry; the seeded rerun answers its subsumption questions from
        # the shared saturation oracle instead
        assert counters["hierarchy.oracle_hits"] > 0
        params = suite_records["B8"]["params"]
        means = params["mean_tableau_tests_per_swap"]
        # the acceptance criterion: >= 5x fewer tableau tests per swap
        assert means["incremental"] * 5 <= means["full"]
        histograms = suite_records["B8"]["histograms"]
        assert (
            histograms["bench.b8.tableau_tests_per_swap"]["count"]
            == params["edits"]
        )
        assert (
            histograms["bench.b8.full_swap_ms"]["count"]
            == params["full_baseline_samples"]
        )

    def test_b9_has_mixed_traffic_counters(self, suite_records):
        record = suite_records["B9"]
        counters = record["counters"]
        params = record["params"]
        assert counters["bench.b9.queries"] == params["queries"]
        assert counters["bench.b9.edits"] == params["edits"]
        assert counters["editlog.appends"] == params["edits"]
        assert counters["serve.tbox_swaps"] >= 1
        # the mixed run's query latencies and per-edit ack latencies are
        # histograms with quantiles, schema-v2 style
        histograms = record["histograms"]
        assert (
            histograms["bench.b9.mixed_query_latency_ms"]["count"]
            == params["queries"]
        )
        assert histograms["bench.b9.edit_ack_ms"]["count"] == params["edits"]
        assert (
            histograms["serve.swap_visibility_ms"]["count"] == params["edits"]
        )
        # the acceptance shape, re-checked from the record: the mixed p99
        # stays within the scale's factor of the pure-query p99, and the
        # crash scenario lost nothing that was acknowledged
        assert params["mixed_p99_ms"] <= params["p99_factor_limit"] * max(
            params["baseline_p99_ms"], 1.0
        )
        assert params["kill_and_recover"]["lost_acknowledged_edits"] == 0
        assert params["kill_and_recover"]["recovered_version"] >= 2

    def test_committed_b9_record_shows_mixed_claims(self):
        """The checked-in BENCH_B9.json carries the full-scale claims:
        query p99 under a continuous edit stream within 2x the pure-query
        p99, and kill-and-recover losing zero acknowledged edits."""
        path = Path(__file__).resolve().parents[2] / "BENCH_B9.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["schema_version"] == SCHEMA_VERSION
        params = record["params"]
        assert params["scale"] == "full"
        assert params["p99_factor_limit"] == 2.0
        assert params["mixed_p99_ms"] <= 2.0 * max(params["baseline_p99_ms"], 1.0)
        assert params["kill_and_recover"]["lost_acknowledged_edits"] == 0
        # the throttle actually degraded swap frequency at full scale:
        # not every edit in the stream got its own synchronous swap
        statuses = params["swap_statuses"]
        assert statuses.get("deferred", 0) + statuses.get("coalesced", 0) > 0
        assert record["counters"]["editlog.appends"] == params["edits"]

    def test_committed_b8_record_shows_reduction(self):
        """The checked-in BENCH_B8.json carries the >= 5x full-scale claim."""
        path = Path(__file__).resolve().parents[2] / "BENCH_B8.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["params"]["scale"] == "full"
        means = record["params"]["mean_tableau_tests_per_swap"]
        assert means["incremental"] * 5 <= means["full"]
        assert record["counters"]["incremental.runs"] == record["params"]["edits"]

    def test_b10_has_saturation_counters(self, suite_records):
        record = suite_records["B10"]
        counters = record["counters"]
        params = record["params"]
        assert counters["saturation.rules_fired"] > 0
        assert counters.get("saturation.tableau_fallbacks", 0) == 0
        assert counters["intern.table_size"] > 0
        # the acceptance criterion, re-checked from the record: the
        # saturation fast path classifies with >= 5x fewer tableau tests
        assert (
            params["saturation_tableau_tests"] * 5
            <= params["enhanced_tableau_tests"]
        )
        histograms = record["histograms"]
        assert histograms["bench.b10.enhanced_classify_ms"]["count"] == 1
        assert histograms["bench.b10.saturation_classify_ms"]["count"] == 1

    def test_committed_b10_record_shows_reduction(self):
        """The checked-in BENCH_B10.json carries the full-scale claims:
        >= 5x fewer tableau tests AND >= 5x less wall-clock than the
        enhanced baseline on the B1-scale workload."""
        path = Path(__file__).resolve().parents[2] / "BENCH_B10.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["schema_version"] == SCHEMA_VERSION
        params = record["params"]
        assert params["scale"] == "full"
        assert params["tbox"] == {
            "seed": 0,
            "n_defined": 22,
            "n_primitive": 8,
            "n_roles": 3,
        }
        assert params["saturation_tableau_tests"] * 5 <= params[
            "enhanced_tableau_tests"
        ]
        histograms = record["histograms"]
        enhanced_ms = histograms["bench.b10.enhanced_classify_ms"]["mean"]
        saturation_ms = histograms["bench.b10.saturation_classify_ms"]["mean"]
        assert saturation_ms * 5 <= enhanced_ms

    def test_b12_has_instdb_counters(self, suite_records):
        record = suite_records["B12"]
        counters = record["counters"]
        params = record["params"]
        assert counters["instdb.individuals"] > 0
        assert counters["instdb.told_assertions"] > 0
        assert counters["instdb.derived_rows"] > 0
        assert counters["instdb.materialize_runs"] == 3  # memory+common+big
        assert counters["instdb.queries.instances"] > 0
        assert counters["instdb.queries.types"] > 0
        assert (
            counters["bench.b12.common_individuals"]
            == params["common_individuals"]
        )
        assert counters["bench.b12.big_individuals"] == params["big_individuals"]
        # memory and sqlite derived identical row counts (cross-checked
        # in the workload; re-check the recorded shape here)
        assert params["derived_rows"]["big"] > params["derived_rows"]["common"]
        histograms = record["histograms"]
        assert (
            histograms["bench.b12.sqlite_big_point_lookup_ms"]["count"]
            == params["point_lookups"]
        )
        assert (
            histograms["bench.b12.sqlite_big_instances_ms"]["count"]
            == params["instance_queries"]
        )
        assert params["bytes"]["sqlite_big_file"] > 0

    def test_b12_counters_are_deterministic(self):
        """B12 is exempt from the generic determinism test only because
        its *params* carry wall-clock timings; the counters — row counts
        over seeded data — must still be identical run to run."""
        first = run_bench("B12")
        second = run_bench("B12")
        assert first["counters"] == second["counters"]

    def test_committed_b12_record_shows_crossover(self):
        """The checked-in BENCH_B12.json carries the full-scale claims:
        a million individuals load + materialize in sqlite, point lookups
        and instances() stay indexed (near-flat from 1e5 to 1e6), and the
        sqlite file undercuts the in-memory footprint estimate."""
        path = Path(__file__).resolve().parents[2] / "BENCH_B12.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["schema_version"] == SCHEMA_VERSION
        params = record["params"]
        assert params["scale"] == "full"
        assert params["big_individuals"] == 1_000_000
        assert (
            params["instances_latency_ratio_big_vs_common"]
            <= params["flatness_factor_limit"]
        )
        assert record["counters"]["instdb.derived_rows"] > 1_000_000
        assert (
            params["bytes"]["sqlite_big_file"]
            < params["bytes"]["memory_estimated_at_big"]
        )

    def test_b13_has_scaling_sweep(self, suite_records):
        params = suite_records["B13"]["params"]
        # the sweep covers the single-process baseline plus every N
        assert "0" in params["sweep"]
        for workers in params["worker_counts"]:
            entry = params["sweep"][str(workers)]
            assert entry["throughput_rps"] > 0
            assert entry["p99_ms"] >= entry["p50_ms"]
            assert entry["swap_propagation_ms"] >= entry["swap_ack_ms"]
        # the worker-kill phase lost nothing (asserted in the bench;
        # recorded here) and actually restarted a worker
        assert params["worker_kill"]["requests_across_kill"] > 0
        assert params["worker_kill"]["restarts"] >= 1
        assert params["available_cpus"] >= 1
        assert params["speedup_gate"] in ("3x-at-4-workers", "no-collapse-floor")

    def test_committed_b13_record_shows_scaling(self):
        """The checked-in BENCH_B13.json carries the full-scale sweep:
        worker counts 1/2/4/8, the swap-propagation measurements, and a
        zero-loss worker kill.  The 3x-at-4-workers speedup is only
        asserted when the record was measured on >=4 usable CPUs — on a
        smaller box the committed gate is the no-collapse floor, and
        ``available_cpus`` says so."""
        path = Path(__file__).resolve().parents[2] / "BENCH_B13.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["schema_version"] == SCHEMA_VERSION
        params = record["params"]
        assert params["scale"] == "full"
        assert params["worker_counts"] == [1, 2, 4, 8]
        base_rps = params["sweep"]["1"]["throughput_rps"]
        if params["speedup_gate"] == "3x-at-4-workers":
            assert params["available_cpus"] >= 4
            assert params["sweep"]["4"]["throughput_rps"] >= 3.0 * base_rps
        else:
            assert params["speedup_at_peak"] >= 0.4
        assert params["worker_kill"]["requests_across_kill"] > 0
        assert params["worker_kill"]["restarts"] >= 1

    def test_b6_has_robust_counters(self, suite_records):
        counters = suite_records["B6"]["counters"]
        assert counters["robust.exhaustions"] > 0
        assert counters["robust.escalations"] > 0
        assert counters["robust.unknown_verdicts"] > 0
        assert counters["hierarchy.unknown_edges"] > 0
        params = suite_records["B6"]["params"]
        assert params["initial_max_nodes"] == 10
        assert params["classify_escalation_rounds"] >= 1
        assert params["probe_escalation_rounds"] >= 1

    def test_every_bench_records_some_work(self, suite_records):
        for bench_id, record in suite_records.items():
            assert any(v > 0 for v in record["counters"].values()), bench_id


class TestDeterminism:
    @pytest.mark.parametrize("bench_id", ALL_IDS)
    def test_two_runs_identical_counters(self, bench_id):
        if not BENCHES[bench_id].deterministic:
            pytest.skip(
                f"{bench_id} records load-dependent measurements (live "
                "server batches/latencies, or wall-clock params); its "
                "invariants are asserted inside the workload"
            )
        first = run_bench(bench_id)
        second = run_bench(bench_id)
        assert first["counters"] == second["counters"]
        assert first["params"] == second["params"]
        # timer *counts* are deterministic even though durations are not
        first_timer_counts = {k: v["count"] for k, v in first["timers"].items()}
        second_timer_counts = {k: v["count"] for k, v in second["timers"].items()}
        assert first_timer_counts == second_timer_counts


class TestSuiteWriter:
    def test_only_subset(self, tmp_path):
        paths = run_suite(tmp_path, only=["B2", "B5"])
        assert [p.name for p in paths] == ["BENCH_B2.json", "BENCH_B5.json"]

    def test_files_end_with_newline(self, tmp_path):
        (path,) = run_suite(tmp_path, only=["B4"])
        assert path.read_text(encoding="utf-8").endswith("\n")

    def test_benchmarks_harness_wrapper_reexports(self):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "bench_wrapper",
            pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "harness.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.BENCHES is BENCHES
        assert callable(module.main)
