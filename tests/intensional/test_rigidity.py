"""Unit tests for the OntoClean-style rigidity analysis."""

import pytest

from repro.intensional import (
    IntensionalRelation,
    Rigidity,
    World,
    WorldError,
    WorldSpace,
    check_taxonomy,
    classify_rigidity,
    essential_instances,
    instances_somewhere,
    rigidity_profile,
)
from repro.logic import Structure


def person_student_space() -> WorldSpace:
    """Three snapshots of two people: alice is always a person; her being
    a student comes and goes; bob is never either."""

    def make(name, students):
        return World(
            name,
            Structure(
                ["alice", "bob"],
                constants={},
                relations={
                    "person": [("alice",)],
                    "student": [(s,) for s in students],
                    "likes": [("alice", "bob")],
                },
            ),
        )

    return WorldSpace([make("w0", []), make("w1", ["alice"]), make("w2", [])])


def lift(space: WorldSpace, predicate: str) -> IntensionalRelation:
    return IntensionalRelation.from_predicate(predicate, 1, space)


class TestClassification:
    def test_rigid_property(self):
        space = person_student_space()
        assert classify_rigidity(lift(space, "person")) is Rigidity.RIGID

    def test_anti_rigid_property(self):
        space = person_student_space()
        assert classify_rigidity(lift(space, "student")) is Rigidity.ANTI_RIGID

    def test_empty_property(self):
        space = person_student_space()
        assert classify_rigidity(lift(space, "unicorn")) is Rigidity.EMPTY

    def test_semi_rigid_property(self):
        def make(name, extension):
            return World(
                name,
                Structure(
                    ["a", "b"],
                    relations={"P": [(x,) for x in extension]},
                ),
            )

        space = WorldSpace([make("w0", ["a", "b"]), make("w1", ["a"])])
        relation = IntensionalRelation.from_predicate("P", 1, space)
        # a is essential, b is not: semi-rigid
        assert classify_rigidity(relation) is Rigidity.SEMI_RIGID

    def test_instance_sets(self):
        space = person_student_space()
        student = lift(space, "student")
        assert instances_somewhere(student) == frozenset({"alice"})
        assert essential_instances(student) == frozenset()

    def test_arity_guard(self):
        space = person_student_space()
        binary = IntensionalRelation.from_predicate("likes", 2, space)
        with pytest.raises(WorldError):
            classify_rigidity(binary)


class TestTaxonomyCheck:
    def profile(self):
        space = person_student_space()
        return rigidity_profile([lift(space, "person"), lift(space, "student")])

    def test_profile(self):
        profile = self.profile()
        assert profile == {
            "person": Rigidity.RIGID,
            "student": Rigidity.ANTI_RIGID,
        }

    def test_backbone_violation_detected(self):
        # the classic OntoClean error: person ⊑ student
        violations = check_taxonomy(self.profile(), [("person", "student")])
        assert len(violations) == 1
        assert "cannot subsume" in str(violations[0])

    def test_correct_direction_passes(self):
        assert check_taxonomy(self.profile(), [("student", "person")]) == []

    def test_unknown_name_rejected(self):
        with pytest.raises(WorldError):
            check_taxonomy(self.profile(), [("ghost", "person")])
        with pytest.raises(WorldError):
            check_taxonomy(self.profile(), [("person", "ghost")])
