"""Unit tests for the circularity analysis and the over-breadth exhibits."""

from repro.intensional import (
    GUARINO_DEPENDENCIES,
    Dependency,
    analyze,
    c_program,
    contradiction,
    dependency_graph,
    grocery_list,
    guarino_circularity,
    kripke_circularity,
    paper_exhibits,
    qualification_rate,
    qualifies,
    random_literal_set,
    tautology_set,
    tax_return_form,
    witness_model,
)


class TestCircularity:
    def test_guarino_is_circular(self):
        report = guarino_circularity()
        assert report.is_circular
        (component,) = report.components
        assert component == frozenset(
            {"intensional_relation", "possible_world", "extensional_relation"}
        )

    def test_witness_cycle_is_a_real_cycle(self):
        report = guarino_circularity()
        cycle = report.witness_cycle
        assert cycle[0] == cycle[-1]
        graph = dependency_graph(GUARINO_DEPENDENCIES)
        for u, v in zip(cycle, cycle[1:]):
            assert graph.has_edge(u, v)

    def test_kripke_control_is_acyclic(self):
        report = kripke_circularity()
        assert not report.is_circular
        assert report.components == ()

    def test_explain_mentions_every_step(self):
        text = guarino_circularity().explain()
        assert "circularity detected" in text
        assert "intensional_relation" in text
        assert "possible_world" in text

    def test_explain_clean_bill(self):
        assert "No definitional circularity" in kripke_circularity().explain()

    def test_analyze_custom_dependencies(self):
        report = analyze(
            [
                Dependency("a", "b", "a needs b"),
                Dependency("b", "a", "b needs a"),
                Dependency("c", "a", "c needs a"),
            ]
        )
        assert report.is_circular
        assert frozenset({"a", "b"}) in report.components

    def test_self_dependency_is_circular(self):
        report = analyze([Dependency("a", "a", "a presupposes itself")])
        assert report.is_circular


class TestOverbreadth:
    def test_tautologies_qualify(self):
        assert qualifies(tautology_set())

    def test_grocery_list_qualifies(self):
        assert qualifies(grocery_list())

    def test_tax_return_qualifies(self):
        assert qualifies(tax_return_form())

    def test_c_program_qualifies(self):
        assert qualifies(c_program())

    def test_contradiction_is_the_only_reject(self):
        exhibits = paper_exhibits()
        verdicts = {c.title: qualifies(c) for c in exhibits}
        assert verdicts == {
            "3 tautologies": True,
            "grocery list": True,
            "tax return form": True,
            "C program": True,
            "contradiction": False,
        }

    def test_witness_model_satisfies_axioms(self):
        candidate = grocery_list()
        model = witness_model(candidate)
        assert model is not None
        assert model.satisfies_all(candidate.axioms)

    def test_witness_model_none_for_contradiction(self):
        assert witness_model(contradiction()) is None

    def test_random_literal_sets_mostly_qualify(self):
        rate = qualification_rate(seed=7, samples=60, n_literals=3)
        assert rate > 0.5  # the paper's point: the test excludes almost nothing

    def test_qualification_rate_decreases_with_literals(self):
        few = qualification_rate(seed=1, samples=60, n_literals=2)
        many = qualification_rate(seed=1, samples=60, n_literals=10)
        assert many <= few

    def test_random_literal_set_deterministic_given_seed(self):
        import random

        c1 = random_literal_set(random.Random(5))
        c2 = random_literal_set(random.Random(5))
        assert c1.axioms == c2.axioms
