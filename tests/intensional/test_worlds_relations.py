"""Unit tests for worlds, world spaces, and intensional relations."""

import pytest

from repro.intensional import (
    ExtensionalRelation,
    IntensionalRelation,
    World,
    WorldError,
    WorldSpace,
    blocks_world_space,
    paper_world,
)
from repro.logic import Structure


def two_worlds() -> WorldSpace:
    w1 = World(
        "w1",
        Structure(
            ["a", "b"],
            constants={"a": "a", "b": "b"},
            relations={"above": [("a", "b")]},
        ),
    )
    w2 = World(
        "w2",
        Structure(
            ["a", "b"],
            constants={"a": "a", "b": "b"},
            relations={"above": [("b", "a")]},
        ),
    )
    return WorldSpace([w1, w2])


class TestWorlds:
    def test_paper_world_matches_eq_1(self):
        w = paper_world()
        assert w.relation("above") == frozenset({("a", "b"), ("a", "d"), ("b", "d")})

    def test_world_space_basics(self):
        space = two_worlds()
        assert len(space) == 2
        assert "w1" in space
        assert space.world("w2").relation("above") == frozenset({("b", "a")})
        assert space.domain == frozenset({"a", "b"})

    def test_empty_space_rejected(self):
        with pytest.raises(WorldError):
            WorldSpace([])

    def test_duplicate_names_rejected(self):
        w = paper_world()
        with pytest.raises(WorldError):
            WorldSpace([w, w])

    def test_mismatched_domains_rejected(self):
        w1 = World("w1", Structure(["a"], constants={}, relations={}))
        w2 = World("w2", Structure(["a", "b"], constants={}, relations={}))
        with pytest.raises(WorldError):
            WorldSpace([w1, w2])

    def test_non_rigid_constants_rejected(self):
        w1 = World("w1", Structure(["a", "b"], constants={"c": "a"}, relations={}))
        w2 = World("w2", Structure(["a", "b"], constants={"c": "b"}, relations={}))
        with pytest.raises(WorldError):
            WorldSpace([w1, w2])

    def test_unknown_world_lookup(self):
        with pytest.raises(WorldError):
            two_worlds().world("nope")

    def test_blocks_world_space_all_legal(self):
        space = blocks_world_space(("a", "b", "c"))
        # strict partial orders on 3 elements: 19
        assert len(space) == 19
        for world in space:
            above = world.relation("above")
            assert all(x != y for x, y in above)  # irreflexive

    def test_blocks_world_truncation(self):
        space = blocks_world_space(("a", "b", "c", "d"), max_worlds=10)
        assert len(space) == 10


class TestExtensionalRelation:
    def test_membership_and_len(self):
        rel = ExtensionalRelation("above", 2, frozenset({("a", "b")}))
        assert ("a", "b") in rel
        assert ("b", "a") not in rel
        assert len(rel) == 1

    def test_arity_checked(self):
        with pytest.raises(WorldError):
            ExtensionalRelation("above", 2, frozenset({("a",)}))

    def test_str_matches_paper_eq_1(self):
        rel = ExtensionalRelation(
            "above", 2, frozenset({("a", "b"), ("a", "d"), ("b", "d")})
        )
        assert str(rel) == "[above] = {('a', 'b'), ('a', 'd'), ('b', 'd')}"


class TestIntensionalRelation:
    def test_at_world_gives_eq_3(self):
        space = two_worlds()
        rel = IntensionalRelation.from_predicate("above", 2, space)
        assert rel.at("w1").tuples == frozenset({("a", "b")})
        assert rel.at("w2").tuples == frozenset({("b", "a")})

    def test_totality_enforced(self):
        space = two_worlds()
        with pytest.raises(WorldError):
            IntensionalRelation("above", 2, space, {"w1": [("a", "b")]})

    def test_unknown_world_in_mapping_rejected(self):
        space = two_worlds()
        with pytest.raises(WorldError):
            IntensionalRelation(
                "above", 2, space, {"w1": [], "w2": [], "ghost": []}
            )

    def test_arity_and_domain_checked(self):
        space = two_worlds()
        with pytest.raises(WorldError):
            IntensionalRelation("above", 2, space, {"w1": [("a",)], "w2": []})
        with pytest.raises(WorldError):
            IntensionalRelation("above", 2, space, {"w1": [("a", "zz")], "w2": []})

    def test_rigidity(self):
        space = two_worlds()
        varying = IntensionalRelation.from_predicate("above", 2, space)
        assert not varying.is_rigid()
        rigid = IntensionalRelation(
            "above", 2, space, {"w1": [("a", "b")], "w2": [("a", "b")]}
        )
        assert rigid.is_rigid()

    def test_worlds_where(self):
        space = two_worlds()
        rel = IntensionalRelation.from_predicate("above", 2, space)
        assert rel.worlds_where(("a", "b")) == frozenset({"w1"})

    def test_from_rule(self):
        space = two_worlds()
        inverted = IntensionalRelation.from_rule(
            "below",
            2,
            space,
            lambda w: {(y, x) for x, y in w.relation("above")},
        )
        assert inverted.at("w1").tuples == frozenset({("b", "a")})

    def test_equality_and_hash(self):
        space = two_worlds()
        r1 = IntensionalRelation.from_predicate("above", 2, space)
        r2 = IntensionalRelation.from_predicate("above", 2, space)
        assert r1 == r2
        assert hash(r1) == hash(r2)
