"""Unit tests for ontological commitments and the approximation metric."""

import pytest

from repro.intensional import (
    CommitmentError,
    IntensionalRelation,
    OntologicalCommitment,
    World,
    WorldSpace,
    approximation_report,
    is_ontonomy_per_guarino,
)
from repro.logic import Atom, FNot, Structure, TConst, TVar, Forall, FImplies, Vocabulary


def space_two_blocks() -> WorldSpace:
    def make(name, above):
        return World(
            name,
            Structure(
                ["a", "b"],
                constants={"a": "a", "b": "b"},
                relations={"above": above},
            ),
        )

    return WorldSpace(
        [
            make("none", []),
            make("ab", [("a", "b")]),
            make("ba", [("b", "a")]),
        ]
    )


def commitment() -> OntologicalCommitment:
    space = space_two_blocks()
    vocabulary = Vocabulary(constants=frozenset({"a", "b"}), predicates={"above": 2})
    rel = IntensionalRelation.from_predicate("above", 2, space)
    return OntologicalCommitment(vocabulary, space, {"above": rel})


class TestCommitment:
    def test_extensional_model_per_world(self):
        k = commitment()
        m = k.extensional_model("ab")
        assert m.relations["above"] == frozenset({("a", "b")})
        assert m.constants == {"a": "a", "b": "b"}

    def test_intended_models_one_per_world(self):
        k = commitment()
        assert len(k.intended_models()) == 3

    def test_missing_predicate_rejected(self):
        space = space_two_blocks()
        vocabulary = Vocabulary(constants=frozenset(), predicates={"above": 2})
        with pytest.raises(CommitmentError):
            OntologicalCommitment(vocabulary, space, {})

    def test_arity_mismatch_rejected(self):
        space = space_two_blocks()
        vocabulary = Vocabulary(constants=frozenset(), predicates={"above": 1})
        rel = IntensionalRelation.from_predicate("above", 2, space)
        with pytest.raises(CommitmentError):
            OntologicalCommitment(vocabulary, space, {"above": rel})

    def test_unknown_constant_rejected(self):
        space = space_two_blocks()
        vocabulary = Vocabulary(constants=frozenset({"zz"}), predicates={"above": 2})
        rel = IntensionalRelation.from_predicate("above", 2, space)
        with pytest.raises(CommitmentError):
            OntologicalCommitment(vocabulary, space, {"above": rel})

    def test_function_symbols_rejected(self):
        space = space_two_blocks()
        vocabulary = Vocabulary(
            constants=frozenset(), functions={"f": 1}, predicates={"above": 2}
        )
        rel = IntensionalRelation.from_predicate("above", 2, space)
        with pytest.raises(CommitmentError):
            OntologicalCommitment(vocabulary, space, {"above": rel})


class TestApproximation:
    def test_irreflexivity_axiom_captures_all_intended(self):
        k = commitment()
        x = TVar("x")
        irreflexive = Forall("x", FNot(Atom("above", (x, x))))
        report = approximation_report([irreflexive], k)
        assert report.intended == 3
        assert report.captured == 3  # all intended worlds are irreflexive
        assert report.admitted > 0  # but plenty of junk is admitted too
        assert report.recall == 1.0
        assert report.precision < 1.0

    def test_tight_axioms_raise_precision(self):
        k = commitment()
        a, b = TConst("a"), TConst("b")
        x, y = TVar("x"), TVar("y")
        axioms = [
            Forall("x", FNot(Atom("above", (x, x)))),
            # antisymmetry
            Forall(
                "x",
                Forall(
                    "y",
                    FImplies(Atom("above", (x, y)), FNot(Atom("above", (y, x)))),
                ),
            ),
        ]
        loose = approximation_report([axioms[0]], k)
        tight = approximation_report(axioms, k)
        assert tight.admitted < loose.admitted
        assert tight.precision > loose.precision

    def test_contradiction_captures_nothing(self):
        k = commitment()
        a = TConst("a")
        contradiction = Atom("above", (a, a))
        x = TVar("x")
        axioms = [contradiction, Forall("x", FNot(Atom("above", (x, x))))]
        report = approximation_report(axioms, k)
        assert report.captured == 0
        assert report.recall == 0.0

    def test_empty_axiom_set_captures_everything(self):
        k = commitment()
        report = approximation_report([], k)
        assert report.captured == report.intended == 3
        # every structure over D qualifies: 2^4 relations minus 3 intended
        assert report.admitted == 16 - 3

    def test_is_ontonomy_per_guarino_overbreadth(self):
        """The critique: with 'approximates' read literally, almost anything passes."""
        k = commitment()
        # the empty theory is an ontonomy for the blocks commitment
        assert is_ontonomy_per_guarino([], k)
        # a contradiction is the only reject
        a = TConst("a")
        x = TVar("x")
        axioms = [Atom("above", (a, a)), Forall("x", FNot(Atom("above", (x, x))))]
        assert not is_ontonomy_per_guarino(axioms, k)

    def test_threshold_restores_discrimination(self):
        k = commitment()
        x, y = TVar("x"), TVar("y")
        good = [
            Forall("x", FNot(Atom("above", (x, x)))),
            Forall(
                "y",
                Forall(
                    "x",
                    FImplies(Atom("above", (x, y)), FNot(Atom("above", (y, x)))),
                ),
            ),
        ]
        assert is_ontonomy_per_guarino(good, k, min_jaccard=0.3)
        assert not is_ontonomy_per_guarino([], k, min_jaccard=0.3)
