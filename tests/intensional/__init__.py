"""Test package."""
