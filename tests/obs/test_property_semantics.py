"""Property: instrumentation never changes reasoning semantics.

Over seeded random TBoxes, a Reasoner queried under an active Recorder
must return exactly the answers of a fresh, uninstrumented Reasoner —
counters observe the computation, they never participate in it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpora.generators import random_tbox
from repro.dl import Atomic, Reasoner
from repro.dl.nnf import nnf_cache_clear
from repro.obs import Recorder, use_recorder


def service_answers(reasoner: Reasoner, names: list[str]) -> dict:
    """A canonical answer sheet for the standard service suite."""
    sat = {n: reasoner.is_satisfiable(Atomic(n)) for n in names}
    subs = {
        (a, b): reasoner.subsumes(Atomic(a), Atomic(b))
        for a in names
        for b in names
        if a != b
    }
    return {"sat": sat, "subs": subs, "coherent": reasoner.is_coherent()}


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_instrumented_reasoner_matches_uninstrumented(seed):
    tbox = random_tbox(seed, n_defined=4, n_primitive=3, n_roles=2)
    names = sorted(tbox.atomic_names())[:6]

    plain = service_answers(Reasoner(tbox), names)

    recorder = Recorder()
    with use_recorder(recorder):
        instrumented = service_answers(Reasoner(tbox), names)

    assert instrumented == plain
    # and the recorder really was live while the answers were computed
    assert recorder.counters.get("tableau.solve_calls", 0) > 0


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_recording_twice_gives_identical_counters(seed):
    """Counter values themselves are deterministic for a fixed TBox."""
    tbox = random_tbox(seed, n_defined=4, n_primitive=3, n_roles=2)
    names = sorted(tbox.atomic_names())[:6]

    snapshots = []
    for _ in range(2):
        # the NNF interning cache is process-global; reset it so both
        # passes start from the same (cold) memo state
        nnf_cache_clear()
        recorder = Recorder()
        with use_recorder(recorder):
            service_answers(Reasoner(tbox), names)
        snapshots.append(recorder.snapshot()["counters"])
    assert snapshots[0] == snapshots[1]
