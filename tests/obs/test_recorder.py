"""Unit tests for the repro.obs recorder layer."""

import json

import pytest

from repro import obs
from repro.obs import NULL, NullRecorder, Recorder, use_recorder


class TestRecorder:
    def test_counters_accumulate(self):
        rec = Recorder()
        rec.incr("a.b")
        rec.incr("a.b", 4)
        rec.incr("c")
        assert rec.counters == {"a.b": 5, "c": 1}

    def test_observe_summarizes(self):
        rec = Recorder()
        for value in (3.0, 1.0, 2.0):
            rec.observe("h", value)
        cell = rec.snapshot()["histograms"]["h"]
        assert cell["count"] == 3
        assert cell["min"] == 1.0
        assert cell["max"] == 3.0
        assert cell["total"] == 6.0
        assert cell["mean"] == pytest.approx(2.0)

    def test_time_context_records(self):
        rec = Recorder()
        with rec.time("span"):
            pass
        cell = rec.snapshot()["timers"]["span"]
        assert cell["count"] == 1
        assert cell["total"] >= 0

    def test_snapshot_is_a_copy(self):
        rec = Recorder()
        rec.incr("a")
        snap = rec.snapshot()
        snap["counters"]["a"] = 99
        assert rec.counters["a"] == 1

    def test_to_json_round_trips(self):
        rec = Recorder()
        rec.incr("a", 2)
        rec.observe("h", 1.5)
        rec.record_timing("t", 0.25)
        data = json.loads(rec.to_json())
        assert data["counters"]["a"] == 2
        assert data["histograms"]["h"]["count"] == 1
        assert data["timers"]["t"]["total"] == 0.25

    def test_reset(self):
        rec = Recorder()
        rec.incr("a")
        rec.observe("h", 1.0)
        rec.reset()
        snap = rec.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}


class TestCurrentRecorder:
    def test_default_is_null(self):
        assert obs.get_recorder() is NULL
        # module helpers are no-ops without an active recorder
        obs.incr("ignored")
        obs.observe("ignored", 1.0)
        with obs.trace("ignored"):
            pass
        assert NULL.counters == {}

    def test_use_recorder_scopes_and_restores(self):
        rec = Recorder()
        with use_recorder(rec):
            obs.incr("scoped")
            assert obs.get_recorder() is rec
        assert obs.get_recorder() is NULL
        assert rec.counters == {"scoped": 1}

    def test_use_recorder_restores_on_error(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with use_recorder(rec):
                raise RuntimeError("boom")
        assert obs.get_recorder() is NULL

    def test_nested_recorders(self):
        outer, inner = Recorder(), Recorder()
        with use_recorder(outer):
            obs.incr("x")
            with use_recorder(inner):
                obs.incr("x")
            obs.incr("x")
        assert outer.counters == {"x": 2}
        assert inner.counters == {"x": 1}

    def test_set_recorder_none_restores_null(self):
        rec = Recorder()
        obs.set_recorder(rec)
        try:
            assert obs.get_recorder() is rec
        finally:
            obs.set_recorder(None)
        assert obs.get_recorder() is NULL

    def test_trace_records_span(self):
        rec = Recorder()
        with use_recorder(rec):
            with obs.trace("outer"):
                pass
        assert rec.snapshot()["timers"]["outer"]["count"] == 1

    def test_null_recorder_methods_do_nothing(self):
        null = NullRecorder()
        null.incr("a")
        null.observe("h", 1.0)
        null.record_timing("t", 1.0)
        with null.time("t"):
            pass
        assert null.snapshot() == {"counters": {}, "timers": {}, "histograms": {}}


class TestInstrumentationCoverage:
    """The hot paths named in the ISSUE actually tick their counters."""

    def test_tableau_and_reasoner_counters(self):
        from repro.corpora.generators import chain_tbox
        from repro.dl import Atomic, Reasoner

        rec = Recorder()
        with use_recorder(rec):
            reasoner = Reasoner(chain_tbox(6))
            reasoner.subsumes(Atomic("C6"), Atomic("C0"))
            reasoner.subsumes(Atomic("C6"), Atomic("C0"))
        assert rec.counters["tableau.expansions"] > 0
        assert rec.counters["reasoner.subs_cache_misses"] == 1
        assert rec.counters["reasoner.subs_cache_hits"] == 1

    def test_hierarchy_counters(self):
        from repro.corpora.vehicles import vehicle_tbox
        from repro.dl import classify

        rec = Recorder()
        with use_recorder(rec):
            # the auto default classifies this EL corpus by saturation
            classify(vehicle_tbox())
        assert rec.counters["hierarchy.classifications"] == 1
        assert rec.counters["saturation.rules_fired"] > 0
        assert "tableau.solve_calls" not in rec.counters
        rec2 = Recorder()
        with use_recorder(rec2):
            # the enhanced traversal still drives the tableau counters
            classify(vehicle_tbox(), algorithm="enhanced")
        assert rec2.counters["hierarchy.told_hits"] > 0
        assert rec2.counters["hierarchy.tableau_subsumptions"] > 0

    def test_store_counters_index_vs_scan(self):
        from repro.store import TripleStore

        rec = Recorder()
        with use_recorder(rec):
            indexed = TripleStore()
            indexed.add("s", "p", "o")
            indexed.count(subject="s")
            scan = TripleStore(use_indexes=False)
            scan.add("s", "p", "o")
            scan.count(subject="s")
        assert rec.counters["store.index_lookups"] == 1
        assert rec.counters["store.scan_lookups"] == 1

    def test_query_counters(self):
        from repro.store import Pattern, Query, TripleStore, Var

        rec = Recorder()
        with use_recorder(rec):
            store = TripleStore()
            store.add("a", "p", "b")
            store.add("b", "q", "c")
            x, y = Var("x"), Var("y")
            rows = Query([Pattern(x, "p", y), Pattern(y, "q", "c")]).run(store)
        assert rows
        assert rec.counters["store.query.joins"] == 1
        assert rec.counters["store.query.order.selectivity"] == 1
        assert rec.counters["store.query.solutions"] == 1
        assert rec.counters["store.query.intermediate_bindings"] >= 2

    def test_materialize_counters(self):
        from repro.corpora.vehicles import vehicle_tbox
        from repro.store import TripleStore, materialize

        rec = Recorder()
        with use_recorder(rec):
            store = TripleStore()
            store.add("herbie", "type", "car")
            materialize(store, vehicle_tbox())
        assert rec.counters["materialize.runs"] == 1
        assert rec.counters["materialize.instance_checks"] > 0
        assert rec.counters["materialize.facts_added"] > 0

    def test_critique_phase_timings(self):
        from repro.core import critique
        from repro.corpora.vehicles import vehicle_tbox

        rec = Recorder()
        with use_recorder(rec):
            report = critique(vehicle_tbox())
        assert set(report.timings) == {"syntactic", "semantic", "pragmatic"}
        assert all(t >= 0 for t in report.timings.values())
        timers = rec.snapshot()["timers"]
        assert "critique.semantic" in timers
        # the rendered report surfaces the phase timings
        assert "phase timings:" in report.render()
