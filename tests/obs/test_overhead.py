"""The acceptance gate: disabled instrumentation must cost < 5% on B1.

The baseline is the theoretical floor — every ``repro.obs.recorder``
hot-path helper monkeypatched to a bare no-op lambda, i.e. what the code
would cost if the instrumentation calls did literally nothing.  The
shipped disabled path (null recorder: one global load + one identity
check per call) is compared against that floor on the B1 chain-subsumption
workload.  Min-of-N timing with a retry loop keeps scheduler noise from
flaking the assertion.
"""

import time

import pytest

from repro.corpora.generators import chain_tbox
from repro.dl import Atomic, Reasoner
from repro.obs import NULL, Recorder, get_recorder, use_recorder
from repro.obs import recorder as recorder_module


def b1_workload():
    """One B1 chain-subsumption run (fresh reasoner: no cross-run caching)."""
    tbox = chain_tbox(24)
    reasoner = Reasoner(tbox)
    assert reasoner.subsumes(Atomic("C24"), Atomic("C0"))
    assert not reasoner.subsumes(Atomic("C0"), Atomic("C24"))


def min_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_recorder_overhead_under_5_percent(monkeypatch):
    assert get_recorder() is NULL  # the shipped default really is disabled

    b1_workload()  # warm imports and code paths before timing

    noop = lambda *args, **kwargs: None  # noqa: E731

    def floor_run():
        with monkeypatch.context() as patch:
            patch.setattr(recorder_module, "incr", noop)
            patch.setattr(recorder_module, "observe", noop)
            patch.setattr(recorder_module, "record_timing", noop)
            b1_workload()

    # retry loop: accept the first quiet measurement, fail only if every
    # trial shows the disabled path above the budget
    ratios = []
    for _ in range(4):
        floor = min_time(floor_run, 5)
        disabled = min_time(b1_workload, 5)
        ratio = disabled / floor
        ratios.append(ratio)
        if ratio < 1.05:
            return
    pytest.fail(
        f"disabled-recorder overhead exceeded 5% in every trial: ratios={ratios}"
    )


def test_enabled_recorder_records_without_changing_results():
    """Sanity companion: enabling recording must not alter answers."""
    rec = Recorder()
    with use_recorder(rec):
        b1_workload()
    assert rec.counters["tableau.expansions"] > 0
    assert rec.counters["reasoner.subs_cache_misses"] == 2
