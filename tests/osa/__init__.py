"""Test package."""
