"""Unit tests for BCM ontology signatures and ontonomies (paper Def. 1)."""

import pytest

from repro.order import Poset
from repro.osa import (
    AttributeValueAxiom,
    CoverageAxiom,
    DataDomain,
    DisjointAxiom,
    EquationalTheory,
    FiniteAlgebra,
    OntologySignature,
    OntologySignatureError,
    Ontonomy,
    OntonomyError,
    OpDecl,
    OrderSortedSignature,
    SignatureModel,
    SubclassAxiom,
    is_ontology_signature,
    is_ontonomy,
)


def size_domain() -> DataDomain:
    """A data domain with one sort Size = {small, big}."""
    sig = OrderSortedSignature(
        Poset(["Size"], []),
        [OpDecl("small", (), "Size"), OpDecl("big", (), "Size")],
    )
    theory = EquationalTheory(sig, [])
    algebra = FiniteAlgebra(
        sig,
        {"Size": ["small", "big"]},
        {"small": {(): "small"}, "big": {(): "big"}},
    )
    return DataDomain(theory, algebra)


def vehicle_classes() -> Poset:
    return Poset(
        ["car", "pickup", "motorvehicle", "roadvehicle"],
        [
            ("car", "motorvehicle"),
            ("car", "roadvehicle"),
            ("pickup", "motorvehicle"),
            ("pickup", "roadvehicle"),
        ],
    )


def vehicle_signature() -> OntologySignature:
    # size declared on both superclasses' subclasses consistently:
    # A_{c',e} ⊆ A_{c,e'} for c ≤ c' means attributes of superclasses
    # reappear on subclasses
    return OntologySignature(
        size_domain(),
        vehicle_classes(),
        {
            ("motorvehicle", "Size"): {"size"},
            ("roadvehicle", "Size"): set(),
            ("car", "Size"): {"size"},
            ("pickup", "Size"): {"size"},
        },
    )


class TestOntologySignature:
    def test_wellformed_builds(self):
        sig = vehicle_signature()
        assert sig.attribute_set("car", "Size") == frozenset({"size"})

    def test_class_sort_name_clash_rejected(self):
        with pytest.raises(OntologySignatureError):
            OntologySignature(
                size_domain(),
                Poset(["Size"], []),  # class named like the sort
                {},
            )

    def test_unknown_owner_rejected(self):
        with pytest.raises(OntologySignatureError):
            OntologySignature(size_domain(), vehicle_classes(), {("ghost", "Size"): {"a"}})

    def test_unknown_value_type_rejected(self):
        with pytest.raises(OntologySignatureError):
            OntologySignature(size_domain(), vehicle_classes(), {("car", "Ghost"): {"a"}})

    def test_family_condition_violation_detected(self):
        # superclass declares an attribute the subclass does not inherit
        with pytest.raises(OntologySignatureError):
            OntologySignature(
                size_domain(),
                vehicle_classes(),
                {("motorvehicle", "Size"): {"size"}},  # car/pickup missing it
            )

    def test_value_leq_never_crosses_classes_and_sorts(self):
        sig = vehicle_signature()
        assert sig.value_leq("car", "motorvehicle")
        assert sig.value_leq("Size", "Size")
        assert not sig.value_leq("car", "Size")

    def test_all_attributes_of(self):
        sig = vehicle_signature()
        attrs = sig.all_attributes_of("car")
        assert {a.name for a in attrs} == {"size"}
        (attr,) = attrs
        assert attr.value_type == "Size"
        assert str(attr) == "size : car -> Size"

    def test_expressiveness_profile(self):
        profile = vehicle_signature().expressiveness_profile()
        assert profile["classes"] == 4
        assert profile["subclass_links"] == 4
        assert profile["attribute_declarations"] == 3
        assert profile["sort_valued_attributes"] == 3
        assert profile["class_valued_attributes"] == 0

    def test_is_ontology_signature_decider(self):
        assert is_ontology_signature(
            size_domain(), vehicle_classes(), {("car", "Size"): {"size"}}
        )
        assert not is_ontology_signature("not a domain", vehicle_classes(), {})
        assert not is_ontology_signature(size_domain(), "not a poset", {})
        # family-condition violation is also a rejection
        assert not is_ontology_signature(
            size_domain(), vehicle_classes(), {("motorvehicle", "Size"): {"size"}}
        )


def vehicle_model(sig: OntologySignature) -> SignatureModel:
    size_of = {"c1": "small", "c2": "small", "p1": "big"}
    return SignatureModel(
        sig,
        {
            "car": ["c1", "c2"],
            "pickup": ["p1"],
            "motorvehicle": ["c1", "c2", "p1"],
            "roadvehicle": ["c1", "c2", "p1"],
        },
        {
            ("car", "size"): {"c1": "small", "c2": "small"},
            ("pickup", "size"): {"p1": "big"},
            ("motorvehicle", "size"): size_of,
        },
    )


class TestSignatureModel:
    def test_valid_model(self):
        sig = vehicle_signature()
        model = vehicle_model(sig)
        assert model.extent("car") == frozenset({"c1", "c2"})
        assert model.individuals() == frozenset({"c1", "c2", "p1"})

    def test_extent_monotonicity_enforced(self):
        sig = vehicle_signature()
        with pytest.raises(OntonomyError):
            SignatureModel(
                sig,
                {"car": ["c1"], "motorvehicle": [], "roadvehicle": ["c1"], "pickup": []},
                {("car", "size"): {"c1": "small"},
                 ("motorvehicle", "size"): {},
                 ("pickup", "size"): {}},
            )

    def test_attribute_totality_enforced(self):
        sig = vehicle_signature()
        with pytest.raises(OntonomyError):
            SignatureModel(
                sig,
                {
                    "car": ["c1"],
                    "motorvehicle": ["c1"],
                    "roadvehicle": ["c1"],
                    "pickup": [],
                },
                {
                    ("car", "size"): {},  # c1 has no size
                    ("motorvehicle", "size"): {"c1": "small"},
                    ("pickup", "size"): {},
                },
            )

    def test_attribute_typing_enforced(self):
        sig = vehicle_signature()
        with pytest.raises(OntonomyError):
            SignatureModel(
                sig,
                {
                    "car": ["c1"],
                    "motorvehicle": ["c1"],
                    "roadvehicle": ["c1"],
                    "pickup": [],
                },
                {
                    ("car", "size"): {"c1": "enormous"},  # not in Size carrier
                    ("motorvehicle", "size"): {"c1": "enormous"},
                    ("pickup", "size"): {},
                },
            )

    def test_unknown_class_extent_query(self):
        sig = vehicle_signature()
        model = vehicle_model(sig)
        with pytest.raises(OntonomyError):
            model.extent("ghost")


class TestOntonomy:
    def test_axioms_checked(self):
        sig = vehicle_signature()
        onto = Ontonomy(
            sig,
            [
                DisjointAxiom("car", "pickup"),
                CoverageAxiom("motorvehicle", ("car", "pickup")),
                SubclassAxiom("car", "roadvehicle"),
                AttributeValueAxiom("car", "size", frozenset({"small"})),
            ],
        )
        model = vehicle_model(sig)
        assert onto.is_model(model)
        assert onto.failing_axioms(model) == []

    def test_failing_axiom_reported(self):
        sig = vehicle_signature()
        onto = Ontonomy(sig, [AttributeValueAxiom("car", "size", frozenset({"big"}))])
        model = vehicle_model(sig)
        assert not onto.is_model(model)
        assert len(onto.failing_axioms(model)) == 1

    def test_non_axiom_rejected(self):
        sig = vehicle_signature()
        with pytest.raises(OntonomyError):
            Ontonomy(sig, ["not an axiom"])

    def test_model_for_other_signature_rejected(self):
        sig1 = vehicle_signature()
        sig2 = vehicle_signature()
        model = vehicle_model(sig2)
        with pytest.raises(OntonomyError):
            Ontonomy(sig1).is_model(model)

    def test_is_ontonomy_decider(self):
        sig = vehicle_signature()
        assert is_ontonomy(Ontonomy(sig))
        assert not is_ontonomy("a grocery list")
        assert not is_ontonomy(42)

    def test_axiom_str_forms(self):
        assert str(SubclassAxiom("a", "b")) == "a ⊑ b"
        assert "∅" in str(DisjointAxiom("a", "b"))
        assert "⊔" in str(CoverageAxiom("a", ("b", "c")))
        assert "size" in str(AttributeValueAxiom("car", "size", frozenset({"small"})))
