"""Unit tests for order-sorted unification and confluence checking."""

import pytest

from repro.order import Poset
from repro.osa import (
    Equation,
    EquationalTheory,
    OpDecl,
    OrderSortedSignature,
    OSApp,
    OSVar,
    RewriteSystem,
    UnificationError,
    apply_substitution,
    constant,
    critical_pairs,
    is_locally_confluent,
    replace_at,
    subterm_at,
    subterm_positions,
    unify,
)


def signature() -> OrderSortedSignature:
    sorts = Poset(
        ["Nat", "Int", "Bool"],
        [("Nat", "Int")],
    )
    return OrderSortedSignature(
        sorts,
        [
            OpDecl("zero", (), "Nat"),
            OpDecl("one", (), "Nat"),
            OpDecl("s", ("Nat",), "Nat"),
            OpDecl("neg", ("Int",), "Int"),
            OpDecl("plus", ("Int", "Int"), "Int"),
            OpDecl("tt", (), "Bool"),
        ],
    )


class TestUnify:
    def test_identical_terms(self):
        sig = signature()
        assert unify(constant("zero"), constant("zero"), sig) == {}

    def test_var_binds_to_term(self):
        sig = signature()
        x = OSVar("x", "Nat")
        unifier = unify(x, OSApp("s", (constant("zero"),)), sig)
        assert unifier == {x: OSApp("s", (constant("zero"),))}

    def test_sort_constraint_blocks_binding(self):
        sig = signature()
        x = OSVar("x", "Nat")
        # neg(one) has sort Int ≰ Nat
        assert unify(x, OSApp("neg", (constant("one"),)), sig) is None

    def test_var_var_binds_toward_subsort(self):
        sig = signature()
        n, i = OSVar("n", "Nat"), OSVar("i", "Int")
        unifier = unify(n, i, sig)
        assert unifier == {i: n}

    def test_var_var_incomparable_without_meet_fails(self):
        sig = signature()
        n, b = OSVar("n", "Nat"), OSVar("b", "Bool")
        assert unify(n, b, sig) is None

    def test_var_var_meet(self):
        sorts = Poset(["A", "B", "C"], [("C", "A"), ("C", "B")])
        sig = OrderSortedSignature(sorts, [OpDecl("c", (), "C")])
        a, b = OSVar("a", "A"), OSVar("b", "B")
        unifier = unify(a, b, sig)
        assert unifier is not None
        assert unifier[a] == unifier[b]
        assert unifier[a].sort == "C"

    def test_occurs_check(self):
        sig = signature()
        x = OSVar("x", "Nat")
        assert unify(x, OSApp("s", (x,)), sig) is None

    def test_structural_decomposition(self):
        sig = signature()
        x, y = OSVar("x", "Int"), OSVar("y", "Int")
        t1 = OSApp("plus", (x, constant("one")))
        t2 = OSApp("plus", (constant("zero"), y))
        unifier = unify(t1, t2, sig)
        assert unifier == {x: constant("zero"), y: constant("one")}
        assert apply_substitution(t1, unifier) == apply_substitution(t2, unifier)

    def test_clash(self):
        sig = signature()
        assert unify(constant("zero"), constant("one"), sig) is None

    def test_shared_variable_through_both_terms(self):
        sig = signature()
        x, y = OSVar("x", "Nat"), OSVar("y", "Nat")
        t1 = OSApp("plus", (x, x))
        t2 = OSApp("plus", (y, constant("zero")))
        unifier = unify(t1, t2, sig)
        assert unifier is not None
        assert apply_substitution(t1, unifier) == apply_substitution(t2, unifier)


class TestPositions:
    def test_positions_and_subterms(self):
        term = OSApp("plus", (OSApp("s", (constant("zero"),)), constant("one")))
        positions = subterm_positions(term)
        assert () in positions and (0,) in positions and (0, 0) in positions
        assert subterm_at(term, (0, 0)) == constant("zero")

    def test_variables_not_positions(self):
        x = OSVar("x", "Nat")
        term = OSApp("s", (x,))
        assert subterm_positions(term) == [()]

    def test_replace_at(self):
        term = OSApp("s", (constant("zero"),))
        replaced = replace_at(term, (0,), constant("one"))
        assert replaced == OSApp("s", (constant("one"),))
        assert replace_at(term, (), constant("one")) == constant("one")

    def test_bad_position_rejected(self):
        with pytest.raises(UnificationError):
            subterm_at(constant("zero"), (3,))


def peano_theory() -> EquationalTheory:
    sig = OrderSortedSignature(
        Poset(["Nat"], []),
        [
            OpDecl("zero", (), "Nat"),
            OpDecl("s", ("Nat",), "Nat"),
            OpDecl("plus", ("Nat", "Nat"), "Nat"),
        ],
    )
    x, y = OSVar("x", "Nat"), OSVar("y", "Nat")
    return EquationalTheory(
        sig,
        [
            Equation(OSApp("plus", (constant("zero"), y)), y),
            Equation(
                OSApp("plus", (OSApp("s", (x,)), y)),
                OSApp("s", (OSApp("plus", (x, y)),)),
            ),
        ],
    )


class TestConfluence:
    def test_peano_is_locally_confluent(self):
        system = RewriteSystem(peano_theory())
        assert is_locally_confluent(system)

    def test_peano_critical_pairs_trivial(self):
        # the two plus rules have disjoint head shapes: no proper overlap
        assert critical_pairs(peano_theory()) == []

    def test_nonconfluent_system_detected(self):
        sig = OrderSortedSignature(
            Poset(["S"], []),
            [
                OpDecl("a", (), "S"),
                OpDecl("b", (), "S"),
                OpDecl("c", (), "S"),
                OpDecl("f", ("S",), "S"),
            ],
        )
        x = OSVar("x", "S")
        # f(x) → b  and  f(a) → c: the overlap at f(a) rewrites to b or c
        theory = EquationalTheory(
            sig,
            [
                Equation(OSApp("f", (x,)), constant("b")),
                Equation(OSApp("f", (constant("a"),)), constant("c")),
            ],
        )
        system = RewriteSystem(theory)
        pairs = critical_pairs(theory)
        assert pairs  # a genuine overlap exists
        assert not is_locally_confluent(system)

    def test_confluent_overlapping_system(self):
        sig = OrderSortedSignature(
            Poset(["S"], []),
            [
                OpDecl("a", (), "S"),
                OpDecl("b", (), "S"),
                OpDecl("f", ("S",), "S"),
            ],
        )
        x = OSVar("x", "S")
        # f(x) → b and f(a) → b overlap but join trivially
        theory = EquationalTheory(
            sig,
            [
                Equation(OSApp("f", (x,)), constant("b")),
                Equation(OSApp("f", (constant("a"),)), constant("b")),
            ],
        )
        assert is_locally_confluent(RewriteSystem(theory))
