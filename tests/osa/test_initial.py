"""Unit tests for initial (term) algebras."""

import pytest

from repro.order import Poset
from repro.osa import (
    ClosureError,
    DataDomain,
    Equation,
    EquationalTheory,
    OpDecl,
    OrderSortedSignature,
    OSApp,
    OSVar,
    constant,
    term_algebra,
)


def bool_theory() -> EquationalTheory:
    sig = OrderSortedSignature(
        Poset(["Bool"], []),
        [
            OpDecl("tt", (), "Bool"),
            OpDecl("ff", (), "Bool"),
            OpDecl("not", ("Bool",), "Bool"),
            OpDecl("and", ("Bool", "Bool"), "Bool"),
        ],
    )
    b = OSVar("b", "Bool")
    return EquationalTheory(
        sig,
        [
            Equation(OSApp("not", (constant("tt"),)), constant("ff")),
            Equation(OSApp("not", (constant("ff"),)), constant("tt")),
            Equation(OSApp("and", (constant("tt"), b)), b),
            Equation(OSApp("and", (constant("ff"), b)), constant("ff")),
        ],
    )


class TestTermAlgebra:
    def test_boolean_normal_forms(self):
        algebra = term_algebra(bool_theory())
        assert algebra.carriers["Bool"] == frozenset({constant("tt"), constant("ff")})

    def test_operations_act_by_normalization(self):
        algebra = term_algebra(bool_theory())
        assert algebra.evaluate(OSApp("not", (constant("tt"),))) == constant("ff")
        nested = OSApp("and", (constant("tt"), OSApp("not", (constant("ff"),))))
        assert algebra.evaluate(nested) == constant("tt")

    def test_is_a_model_of_its_theory(self):
        theory = bool_theory()
        algebra = term_algebra(theory)
        assert algebra.is_model_of(theory)
        # and therefore forms a data domain directly
        domain = DataDomain(theory, algebra)
        assert domain.model is algebra

    def test_subsort_carriers_included(self):
        sorts = Poset(["Nat", "Int"], [("Nat", "Int")])
        sig = OrderSortedSignature(
            sorts,
            [OpDecl("zero", (), "Nat"), OpDecl("minus_one", (), "Int")],
        )
        theory = EquationalTheory(sig, [])
        algebra = term_algebra(theory)
        assert algebra.carriers["Nat"] == frozenset({constant("zero")})
        assert algebra.carriers["Int"] == frozenset(
            {constant("zero"), constant("minus_one")}
        )

    def test_infinite_normal_forms_detected(self):
        sig = OrderSortedSignature(
            Poset(["Nat"], []),
            [OpDecl("zero", (), "Nat"), OpDecl("s", ("Nat",), "Nat")],
        )
        theory = EquationalTheory(sig, [])  # free: numerals never close
        with pytest.raises(ClosureError):
            term_algebra(theory, max_depth=3)

    def test_no_constants_rejected(self):
        sig = OrderSortedSignature(
            Poset(["S"], []), [OpDecl("f", ("S",), "S")]
        )
        with pytest.raises(ClosureError):
            term_algebra(EquationalTheory(sig, []))
