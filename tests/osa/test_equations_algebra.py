"""Unit tests for equational theories, rewriting, and finite algebras."""

import pytest

from repro.order import Poset
from repro.osa import (
    AlgebraError,
    DataDomain,
    Equation,
    EquationError,
    EquationalTheory,
    FiniteAlgebra,
    OpDecl,
    OrderSortedSignature,
    OSApp,
    OSVar,
    RewriteSystem,
    constant,
)


def bool_signature() -> OrderSortedSignature:
    return OrderSortedSignature(
        Poset(["Bool"], []),
        [
            OpDecl("tt", (), "Bool"),
            OpDecl("ff", (), "Bool"),
            OpDecl("not", ("Bool",), "Bool"),
            OpDecl("and", ("Bool", "Bool"), "Bool"),
        ],
    )


def bool_theory() -> EquationalTheory:
    sig = bool_signature()
    b = OSVar("b", "Bool")
    return EquationalTheory(
        sig,
        [
            Equation(OSApp("not", (constant("tt"),)), constant("ff")),
            Equation(OSApp("not", (constant("ff"),)), constant("tt")),
            Equation(OSApp("and", (constant("tt"), b)), b),
            Equation(OSApp("and", (constant("ff"), b)), constant("ff")),
        ],
    )


def bool_algebra(sig: OrderSortedSignature) -> FiniteAlgebra:
    return FiniteAlgebra(
        sig,
        {"Bool": [True, False]},
        {
            "tt": {(): True},
            "ff": {(): False},
            "not": {(True,): False, (False,): True},
            "and": {
                (True, True): True,
                (True, False): False,
                (False, True): False,
                (False, False): False,
            },
        },
    )


class TestTheory:
    def test_wellformed_theory_builds(self):
        assert len(bool_theory()) == 4

    def test_variable_lhs_rejected(self):
        sig = bool_signature()
        b = OSVar("b", "Bool")
        with pytest.raises(EquationError):
            EquationalTheory(sig, [Equation(b, constant("tt"))])

    def test_unbound_rhs_variable_rejected(self):
        sig = bool_signature()
        b = OSVar("b", "Bool")
        with pytest.raises(EquationError):
            EquationalTheory(sig, [Equation(constant("tt"), b)])

    def test_orientation_check_can_be_disabled(self):
        sig = bool_signature()
        b = OSVar("b", "Bool")
        theory = EquationalTheory(sig, [Equation(b, constant("tt"))], check_orientation=False)
        assert len(theory) == 1

    def test_incomparable_sorts_rejected(self):
        sorts = Poset(["A", "B"], [])
        sig = OrderSortedSignature(
            sorts, [OpDecl("a", (), "A"), OpDecl("b", (), "B")]
        )
        with pytest.raises(EquationError):
            EquationalTheory(sig, [Equation(constant("a"), constant("b"))])


class TestRewriting:
    def test_normalize_negation(self):
        rs = RewriteSystem(bool_theory())
        term = OSApp("not", (OSApp("not", (constant("tt"),)),))
        assert rs.normalize(term) == constant("tt")

    def test_normalize_with_variables_in_rules(self):
        rs = RewriteSystem(bool_theory())
        term = OSApp("and", (constant("tt"), OSApp("not", (constant("tt"),))))
        assert rs.normalize(term) == constant("ff")

    def test_normal_form_detection(self):
        rs = RewriteSystem(bool_theory())
        assert rs.is_normal_form(constant("tt"))
        assert not rs.is_normal_form(OSApp("not", (constant("tt"),)))

    def test_equality_by_normal_forms(self):
        rs = RewriteSystem(bool_theory())
        t1 = OSApp("and", (constant("tt"), constant("ff")))
        t2 = OSApp("not", (constant("tt"),))
        assert rs.equal(t1, t2)

    def test_divergence_detected(self):
        sig = OrderSortedSignature(
            Poset(["S"], []),
            [OpDecl("a", (), "S"), OpDecl("f", ("S",), "S")],
        )
        # f(x) -> f(f(x)) grows forever
        x = OSVar("x", "S")
        theory = EquationalTheory(
            sig, [Equation(OSApp("f", (x,)), OSApp("f", (OSApp("f", (x,)),)))]
        )
        rs = RewriteSystem(theory, max_steps=50)
        with pytest.raises(EquationError):
            rs.normalize(OSApp("f", (constant("a"),)))

    def test_rewrite_once_none_on_normal(self):
        rs = RewriteSystem(bool_theory())
        assert rs.rewrite_once(constant("ff")) is None


class TestAlgebra:
    def test_valid_algebra(self):
        algebra = bool_algebra(bool_signature())
        assert algebra.evaluate(constant("tt")) is True

    def test_missing_carrier_rejected(self):
        sig = bool_signature()
        with pytest.raises(AlgebraError):
            FiniteAlgebra(sig, {}, {})

    def test_missing_operation_rejected(self):
        sig = bool_signature()
        with pytest.raises(AlgebraError):
            FiniteAlgebra(sig, {"Bool": [True, False]}, {"tt": {(): True}})

    def test_partial_operation_rejected(self):
        sig = bool_signature()
        ops = {
            "tt": {(): True},
            "ff": {(): False},
            "not": {(True,): False},  # missing (False,)
            "and": {
                (a, b): a and b for a in (True, False) for b in (True, False)
            },
        }
        with pytest.raises(AlgebraError):
            FiniteAlgebra(sig, {"Bool": [True, False]}, ops)

    def test_value_outside_carrier_rejected(self):
        sig = bool_signature()
        ops = {
            "tt": {(): "banana"},
            "ff": {(): False},
            "not": {(True,): False, (False,): True},
            "and": {
                (a, b): a and b for a in (True, False) for b in (True, False)
            },
        }
        with pytest.raises(AlgebraError):
            FiniteAlgebra(sig, {"Bool": [True, False]}, ops)

    def test_subsort_carrier_inclusion_enforced(self):
        sorts = Poset(["Nat", "Int"], [("Nat", "Int")])
        sig = OrderSortedSignature(sorts, [OpDecl("zero", (), "Nat")])
        with pytest.raises(AlgebraError):
            FiniteAlgebra(sig, {"Nat": [0, 1], "Int": [0]}, {"zero": {(): 0}})

    def test_evaluation_nested(self):
        algebra = bool_algebra(bool_signature())
        term = OSApp("and", (constant("tt"), OSApp("not", (constant("ff"),))))
        assert algebra.evaluate(term) is True

    def test_evaluation_with_env(self):
        algebra = bool_algebra(bool_signature())
        b = OSVar("b", "Bool")
        assert algebra.evaluate(OSApp("not", (b,)), {b: True}) is False

    def test_unbound_variable_raises(self):
        algebra = bool_algebra(bool_signature())
        with pytest.raises(AlgebraError):
            algebra.evaluate(OSVar("b", "Bool"))

    def test_satisfies_equations(self):
        theory = bool_theory()
        algebra = bool_algebra(theory.signature)
        assert algebra.is_model_of(theory)

    def test_detects_non_model(self):
        sig = bool_signature()
        broken = FiniteAlgebra(
            sig,
            {"Bool": [True, False]},
            {
                "tt": {(): True},
                "ff": {(): False},
                "not": {(True,): True, (False,): False},  # identity, not negation
                "and": {
                    (a, b): a and b for a in (True, False) for b in (True, False)
                },
            },
        )
        theory = bool_theory()
        # note: theory built on its own signature instance; rebuild equations
        theory2 = EquationalTheory(sig, theory.equations)
        assert not broken.is_model_of(theory2)


class TestDataDomain:
    def test_data_domain_validates_modelhood(self):
        theory = bool_theory()
        algebra = bool_algebra(theory.signature)
        domain = DataDomain(theory, algebra)
        assert domain.sorts.elements == ["Bool"]

    def test_data_domain_rejects_non_model(self):
        theory = bool_theory()
        sig = theory.signature
        broken = FiniteAlgebra(
            sig,
            {"Bool": [True, False]},
            {
                "tt": {(): True},
                "ff": {(): True},  # ff = tt breaks not(ff) = tt? no: not(tt)=ff eq fails
                "not": {(True,): True, (False,): True},
                "and": {
                    (a, b): True for a in (True, False) for b in (True, False)
                },
            },
        )
        with pytest.raises(AlgebraError):
            DataDomain(theory, broken)
