"""Unit tests for order-sorted signatures and terms."""

import pytest

from repro.order import Poset
from repro.osa import (
    OpDecl,
    OrderSortedSignature,
    OSApp,
    OSVar,
    SignatureError,
    TermError,
    constant,
    ground_terms,
    is_well_sorted,
    least_sort,
    match,
    substitute,
)


def number_sorts() -> Poset:
    return Poset(["Nat", "Int", "Rat"], [("Nat", "Int"), ("Int", "Rat")])


def arithmetic_signature() -> OrderSortedSignature:
    return OrderSortedSignature(
        number_sorts(),
        [
            OpDecl("zero", (), "Nat"),
            OpDecl("one", (), "Nat"),
            OpDecl("succ", ("Nat",), "Nat"),
            OpDecl("neg", ("Int",), "Int"),
            # overloaded, monotone: more specific args, more specific result
            OpDecl("plus", ("Nat", "Nat"), "Nat"),
            OpDecl("plus", ("Int", "Int"), "Int"),
        ],
    )


class TestSignature:
    def test_unknown_sort_rejected(self):
        with pytest.raises(SignatureError):
            OrderSortedSignature(number_sorts(), [OpDecl("f", ("Bogus",), "Nat")])

    def test_ranks_and_names(self):
        sig = arithmetic_signature()
        assert sig.operation_names == ["neg", "one", "plus", "succ", "zero"]
        assert len(sig.ranks("plus")) == 2

    def test_unknown_operation_raises(self):
        with pytest.raises(SignatureError):
            arithmetic_signature().ranks("bogus")

    def test_constants(self):
        names = {d.name for d in arithmetic_signature().constants()}
        assert names == {"zero", "one"}

    def test_monotonicity_holds(self):
        assert arithmetic_signature().is_monotone()

    def test_monotonicity_violated(self):
        sig = OrderSortedSignature(
            number_sorts(),
            [
                OpDecl("f", ("Nat",), "Rat"),  # specific args, general result
                OpDecl("f", ("Int",), "Nat"),  # general args, specific result
            ],
        )
        assert not sig.is_monotone()
        with pytest.raises(SignatureError):
            sig.validate()

    def test_regularity_holds(self):
        assert arithmetic_signature().is_regular()

    def test_regularity_violated(self):
        # two incomparable sorts under a common subsort, f declared on both
        sorts = Poset(["A", "B", "C"], [("C", "A"), ("C", "B")])
        sig = OrderSortedSignature(
            sorts,
            [OpDecl("f", ("A",), "A"), OpDecl("f", ("B",), "B"), OpDecl("c", (), "C")],
        )
        # argument of sort C fits both ranks, neither is least
        assert not sig.is_regular()

    def test_least_rank(self):
        sig = arithmetic_signature()
        rank = sig.least_rank("plus", ("Nat", "Nat"))
        assert rank is not None and rank.result == "Nat"
        rank = sig.least_rank("plus", ("Nat", "Int"))
        assert rank is not None and rank.result == "Int"

    def test_least_rank_absent(self):
        sig = arithmetic_signature()
        assert sig.least_rank("succ", ("Rat",)) is None

    def test_opdecl_str(self):
        assert str(OpDecl("zero", (), "Nat")) == "zero : -> Nat"
        assert str(OpDecl("plus", ("Nat", "Nat"), "Nat")) == "plus : Nat Nat -> Nat"


class TestTerms:
    def test_least_sort_constant(self):
        assert least_sort(constant("zero"), arithmetic_signature()) == "Nat"

    def test_least_sort_nested(self):
        sig = arithmetic_signature()
        term = OSApp("plus", (constant("zero"), OSApp("neg", (constant("one"),))))
        assert least_sort(term, sig) == "Int"

    def test_least_sort_uses_least_overload(self):
        sig = arithmetic_signature()
        term = OSApp("plus", (constant("zero"), constant("one")))
        assert least_sort(term, sig) == "Nat"

    def test_variable_sort(self):
        sig = arithmetic_signature()
        assert least_sort(OSVar("x", "Int"), sig) == "Int"

    def test_unknown_variable_sort_raises(self):
        with pytest.raises(TermError):
            least_sort(OSVar("x", "Bogus"), arithmetic_signature())

    def test_ill_sorted_application(self):
        sig = arithmetic_signature()
        bad = OSApp("succ", (OSApp("neg", (constant("one"),)),))  # succ of Int
        assert not is_well_sorted(bad, sig)
        with pytest.raises(TermError):
            least_sort(bad, sig)

    def test_unknown_operation(self):
        with pytest.raises(TermError):
            least_sort(constant("bogus"), arithmetic_signature())

    def test_term_size_and_variables(self):
        x = OSVar("x", "Nat")
        term = OSApp("plus", (x, OSApp("succ", (x,))))
        assert term.size() == 4
        assert term.variables() == frozenset({x})

    def test_subterms(self):
        x = OSVar("x", "Nat")
        term = OSApp("succ", (x,))
        assert set(term.subterms()) == {term, x}


class TestSubstitution:
    def test_substitute_respects_sorts(self):
        sig = arithmetic_signature()
        x = OSVar("x", "Int")
        result = substitute(OSApp("neg", (x,)), {x: constant("zero")}, sig)
        assert result == OSApp("neg", (constant("zero"),))

    def test_substitute_rejects_sort_widening(self):
        sig = arithmetic_signature()
        x = OSVar("x", "Nat")
        widened = OSApp("neg", (constant("one"),))  # sort Int ≰ Nat
        with pytest.raises(TermError):
            substitute(OSApp("succ", (x,)), {x: widened}, sig)

    def test_substitute_leaves_unbound_variables(self):
        sig = arithmetic_signature()
        x, y = OSVar("x", "Nat"), OSVar("y", "Nat")
        result = substitute(OSApp("plus", (x, y)), {x: constant("zero")}, sig)
        assert result == OSApp("plus", (constant("zero"), y))


class TestMatching:
    def test_match_binds_variables(self):
        sig = arithmetic_signature()
        x = OSVar("x", "Nat")
        pattern = OSApp("succ", (x,))
        target = OSApp("succ", (constant("zero"),))
        assert match(pattern, target, sig) == {x: constant("zero")}

    def test_match_respects_variable_sort(self):
        sig = arithmetic_signature()
        x = OSVar("x", "Nat")
        target = OSApp("neg", (constant("one"),))  # Int
        assert match(x, target, sig) is None
        y = OSVar("y", "Rat")
        assert match(y, target, sig) == {y: target}

    def test_match_nonlinear_pattern(self):
        sig = arithmetic_signature()
        x = OSVar("x", "Nat")
        pattern = OSApp("plus", (x, x))
        good = OSApp("plus", (constant("zero"), constant("zero")))
        bad = OSApp("plus", (constant("zero"), constant("one")))
        assert match(pattern, good, sig) is not None
        assert match(pattern, bad, sig) is None

    def test_match_wrong_operator(self):
        sig = arithmetic_signature()
        assert match(constant("zero"), constant("one"), sig) is None


class TestGroundTerms:
    def test_depth_one_is_constants(self):
        sig = arithmetic_signature()
        terms = list(ground_terms(sig, 1))
        assert set(terms) == {constant("zero"), constant("one")}

    def test_depth_two_closes_under_operations(self):
        sig = arithmetic_signature()
        terms = set(ground_terms(sig, 2))
        assert OSApp("succ", (constant("zero"),)) in terms
        assert OSApp("plus", (constant("zero"), constant("one"))) in terms

    def test_all_enumerated_terms_well_sorted(self):
        sig = arithmetic_signature()
        for term in ground_terms(sig, 3):
            assert is_well_sorted(term, sig)
