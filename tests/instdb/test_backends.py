"""Unit coverage for the instance-store backends.

Every test in :class:`TestBackendContract` runs against *both*
implementations via the ``backend`` fixture — the contract lives in the
interface, not in either class.  Backend-specific behaviour (sqlite
transactions, reopen persistence, query plans) gets its own classes.
"""

import pytest

from repro.corpora.vehicles import vehicle_tbox
from repro.dl import ABox, Atomic, ConceptAssertion, Reasoner, Role, RoleAssertion
from repro.dl.parser import parse_concept
from repro.instdb import (
    InstDBError,
    MemoryBackend,
    SqliteBackend,
    TOP_SOURCE,
    BackendTripleView,
    materialize,
    open_backend,
    refresh,
)
from repro.obs import Recorder, use_recorder
from repro.store import Pattern, Query, Var, store_to_backend
from repro.store import TripleStore


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    instance = open_backend(request.param)
    yield instance
    instance.close()


def load_garage(backend) -> None:
    backend.assert_type("herbie", "car")
    backend.assert_type("bigfoot", "pickup")
    backend.assert_type("kitt", "car")
    backend.assert_role("herbie", "uses", "premium")
    backend.assert_role("bigfoot", "uses", "diesel")
    backend.assert_role("kitt", "uses", "premium")


class TestBackendContract:
    def test_individuals_in_first_seen_order(self, backend):
        load_garage(backend)
        assert backend.individuals() == [
            "herbie", "bigfoot", "kitt", "premium", "diesel",
        ]
        assert backend.individuals(limit=2, offset=1) == ["bigfoot", "kitt"]
        assert backend.individual_count() == 5

    def test_types_told_vs_derived(self, backend):
        load_garage(backend)
        assert backend.types("herbie") == frozenset({"car"})
        backend.insert_derived("car", ["motorvehicle", "roadvehicle"])
        assert backend.types("herbie") == frozenset(
            {"car", "motorvehicle", "roadvehicle"}
        )
        assert backend.types("herbie", derived=False) == frozenset({"car"})
        assert backend.types("nobody") == frozenset()

    def test_instances_merges_told_and_derived(self, backend):
        load_garage(backend)
        backend.insert_derived("car", ["motorvehicle"])
        backend.insert_derived("pickup", ["motorvehicle"])
        assert backend.instances("car") == ["herbie", "kitt"]
        assert backend.instances("motorvehicle") == ["herbie", "bigfoot", "kitt"]
        assert backend.instances("motorvehicle", limit=2) == ["herbie", "bigfoot"]
        assert backend.instances("starship") == []

    def test_role_neighbours(self, backend):
        load_garage(backend)
        assert backend.successors("herbie", "uses") == ["premium"]
        assert backend.predecessors("premium", "uses") == ["herbie", "kitt"]
        assert backend.successors("herbie", "owns") == []
        assert backend.predecessors("nobody", "uses") == []
        rows = list(backend.role_assertions("uses"))
        assert ("bigfoot", "uses", "diesel") in rows
        assert len(rows) == 3
        # full enumeration is id-ordered; compare contents, not order
        assert set(backend.role_assertions()) == set(rows)

    def test_told_concepts_and_counts(self, backend):
        load_garage(backend)
        assert backend.told_concepts() == ["car", "pickup"]
        backend.insert_derived("car", ["motorvehicle"])
        assert backend.derived_sources() == ["car"]
        assert backend.counts() == {
            "individuals": 5, "told": 3, "derived": 2, "roles": 3,
        }
        stats = backend.stats()
        assert stats["backend"] == backend.kind
        assert stats["individuals"] == 5

    def test_duplicate_writes_are_idempotent(self, backend):
        recorder = Recorder()
        with use_recorder(recorder):
            backend.assert_type("herbie", "car")
            backend.assert_type("herbie", "car")
            backend.assert_role("herbie", "uses", "premium")
            backend.assert_role("herbie", "uses", "premium")
        assert backend.counts()["told"] == 1
        assert backend.counts()["roles"] == 1
        assert recorder.counters["instdb.told_assertions"] == 1
        assert recorder.counters["instdb.role_assertions"] == 1

    def test_multi_source_row_survives_single_invalidation(self, backend):
        # herbie is derived a motorvehicle from BOTH car and cabriolet;
        # dropping one source must keep the row alive
        backend.assert_type("herbie", "car")
        backend.assert_type("herbie", "cabriolet")
        backend.insert_derived("car", ["motorvehicle"])
        backend.insert_derived("cabriolet", ["motorvehicle"])
        assert backend.delete_derived(["car"]) == 1
        assert backend.types("herbie") == frozenset(
            {"car", "cabriolet", "motorvehicle"}
        )
        assert backend.delete_derived(["cabriolet"]) == 1
        assert backend.types("herbie") == frozenset({"car", "cabriolet"})
        assert backend.delete_derived(["unknown"]) == 0

    def test_delete_all_derived_keeps_told(self, backend):
        load_garage(backend)
        backend.insert_derived("car", ["motorvehicle", "roadvehicle"])
        removed = backend.delete_derived()
        assert removed == 4
        assert backend.counts()["derived"] == 0
        assert backend.counts()["told"] == 3

    def test_insert_derived_for_unknown_source_is_a_noop(self, backend):
        load_garage(backend)
        assert backend.insert_derived("starship", ["vehicle"]) == 0

    def test_abox_round_trip(self, backend):
        abox = ABox(
            [
                ConceptAssertion("herbie", Atomic("car")),
                ConceptAssertion("bigfoot", Atomic("pickup")),
                RoleAssertion("herbie", "premium", Role("uses")),
            ]
        )
        backend.load_abox(abox)
        out = backend.to_abox()
        assert set(out) == set(abox)

    def test_load_abox_refuses_complex_types(self, backend):
        abox = ABox(
            [ConceptAssertion("herbie", parse_concept("car & some uses.gas"))]
        )
        with pytest.raises(InstDBError, match="atomic"):
            backend.load_abox(abox)


class TestMaterialize:
    def hierarchy(self):
        return Reasoner(vehicle_tbox()).classify()

    def test_upward_closure_lands_in_backend(self, backend):
        load_garage(backend)
        result = materialize(backend, self.hierarchy())
        # car ⊑ motorvehicle ⊓ roadvehicle; pickup likewise
        assert backend.types("herbie") == frozenset(
            {"car", "motorvehicle", "roadvehicle"}
        )
        assert backend.types("bigfoot") == frozenset(
            {"pickup", "motorvehicle", "roadvehicle"}
        )
        assert result.derived_rows == 6
        assert sorted(result.sources) == ["car", "pickup"]
        assert set(result.closures) == {"car", "pickup", TOP_SOURCE}

    def test_rematerialize_is_idempotent(self, backend):
        load_garage(backend)
        materialize(backend, self.hierarchy())
        again = materialize(backend, self.hierarchy())
        assert again.removed_rows == 6
        assert again.derived_rows == 6
        assert backend.counts()["derived"] == 6

    def test_refresh_skips_unchanged_sources(self, backend):
        load_garage(backend)
        first = materialize(backend, self.hierarchy())
        recorder = Recorder()
        with use_recorder(recorder):
            second = refresh(backend, self.hierarchy(), first.closures)
        assert second.sources == []
        assert sorted(second.skipped_sources) == ["car", "pickup"]
        assert recorder.counters["instdb.refresh_skipped_sources"] == 2
        assert recorder.counters["instdb.refresh_sources"] == 0

    def test_refresh_rederives_moved_source_only(self, backend):
        from repro.dl import parse_tbox

        load_garage(backend)
        first = materialize(backend, self.hierarchy())
        moved = Reasoner(
            parse_tbox(
                """
                car [= motorvehicle & roadvehicle
                pickup [= truck
                truck [= motorvehicle
                motorvehicle [= vehicle
                """
            )
        ).classify()
        result = refresh(backend, moved, first.closures)
        assert sorted(result.sources) == ["car", "pickup"]
        assert backend.types("bigfoot") == frozenset(
            {"pickup", "truck", "motorvehicle", "vehicle"}
        )
        # the refreshed state must equal a from-scratch materialization
        fresh = open_backend(backend.kind)
        try:
            load_garage(fresh)
            materialize(fresh, moved)
            for name in backend.individuals():
                assert backend.types(name) == fresh.types(name)
        finally:
            fresh.close()

    def test_refresh_with_affected_prefilter_stays_sound(self, backend):
        from repro.dl import parse_tbox

        backend.assert_type("herbie", "car")
        backend.assert_type("bigfoot", "pickup")
        h1 = Reasoner(
            parse_tbox("car [= motorvehicle\npickup [= motorvehicle")
        ).classify()
        first = materialize(backend, h1)
        h2 = Reasoner(
            parse_tbox("car [= motorvehicle & small\npickup [= motorvehicle")
        ).classify()
        result = refresh(
            backend, h2, first.closures, affected=frozenset({"car", "small"})
        )
        assert result.sources == ["car"]
        assert result.skipped_sources == ["pickup"]
        assert backend.types("herbie") == frozenset(
            {"car", "motorvehicle", "small"}
        )
        assert backend.types("bigfoot") == frozenset({"pickup", "motorvehicle"})

    def test_refresh_recomputes_source_touching_removed_name(self, backend):
        from repro.dl import parse_tbox

        backend.assert_type("herbie", "car")
        h1 = Reasoner(parse_tbox("car [= motorvehicle")).classify()
        first = materialize(backend, h1)
        # motorvehicle vanishes from the vocabulary entirely; an affected
        # set that omits it must NOT let car's stale closure survive
        h2 = Reasoner(parse_tbox("car [= vehicle")).classify()
        result = refresh(backend, h2, first.closures, affected=frozenset({"vehicle"}))
        assert result.sources == ["car"]
        assert backend.types("herbie") == frozenset({"car", "vehicle"})

    def test_new_told_data_is_always_a_candidate(self, backend):
        load_garage(backend)
        first = materialize(backend, self.hierarchy())
        backend.assert_type("vixen", "pickup")
        backend.assert_type("nellie", "motorvehicle")
        result = refresh(
            backend, self.hierarchy(), first.closures, affected=frozenset()
        )
        # pickup's closure is unchanged (its rows already cover vixen via
        # insert_derived's set semantics at refresh time) but motorvehicle
        # is a brand-new source and must be derived
        assert "motorvehicle" in result.closures
        materialize(backend, self.hierarchy())
        assert backend.types("vixen") == frozenset(
            {"pickup", "motorvehicle", "roadvehicle"}
        )


class TestStoreBridge:
    def test_store_to_backend_loads_typed_graph(self, backend):
        store = TripleStore()
        store.update(
            [
                ("herbie", "type", "car"),
                ("bigfoot", "type", "pickup"),
                ("herbie", "uses", "premium"),
            ]
        )
        loaded = store_to_backend(store, backend, vehicle_tbox())
        assert loaded == 3
        assert backend.types("herbie", derived=False) == frozenset({"car"})
        assert backend.successors("herbie", "uses") == ["premium"]

    def test_query_over_backend_view(self, backend):
        load_garage(backend)
        materialize(backend, Reasoner(vehicle_tbox()).classify())
        view = BackendTripleView(backend)
        X = Var("x")
        rows = Query(
            [Pattern(X, "type", "motorvehicle"), Pattern(X, "uses", "premium")],
            select=[X],
        ).run(view)
        assert rows == [("herbie",), ("kitt",)]

    def test_view_estimates_track_indexes(self, backend):
        load_garage(backend)
        view = BackendTripleView(backend)
        assert view.estimate("herbie", "type", None) == 1
        assert view.estimate(None, "type", "car") == 2
        assert view.estimate(None, "uses", None) == 3
        assert view.estimate(None, None, None) == 6


class TestOpenBackend:
    def test_unknown_kind_is_refused(self):
        with pytest.raises(InstDBError, match="unknown instance backend"):
            open_backend("redis")

    def test_kinds(self):
        memory = open_backend("memory")
        sqlite = open_backend("sqlite")
        try:
            assert isinstance(memory, MemoryBackend)
            assert isinstance(sqlite, SqliteBackend)
        finally:
            memory.close()
            sqlite.close()


class TestSqliteSpecifics:
    def test_transaction_rolls_back_on_error(self):
        backend = SqliteBackend()
        try:
            backend.assert_type("herbie", "car")
            recorder = Recorder()
            with use_recorder(recorder):
                with pytest.raises(RuntimeError):
                    with backend.transaction():
                        backend.insert_derived("car", ["motorvehicle"])
                        raise RuntimeError("abort mid-delta")
            assert recorder.counters["instdb.tx_rollbacks"] == 1
            assert backend.counts()["derived"] == 0
            assert backend.types("herbie") == frozenset({"car"})
        finally:
            backend.close()

    def test_nested_transactions_join_the_outer_scope(self):
        backend = SqliteBackend()
        try:
            with backend.transaction():
                with backend.transaction():
                    backend.assert_type("herbie", "car")
                # inner exit must not COMMIT the outer transaction
                backend.assert_type("bigfoot", "pickup")
            assert backend.counts()["told"] == 2
        finally:
            backend.close()

    def test_reopen_preserves_rows_and_interned_ids(self, tmp_path):
        path = tmp_path / "store.db"
        first = SqliteBackend(path)
        load_garage(first)
        materialize(first, Reasoner(vehicle_tbox()).classify())
        expected = {n: first.types(n) for n in first.individuals()}
        first.close()

        second = SqliteBackend(path)
        try:
            assert second.individuals() == [
                "herbie", "bigfoot", "kitt", "premium", "diesel",
            ]
            for name, types in expected.items():
                assert second.types(name) == types
            # the reloaded dictionaries keep interning consistently
            second.assert_type("new_individual", "car")
            assert second.instances("car") == ["herbie", "kitt", "new_individual"]
            assert second.db_bytes() > 0
        finally:
            second.close()

    def test_instances_answers_from_the_covering_index(self):
        backend = SqliteBackend()
        try:
            load_garage(backend)
            plan = backend.instances_plan("car")
            assert "ix_assertions_by_concept" in plan
            assert "SCAN concept_assertions" not in plan
        finally:
            backend.close()

    def test_memory_resident_db_reports_zero_bytes(self):
        backend = SqliteBackend()
        try:
            assert backend.db_bytes() == 0
        finally:
            backend.close()


class TestReasonerIntegration:
    def test_indexed_retrieval_matches_instances(self, backend):
        load_garage(backend)
        reasoner = Reasoner(vehicle_tbox())
        materialize(backend, reasoner.classify())
        recorder = Recorder()
        with use_recorder(recorder):
            members = reasoner.retrieve_indexed(backend, Atomic("motorvehicle"))
        assert members == ["herbie", "bigfoot", "kitt"]
        assert recorder.counters["reasoner.indexed_retrievals"] == 1
        assert "reasoner.retrieval_fallbacks" not in recorder.counters

    def test_complex_concept_falls_back_to_tableau(self, backend):
        load_garage(backend)
        reasoner = Reasoner(vehicle_tbox())
        materialize(backend, reasoner.classify())
        recorder = Recorder()
        with use_recorder(recorder):
            members = reasoner.retrieve_indexed(
                backend, parse_concept("car | pickup")
            )
        assert set(members) == {"herbie", "bigfoot", "kitt"}
        assert recorder.counters["reasoner.retrieval_fallbacks"] == 1
