"""Property tests: the sqlite backend ≡ the in-memory reference.

:class:`~repro.instdb.MemoryBackend` defines the semantics; every other
backend must be observationally identical.  Random ABoxes (told types +
role edges over random TBox vocabularies) are loaded into both backends
and every read in the interface is compared, before and after
materialization and after an incremental refresh against an edited
TBox.  The refresh itself is additionally checked against the
from-scratch oracle: refresh(edit) must leave exactly the state a fresh
materialize under the edited hierarchy produces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpora.generators import random_tbox
from repro.dl import Reasoner
from repro.instdb import MemoryBackend, SqliteBackend, materialize, refresh

# a small pool of classified hierarchies; building one per example is
# the expensive part, the vocabulary variety is what matters
_TBOXES = {
    seed: random_tbox(seed, n_defined=8, n_primitive=5, n_roles=2)
    for seed in (3, 11, 27)
}
_HIERARCHIES = {
    seed: Reasoner(tbox).classify() for seed, tbox in _TBOXES.items()
}


@st.composite
def abox_ops(draw):
    """A random told ABox as (seed, type assertions, role assertions)."""
    seed = draw(st.sampled_from(sorted(_TBOXES)))
    names = sorted(_TBOXES[seed].atomic_names())
    roles = sorted(_TBOXES[seed].role_names())
    individuals = st.integers(min_value=0, max_value=11).map(lambda i: f"i{i}")
    types = draw(
        st.lists(
            st.tuples(individuals, st.sampled_from(names)),
            min_size=1,
            max_size=25,
        )
    )
    edges = draw(
        st.lists(
            st.tuples(individuals, st.sampled_from(roles), individuals),
            max_size=10,
        )
        if roles
        else st.just([])
    )
    return seed, types, edges


def loaded_pair(types, edges):
    memory, sqlite = MemoryBackend(), SqliteBackend()
    for backend in (memory, sqlite):
        with backend.transaction():
            for individual, concept in types:
                backend.assert_type(individual, concept)
            for subject, role, object in edges:
                backend.assert_role(subject, role, object)
    return memory, sqlite


def assert_equivalent(memory, sqlite, *, roles=()):
    assert memory.individuals() == sqlite.individuals()
    assert memory.individual_count() == sqlite.individual_count()
    assert memory.counts() == sqlite.counts()
    assert memory.told_concepts() == sqlite.told_concepts()
    assert sorted(memory.derived_sources()) == sorted(sqlite.derived_sources())
    concepts = set(memory.told_concepts()) | {"never_asserted"}
    for individual in memory.individuals():
        assert memory.types(individual) == sqlite.types(individual)
        assert memory.types(individual, derived=False) == sqlite.types(
            individual, derived=False
        )
        for concept in memory.types(individual):
            concepts.add(concept)
    for concept in sorted(concepts):
        assert memory.instances(concept) == sqlite.instances(concept)
        assert memory.instances(concept, limit=3) == sqlite.instances(
            concept, limit=3
        )
    for role in roles:
        assert set(memory.role_assertions(role)) == set(
            sqlite.role_assertions(role)
        )
        for individual in memory.individuals():
            assert memory.successors(individual, role) == sqlite.successors(
                individual, role
            )
            assert memory.predecessors(individual, role) == sqlite.predecessors(
                individual, role
            )


class TestBackendEquivalence:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(abox_ops())
    def test_told_reads_agree(self, ops):
        seed, types, edges = ops
        memory, sqlite = loaded_pair(types, edges)
        try:
            assert_equivalent(
                memory, sqlite, roles=sorted(_TBOXES[seed].role_names())
            )
        finally:
            memory.close()
            sqlite.close()

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(abox_ops())
    def test_materialized_reads_agree(self, ops):
        seed, types, edges = ops
        memory, sqlite = loaded_pair(types, edges)
        try:
            hierarchy = _HIERARCHIES[seed]
            m_result = materialize(memory, hierarchy)
            s_result = materialize(sqlite, hierarchy)
            assert m_result.derived_rows == s_result.derived_rows
            assert m_result.closures == s_result.closures
            assert_equivalent(memory, sqlite)
        finally:
            memory.close()
            sqlite.close()

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(abox_ops(), st.sampled_from(sorted(_TBOXES)))
    def test_refresh_matches_fresh_materialize(self, ops, edit_seed):
        seed, types, edges = ops
        memory, sqlite = loaded_pair(types, edges)
        oracle_m, oracle_s = loaded_pair(types, edges)
        try:
            before, after = _HIERARCHIES[seed], _HIERARCHIES[edit_seed]
            # incremental path: materialize under `before`, refresh to `after`
            first_m = materialize(memory, before)
            first_s = materialize(sqlite, before)
            refresh(memory, after, first_m.closures)
            refresh(sqlite, after, first_s.closures)
            # oracle path: one fresh materialize under `after`
            materialize(oracle_m, after)
            materialize(oracle_s, after)
            assert_equivalent(memory, sqlite)
            for individual in oracle_m.individuals():
                assert memory.types(individual) == oracle_m.types(individual)
                assert sqlite.types(individual) == oracle_s.types(individual)
        finally:
            for backend in (memory, sqlite, oracle_m, oracle_s):
                backend.close()
