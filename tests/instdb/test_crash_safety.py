"""Crash safety: a materialization killed mid-delta leaves no torso.

The whole derived delta runs inside one sqlite transaction, so a
``kill -9`` between the first ``insert_derived`` and the commit must
leave the reopened store with its told rows intact and **zero** derived
rows — not a partial derivation the serving layer would happily answer
from.  A genuine child process is the only honest way to test that: an
in-process exception exercises ROLLBACK, not the journal.
"""

import os
import signal
import subprocess
import sys

from repro.instdb import SqliteBackend

#: the child loads told rows, commits them, then dies inside the
#: derived-delta transaction after the first insert has been executed
CHILD = """
import os, sys
from repro.instdb import SqliteBackend

backend = SqliteBackend(sys.argv[1])
with backend.transaction():
    for i in range(50):
        backend.assert_type(f"i{i}", "car")
        backend.assert_type(f"i{i}", "pickup")

with backend.transaction():
    backend.insert_derived("car", ["motorvehicle", "roadvehicle"])
    print("MID_TRANSACTION", flush=True)
    import time
    time.sleep(60)  # parent kills us here; the commit never happens
"""


def test_kill9_mid_materialize_leaves_no_derived_rows(tmp_path):
    db = tmp_path / "crash.db"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD, str(db)],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = child.stdout.readline().strip()
        assert line == "MID_TRANSACTION", f"child failed before the delta: {line!r}"
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup on failure
            child.kill()
            child.wait()

    reopened = SqliteBackend(db)
    try:
        counts = reopened.counts()
        assert counts["told"] == 100, "committed told rows must survive"
        assert counts["derived"] == 0, "uncommitted delta must vanish entirely"
        assert reopened.types("i0") == frozenset({"car", "pickup"})
        assert reopened.instances("motorvehicle") == []
    finally:
        reopened.close()


def test_reopen_after_clean_close_sees_derived_rows(tmp_path):
    """Control for the test above: a *committed* delta does survive."""
    db = tmp_path / "clean.db"
    first = SqliteBackend(db)
    first.assert_type("herbie", "car")
    with first.transaction():
        first.insert_derived("car", ["motorvehicle"])
    first.close()
    second = SqliteBackend(db)
    try:
        assert second.counts() == {
            "individuals": 1, "told": 1, "derived": 1, "roles": 0,
        }
    finally:
        second.close()
