"""The sqlite backend's fork guard.

An sqlite connection inherited across ``fork`` shares file descriptors
and WAL/shm mappings with the parent; either side's writes can silently
corrupt the database.  The backend pins its opening pid and every db
touch funnels through a checked chokepoint, so a forked child gets a
loud :class:`InstDBError` instead of quiet corruption — and its
teardown never closes (and checkpoints) the parent's live connection.
"""

import os

import pytest

from repro.instdb import InstDBError
from repro.instdb.sqlite import SqliteBackend


class TestForkGuard:
    def test_foreign_pid_is_refused_with_a_clear_error(self, tmp_path):
        backend = SqliteBackend(tmp_path / "abox.db")
        backend.assert_type("herbie", "car")
        backend._pid = backend._pid + 1  # simulate use after fork
        with pytest.raises(InstDBError, match="fork"):
            backend.types("herbie")
        with pytest.raises(InstDBError, match="reopen"):
            backend.assert_type("kitt", "car")
        with pytest.raises(InstDBError):
            with backend.transaction():
                pass

    def test_foreign_pid_close_is_a_noop(self, tmp_path):
        backend = SqliteBackend(tmp_path / "abox.db")
        backend.assert_type("herbie", "car")
        backend._pid = backend._pid + 1
        backend.close()  # must NOT close the "parent's" connection
        backend._pid = os.getpid()
        assert backend.types("herbie") == frozenset({"car"})
        backend.close()

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="fork-only test")
    def test_real_fork_child_gets_the_guard(self, tmp_path):
        backend = SqliteBackend(tmp_path / "abox.db")
        backend.assert_type("herbie", "car")
        pid = os.fork()
        if pid == 0:
            # forked child: the inherited backend must refuse queries
            try:
                ok = False
                try:
                    backend.types("herbie")
                except InstDBError:
                    ok = True
                backend.close()  # no-op, parent's connection untouched
            finally:
                os._exit(0 if ok else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        # the parent's connection is still healthy after the child exits
        assert backend.types("herbie") == frozenset({"car"})
        # and a fresh backend in this process sees the same file intact
        reopened = SqliteBackend(tmp_path / "abox.db")
        assert reopened.types("herbie") == frozenset({"car"})
        reopened.close()
        backend.close()
