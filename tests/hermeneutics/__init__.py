"""Test package."""
