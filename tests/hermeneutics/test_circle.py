"""Unit tests for the hermeneutic circle as constraint propagation."""

from repro.hermeneutics import CircleStatus, cut_circle, run_circle


def bank_example():
    """'I sat by the bank' — the whole construal settles the part sense."""
    parts = {
        "bank": frozenset({"river_bank", "money_bank"}),
        "sat": frozenset({"rest_outdoors", "wait_indoors"}),
    }
    wholes = frozenset({"a_day_fishing", "a_loan_errand"})

    def compatible(whole, part, sense):
        table = {
            ("a_day_fishing", "bank", "river_bank"): True,
            ("a_day_fishing", "sat", "rest_outdoors"): True,
            ("a_loan_errand", "bank", "money_bank"): True,
            ("a_loan_errand", "sat", "wait_indoors"): True,
        }
        return table.get((whole, part, sense), False)

    return parts, wholes, compatible


class TestRunCircle:
    def test_ambiguous_without_context(self):
        parts, wholes, compatible = bank_example()
        result = run_circle(parts, wholes, compatible)
        assert result.status is CircleStatus.AMBIGUOUS
        assert result.wholes == wholes

    def test_context_makes_determinate(self):
        parts, wholes, compatible = bank_example()
        # the situation rules out the errand (we are outdoors, rods in hand)
        result = run_circle(parts, frozenset({"a_day_fishing"}), compatible)
        assert result.status is CircleStatus.DETERMINATE
        assert result.sense_of("bank") == "river_bank"
        assert result.sense_of("sat") == "rest_outdoors"

    def test_part_constrains_whole(self):
        parts, wholes, compatible = bank_example()
        # the reader already settled 'bank' as money_bank (say, from a
        # previous sentence): the whole follows
        narrowed = dict(parts, bank=frozenset({"money_bank"}))
        result = run_circle(narrowed, wholes, compatible)
        assert result.status is CircleStatus.DETERMINATE
        assert result.wholes == frozenset({"a_loan_errand"})

    def test_incoherent_reading(self):
        parts, wholes, compatible = bank_example()
        narrowed = dict(parts, bank=frozenset({"money_bank"}))
        result = run_circle(narrowed, frozenset({"a_day_fishing"}), compatible)
        assert result.status is CircleStatus.INCOHERENT

    def test_fixpoint_reached_quickly(self):
        parts, wholes, compatible = bank_example()
        result = run_circle(parts, wholes, compatible)
        assert result.iterations <= 3

    def test_sense_of_none_when_open(self):
        parts, wholes, compatible = bank_example()
        result = run_circle(parts, wholes, compatible)
        assert result.sense_of("bank") is None


class TestCutCircle:
    def test_right_codification_matches_situated_reading(self):
        parts, wholes, compatible = bank_example()
        result = cut_circle(
            parts,
            frozenset({"a_day_fishing"}),
            compatible,
            {"bank": "river_bank", "sat": "rest_outdoors"},
        )
        assert result.status is CircleStatus.DETERMINATE

    def test_wrong_codification_breaks_the_reading(self):
        """Ontology's cut: senses fixed in advance, situation disagrees."""
        parts, wholes, compatible = bank_example()
        result = cut_circle(
            parts,
            frozenset({"a_day_fishing"}),
            compatible,
            {"bank": "money_bank", "sat": "wait_indoors"},
        )
        assert result.status is CircleStatus.INCOHERENT

    def test_cut_loses_ambiguity_information(self):
        # with both wholes live, the honest status is AMBIGUOUS; the cut
        # forces determinacy the text does not license
        parts, wholes, compatible = bank_example()
        open_reading = run_circle(parts, wholes, compatible)
        cut_reading = cut_circle(
            parts, wholes, compatible, {"bank": "river_bank", "sat": "rest_outdoors"}
        )
        assert open_reading.status is CircleStatus.AMBIGUOUS
        assert cut_reading.status is CircleStatus.DETERMINATE
        assert cut_reading.wholes < open_reading.wholes
