"""Unit tests for situated interpretation — the trespass scenario (Q5)."""

import pytest

from repro.corpora.trespass import (
    AS_NEWSPAPER_HEADLINE,
    IN_SIGN_SHOP,
    ON_BUILDING_DOOR,
    PROPERTYLESS_READER,
    TRESPASS_TEXT,
    WESTERN_ADULT,
    all_scenarios,
    trespass_interpreter,
)
from repro.hermeneutics import (
    ALGORITHMIC_READER,
    Convention,
    Discourse,
    HermeneuticError,
    Interpreter,
    Reader,
    Situation,
    Text,
    formalization,
    interpretation_drift,
)


class TestScenario:
    def test_on_door_western_adult_reads_a_threat(self):
        interpreter = trespass_interpreter()
        reading = interpreter.interpret(TRESPASS_TEXT, ON_BUILDING_DOOR, WESTERN_ADULT)
        assert reading.speech_act == "threat"
        assert "trespasser_means_the_reader_if_entering" in reading.propositions
        assert "the_threat_is_felt" in reading.propositions

    def test_conventions_chain_in_order(self):
        interpreter = trespass_interpreter()
        reading = interpreter.interpret(TRESPASS_TEXT, ON_BUILDING_DOOR, WESTERN_ADULT)
        fired = list(reading.fired)
        assert fired.index("door sign speaks for the proprietor") < fired.index(
            "trespasser refers to the reader"
        )
        assert fired.index("trespasser refers to the reader") < fired.index(
            "the sign is a threat"
        )

    def test_same_text_in_shop_is_merchandise(self):
        interpreter = trespass_interpreter()
        reading = interpreter.interpret(TRESPASS_TEXT, IN_SIGN_SHOP, WESTERN_ADULT)
        assert reading.speech_act == "display of goods"
        assert "no_one_is_threatened_here" in reading.propositions
        assert "entering_risks_punishment" not in reading.propositions

    def test_same_text_as_headline_is_a_report(self):
        interpreter = trespass_interpreter()
        reading = interpreter.interpret(TRESPASS_TEXT, AS_NEWSPAPER_HEADLINE, WESTERN_ADULT)
        assert reading.speech_act == "report"

    def test_reader_without_property_discourse_misses_the_threat(self):
        interpreter = trespass_interpreter()
        reading = interpreter.interpret(
            TRESPASS_TEXT, ON_BUILDING_DOOR, PROPERTYLESS_READER
        )
        assert reading.speech_act is None
        assert "trespasser_means_the_reader_if_entering" not in reading.propositions

    def test_algorithmic_reader_without_situation_gets_nothing(self):
        interpreter = trespass_interpreter()
        reading = interpreter.interpret(TRESPASS_TEXT, None, ALGORITHMIC_READER)
        assert reading.propositions == frozenset()
        assert reading.speech_acts == frozenset()
        # but the text cues alone matched several conventions: all blocked
        assert len(reading.blocked) > 0

    def test_situated_gap_is_the_papers_point(self):
        interpreter = trespass_interpreter()
        gap = interpreter.situated_gap(TRESPASS_TEXT, ON_BUILDING_DOOR, WESTERN_ADULT)
        assert "entering_risks_punishment" in gap
        assert len(gap) >= 4  # none of the understanding was "in the text"

    def test_interpretations_differ_across_situations(self):
        interpreter = trespass_interpreter()
        door = interpreter.interpret(TRESPASS_TEXT, ON_BUILDING_DOOR, WESTERN_ADULT)
        shop = interpreter.interpret(TRESPASS_TEXT, IN_SIGN_SHOP, WESTERN_ADULT)
        assert not door.agrees_with(shop)


class TestRecoding:
    def test_ontological_recoding_drifts(self):
        interpreter = trespass_interpreter()
        # normalize the sign into a controlled vocabulary, dropping the
        # material features (medium, dating) as 'irrelevant'
        recode = formalization(
            "forall x. trespasses(x) -> prosecuted(x)",
            kept=["speech"],
        )
        report = interpretation_drift(
            interpreter, TRESPASS_TEXT, recode(TRESPASS_TEXT), all_scenarios()
        )
        assert not report.meaning_preserved
        assert report.drift > 0
        # the drift happens exactly where the dropped features mattered
        assert ("on a building door", "western adult") in report.divergent

    def test_identity_recoding_preserves_meaning(self):
        interpreter = trespass_interpreter()
        report = interpretation_drift(
            interpreter, TRESPASS_TEXT, TRESPASS_TEXT, all_scenarios()
        )
        assert report.meaning_preserved
        assert report.drift == 0.0


class TestMachinery:
    def test_duplicate_convention_names_rejected(self):
        c = Convention(
            name="dup",
            discourse="d",
            yields=frozenset({"p"}),
        )
        d1 = Discourse("d", (c,))
        with pytest.raises(HermeneuticError):
            Interpreter([d1, d1])

    def test_vacuous_convention_rejected(self):
        with pytest.raises(HermeneuticError):
            Convention(name="empty", discourse="d")

    def test_discourse_name_mismatch_rejected(self):
        c = Convention(name="c", discourse="other", yields=frozenset({"p"}))
        with pytest.raises(HermeneuticError):
            Discourse("d", (c,))

    def test_text_and_situation_feature_access(self):
        assert TRESPASS_TEXT.has("medium", "durable")
        assert not TRESPASS_TEXT.has("medium", "paper")
        assert ON_BUILDING_DOOR.has("placement", "on_door")

    def test_reader_knows(self):
        assert WESTERN_ADULT.knows("private_property_exists")
        assert not PROPERTYLESS_READER.knows("private_property_exists")

    def test_all_scenarios_cartesian(self):
        # 4 situations × 2 readers
        assert len(all_scenarios()) == 8


class TestFictionScenario:
    def test_same_text_in_a_novel_is_narration(self):
        from repro.corpora import QUOTED_IN_A_NOVEL

        interpreter = trespass_interpreter()
        reading = interpreter.interpret(TRESPASS_TEXT, QUOTED_IN_A_NOVEL, WESTERN_ADULT)
        assert reading.speech_act == "narrated utterance"
        assert "no_actual_prosecution_is_threatened" in reading.propositions
        assert "entering_risks_punishment" not in reading.propositions

    def test_fiction_needs_no_special_background(self):
        from repro.corpora import QUOTED_IN_A_NOVEL
        from repro.hermeneutics import ALGORITHMIC_READER

        interpreter = trespass_interpreter()
        # even the algorithmic reader, given the genre situation, gets the
        # narration reading: the convention requires no background here
        reading = interpreter.interpret(
            TRESPASS_TEXT, QUOTED_IN_A_NOVEL, ALGORITHMIC_READER
        )
        assert reading.speech_act == "narrated utterance"
