"""Quickstart: build an ontonomy, reason over it, and run the critique.

Run:  python examples/quickstart.py
"""

from repro import Atomic, Reasoner, classify, critique, parse_concept, parse_tbox
from repro.corpora import animal_tbox

# ---------------------------------------------------------------------- #
# 1. Write the paper's vehicle ontonomy (structure (4)) in the text syntax
# ---------------------------------------------------------------------- #

tbox = parse_tbox(
    """
    car [= motorvehicle & roadvehicle & some size.small
    pickup [= motorvehicle & roadvehicle & some size.big
    motorvehicle [= some uses.gasoline
    roadvehicle [= >= 4 has.wheel
    """
)
print("The ontonomy:")
print(tbox.pretty())

# ---------------------------------------------------------------------- #
# 2. Reason: satisfiability, subsumption, classification
# ---------------------------------------------------------------------- #

reasoner = Reasoner(tbox)
print("\ncar is satisfiable:", reasoner.is_satisfiable(Atomic("car")))
print(
    "every car uses gasoline:",
    reasoner.subsumes(parse_concept("some uses.gasoline"), Atomic("car")),
)

hierarchy = classify(tbox)
print("\nInferred hierarchy:")
print(hierarchy.pretty())

# ---------------------------------------------------------------------- #
# 3. Critique: the paper's three analyses in one call
# ---------------------------------------------------------------------- #

report = critique(
    tbox,
    label="vehicles (paper structure 4)",
    contrast_tboxes=[("animals (paper structure 8)", animal_tbox())],
)
print()
print(report.render())

print(
    f"\n{len(report.defects())} defects found — the paper's §2 and §3, "
    "reproduced mechanically."
)
