"""An ontology-backed information system — and what it silently does.

The database scenario the paper addresses (EDBT venue): instance data in
an indexed triple store, terminology in a TBox, inference materialized
back into the store.  The example then shows the paper's §4 worry in
vivo: after materialization, the taxonomy's commitments are
indistinguishable from told facts.

Run:  python examples/ontology_backed_store.py
"""

from repro import Pattern, Query, TripleStore, Var, instances_of, materialize, parse_concept
from repro.corpora import vehicle_tbox
from repro.store import save_jsonl, load_jsonl
import tempfile
from pathlib import Path

# ---------------------------------------------------------------------- #
# 1. load instance data
# ---------------------------------------------------------------------- #

store = TripleStore()
store.update(
    [
        ("herbie", "type", "car"),
        ("herbie", "color", "pearl_white"),
        ("bigfoot", "type", "pickup"),
        ("delivery_van", "type", "motorvehicle"),
        ("buggy", "type", "roadvehicle"),  # horse-drawn: roadvehicle only
    ]
)
print(f"Loaded {len(store)} told triples.")

# ---------------------------------------------------------------------- #
# 2. plain queries see only told facts
# ---------------------------------------------------------------------- #

x = Var("x")
q_motor = Query([Pattern(x, "type", "motorvehicle")])
print("motorvehicles (told):", q_motor.run(store))

# ---------------------------------------------------------------------- #
# 3. materialize the vehicle TBox
# ---------------------------------------------------------------------- #

tbox = vehicle_tbox()
inferred = materialize(store, tbox)
print(f"\nAfter materialization: {len(inferred)} triples "
      f"({len(inferred) - len(store)} inferred).")
print("motorvehicles (entailed):", q_motor.run(inferred))

print(
    "\nComplex query — things that use gasoline:",
    instances_of(store, tbox, parse_concept("some uses.gasoline")),
)

# ---------------------------------------------------------------------- #
# 4. persistence round trip
# ---------------------------------------------------------------------- #

with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "fleet.jsonl"
    save_jsonl(inferred, path)
    reloaded = load_jsonl(path)
    print(f"\nRound-tripped {len(reloaded)} triples through {path.name}.")

# ---------------------------------------------------------------------- #
# 5. the paper's §4 point, in the data
# ---------------------------------------------------------------------- #

told = {tuple(t) for t in store}
for triple in sorted({tuple(t) for t in inferred} - told):
    print(f"  inferred and returned by every query: {triple}")
print(
    "\nEvery taxonomy choice in the TBox is now a 'fact' every query returns —\n"
    "'the terms and taxonomies that [computers] impose tend to become strong norms'."
)

# The library's mitigation: materialize() tags inferences, and provenance
# can be asked for explicitly — though no plain pattern query ever shows it.
s, p, o = "herbie", "type", "motorvehicle"
print(
    f"\nprovenance({s}, {p}, {o}) = {inferred.provenance(s, p, o)!r} "
    f"(vs {inferred.provenance('herbie', 'type', 'car')!r} for the told fact)"
)
