"""Semantic fields: doorknobs, adjectives of old age, and Husserl.

Reproduces the paper's two lexical schemas (§3) from data — the
doorknob/pomello overlap and the Italian/Spanish/French old-age adjective
table — and measures the translation losses that refute extent-atomism.

Run:  python examples/semantic_fields.py
"""

from repro.corpora import (
    age_lexicalizations,
    english_door,
    italian_door,
)
from repro.core import imposition_report
from repro.semiotics import (
    correspondence_table,
    designation_confusion,
    husserl_example,
    overlap_matrix,
    partial_overlaps,
    render_table,
    translation_report,
)

# ---------------------------------------------------------------------- #
# T1: the doorknob schema
# ---------------------------------------------------------------------- #

english, italian = english_door(), italian_door()
print("T1 — the doorknob/pomello overlap matrix (|shared field points|):")
matrix = overlap_matrix(english, italian)
terms_it = italian.terms
print(f"{'':>14}" + "".join(f"{t:>12}" for t in terms_it))
for te in english.terms:
    row = "".join(f"{matrix[(te, ti)]:>12}" for ti in terms_it)
    print(f"{te:>14}" + row)

print("\nProper overlaps (the configurations atomism cannot explain):")
for term_a, term_b, shared in partial_overlaps(english, italian):
    print(f"  {term_a} / {term_b}: share {sorted(shared)}")

report = translation_report(english, italian)
print(f"\nTranslating English → Italian: mean distortion {report.mean_distortion:.2f}")
for term, distortion in report.distortion:
    print(f"  {term:<12} → distortion {distortion:.2f}")

# ---------------------------------------------------------------------- #
# T2: the old-age adjective table
# ---------------------------------------------------------------------- #

print("\nT2 — adjectives of old age, recomputed from the field data:")
lexs = age_lexicalizations()
rows = correspondence_table(lexs)
print(render_table(rows, [lex.language for lex in lexs]))

print("\nImposition losses (adopting row-language's carving as THE taxonomy):")
for imposed, community, loss in imposition_report(lexs).losses:
    print(f"  {imposed:>8} imposed on {community:<8}: {loss:.0%} of distinctions lost")

# ---------------------------------------------------------------------- #
# Husserl: designation is not signification
# ---------------------------------------------------------------------- #

winner, loser = husserl_example()
print(f"\n{winner} and {loser}:")
print(f"  same designatum:     {winner.designatum!r} == {loser.designatum!r}")
print(f"  same signification:  False (different sense structures)")
print(
    "  counterexample to 'A means B iff A designates B':",
    designation_confusion(winner, loser),
)

# ---------------------------------------------------------------------- #
# the standalone field critique
# ---------------------------------------------------------------------- #

from repro.core import critique_fields

print()
print(critique_fields(lexs, label="adjectives of old age").render())
