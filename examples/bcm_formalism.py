"""The one rigorous definition, end to end: Bench-Capon & Malcolm.

Builds the paper's Definition 1 stack from the bottom: an order-sorted
equational theory, its initial algebra as the data domain, a class
hierarchy, an attribute family satisfying A_{c′,e} ⊆ A_{c,e′}, an
ontonomy (Σ, A), and a finite model checked against the axioms — then
shows the two things the paper says about all this: membership is
decidable, and the formalism is a type system for monocriterial
taxonomies.

Run:  python examples/bcm_formalism.py
"""

from repro.order import Poset
from repro.osa import (
    AttributeValueAxiom,
    CoverageAxiom,
    DataDomain,
    DisjointAxiom,
    Equation,
    EquationalTheory,
    OntologySignature,
    Ontonomy,
    OpDecl,
    OrderSortedSignature,
    OSApp,
    SignatureModel,
    constant,
    is_ontology_signature,
    is_ontonomy,
    term_algebra,
)

# ---------------------------------------------------------------------- #
# 1. an order-sorted equational theory T and its initial algebra D
# ---------------------------------------------------------------------- #

sizes = OrderSortedSignature(
    Poset(["Size"], []),
    [
        OpDecl("small", (), "Size"),
        OpDecl("big", (), "Size"),
        OpDecl("opposite", ("Size",), "Size"),
    ],
)
theory = EquationalTheory(
    sizes,
    [
        Equation(OSApp("opposite", (constant("small"),)), constant("big")),
        Equation(OSApp("opposite", (constant("big"),)), constant("small")),
    ],
)
algebra = term_algebra(theory)
domain = DataDomain(theory, algebra)
print("Data domain (T, D): carriers =", {s: sorted(map(str, c)) for s, c in algebra.carriers.items()})

# ---------------------------------------------------------------------- #
# 2. the class hierarchy C and attribute family A (Definition 1)
# ---------------------------------------------------------------------- #

classes = Poset(
    ["car", "pickup", "motorvehicle", "roadvehicle"],
    [
        ("car", "motorvehicle"),
        ("car", "roadvehicle"),
        ("pickup", "motorvehicle"),
        ("pickup", "roadvehicle"),
    ],
)
attributes = {(c, "Size"): {"size"} for c in classes.elements}
signature = OntologySignature(domain, classes, attributes)
print("\nOntology signature (D, C, A) built; family condition verified.")
print("Decidable membership:")
print("  the real triple:", is_ontology_signature(domain, classes, attributes))
print("  a grocery list: ", is_ontology_signature("milk, bread", classes, attributes))

# ---------------------------------------------------------------------- #
# 3. the ontonomy (Σ, A) and a model
# ---------------------------------------------------------------------- #

onto = Ontonomy(
    signature,
    [
        DisjointAxiom("car", "pickup"),
        CoverageAxiom("motorvehicle", ("car", "pickup")),
        AttributeValueAxiom("car", "size", frozenset({constant("small")})),
    ],
)
print("\nOntonomy:", is_ontonomy(onto), "| axioms:")
for axiom in onto.axioms:
    print("  ", axiom)

small, big = constant("small"), constant("big")
fleet = SignatureModel(
    signature,
    {
        "car": ["herbie"],
        "pickup": ["bigfoot"],
        "motorvehicle": ["herbie", "bigfoot"],
        "roadvehicle": ["herbie", "bigfoot"],
    },
    {
        ("car", "size"): {"herbie": small},
        ("pickup", "size"): {"bigfoot": big},
        ("motorvehicle", "size"): {"herbie": small, "bigfoot": big},
        ("roadvehicle", "size"): {"herbie": small, "bigfoot": big},
    },
)
print("\nfleet is a model of the ontonomy:", onto.is_model(fleet))

# ---------------------------------------------------------------------- #
# 4. the paper's verdict, measured
# ---------------------------------------------------------------------- #

profile = signature.expressiveness_profile()
print("\nExpressiveness profile:", profile)
print(
    "The only primitive inter-class relation is ≤ "
    f"({profile['subclass_links']} links); everything else is "
    f"{profile['attribute_declarations']} typed attributes — a rigorous "
    "type system for monocriterial taxonomies, exactly as the paper says."
)
