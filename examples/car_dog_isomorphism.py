"""The paper's central reductio, step by step: CAR = DOG.

Reproduces §3, structures (4)–(11): extract definition graphs, anonymize
them (structure (7)), exhibit the isomorphism with the animal ontonomy
(structure (8)), apply the repair (9)–(11), and run the regress — after
every repair a confusable rival exists.

Run:  python examples/car_dog_isomorphism.py
"""

from repro import meaning_isomorphic, structural_meaning
from repro.core import confusable_sibling, differentiation_regress
from repro.corpora import animal_tbox, repaired_animal_tbox, vehicle_tbox
from repro.dl import definition_graph, parse_axiom

vehicles = vehicle_tbox()
animals = animal_tbox()

print("Structure (4), the vehicle ontonomy:")
print(vehicles.pretty())
print("\nStructure (8), the animal ontonomy:")
print(animals.pretty())

# ---------------------------------------------------------------------- #
# the definition graphs and structure (7)
# ---------------------------------------------------------------------- #

g_vehicles = definition_graph(vehicles)
g_animals = definition_graph(animals)
print(
    f"\nDefinition graphs: {len(g_vehicles)} nodes / {g_vehicles.edge_count()} edges"
    f"  vs  {len(g_animals)} nodes / {g_animals.edge_count()} edges"
)

meaning_of_car = structural_meaning(vehicles, "car").anonymized()
print(
    "\nStructure (7) — the anonymized meaning of 'car': "
    f"{len(meaning_of_car)} dots, {meaning_of_car.edge_count()} arrows"
)

# ---------------------------------------------------------------------- #
# the isomorphism: CAR = DOG
# ---------------------------------------------------------------------- #

result = meaning_isomorphic(g_vehicles, g_animals)
assert result is not None, "the paper's isomorphism must exist"
node_map, role_map = result
print("\nThe graphs are isomorphic. Concept correspondence:")
for source, target in sorted(node_map.items()):
    print(f"  {source:<14} ↦ {target}")
print("Role correspondence:")
for source, target in sorted(role_map.items()):
    print(f"  {source:<14} ↦ {target}")
print(
    "\nIf meaning is structure, then CAR is DOG — 'and I expect quite a few "
    "people to object to this identification on ground of affection either "
    "toward their poodle or toward their BMW'."
)

# ---------------------------------------------------------------------- #
# the repair (9)-(11) and the regress
# ---------------------------------------------------------------------- #

repaired = repaired_animal_tbox()
print("\nAfter the repair (quadruped ⊑ animal):")
print(repaired.pretty())
broken = meaning_isomorphic(definition_graph(vehicles), definition_graph(repaired))
print("isomorphic with the vehicles now?", broken is not None)

print("\n'The question is: when can we stop? The answer is that we can't:'")
repairs = [
    [parse_axiom("quadruped [= animal")],
    [parse_axiom("dog [= some emits.bark")],
    [parse_axiom("horse [= some emits.neigh")],
    [parse_axiom("dog [= some chases.cat")],
]
for step in differentiation_regress(animals, "dog", repairs):
    print(f"  {step}")

sibling, names, _ = confusable_sibling(animals.extended([a for r in repairs for a in r]))
print(
    f"\nEven the fully repaired ontonomy has a structural twin "
    f"(e.g. dog ≡ {names['dog']}); adding predicates moves the boundary, "
    "it never closes it."
)
