"""Guarino's framework, built and then critiqued.

Reproduces §2: the intensional relation of eqs. (1)–(3) over a block
world, the approximation metric hiding inside 'approximates', the
circularity of the construction, and the over-breadth exhibits (the
grocery list qualifies as an ontonomy).

Run:  python examples/guarino_worlds.py
"""

from repro.intensional import (
    IntensionalRelation,
    OntologicalCommitment,
    approximation_report,
    blocks_world_space,
    guarino_circularity,
    kripke_circularity,
    paper_exhibits,
    paper_world,
    qualifies,
)
from repro.logic import Atom, FNot, Forall, TVar, Vocabulary

# ---------------------------------------------------------------------- #
# F1: eqs. (1)-(3)
# ---------------------------------------------------------------------- #

w = paper_world()
print("Eq. (1), the extensional relation in the paper's configuration:")
print(f"  [above] = {sorted(w.relation('above'))}")

space = blocks_world_space(("a", "b", "c"))
print(f"\nEq. (2): a world space of {len(space)} legal configurations of 3 blocks")
above = IntensionalRelation.from_predicate("above", 2, space)
sample = space.names()[1]
print(f"Eq. (3): in world {sample!r}, [above]({sample}) = {sorted(above.at(sample).tuples)}")
print(f"[above] is rigid across worlds: {above.is_rigid()}")

# ---------------------------------------------------------------------- #
# the 'approximates' metric
# ---------------------------------------------------------------------- #

vocabulary = Vocabulary(constants=frozenset({"a", "b", "c"}), predicates={"above": 2})
commitment = OntologicalCommitment(vocabulary, space, {"above": above})
x = TVar("x")
irreflexivity = Forall("x", FNot(Atom("above", (x, x))))
report = approximation_report([irreflexivity], commitment)
print(
    f"\nAxiom ∀x.¬above(x,x) against the commitment: "
    f"recall {report.recall:.0%}, precision {report.precision:.2%} "
    f"({report.admitted} unintended models admitted)"
)
print("Guarino's test needs only ONE captured model — the bar is on the floor.")

# ---------------------------------------------------------------------- #
# Q2: the circularity
# ---------------------------------------------------------------------- #

print("\n" + guarino_circularity().explain())
print("\nControl — Kripke's arrangement of the same notions:")
print(kripke_circularity().explain())

# ---------------------------------------------------------------------- #
# Q3: the over-breadth exhibits
# ---------------------------------------------------------------------- #

print("\nWhat qualifies as an ontonomy under 'admits a model'?")
for candidate in paper_exhibits():
    verdict = "ontonomy" if qualifies(candidate) else "rejected"
    print(f"  {candidate.title:<18} {verdict:<10} ({candidate.description})")
