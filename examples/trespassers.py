"""'Trespassers will be prosecuted': meaning needs situation and reader.

Reproduces the paper's §3 hermeneutic analysis: the same sign is a threat
on a door, merchandise on a shop shelf, and a news item on a front page;
a reader without the property discourse cannot read the threat at all;
and an 'ontological re-coding' of the sign changes what readers get.

Run:  python examples/trespassers.py
"""

from repro.corpora import (
    AS_NEWSPAPER_HEADLINE,
    IN_SIGN_SHOP,
    ON_BUILDING_DOOR,
    PROPERTYLESS_READER,
    TRESPASS_TEXT,
    WESTERN_ADULT,
    all_scenarios,
    trespass_interpreter,
)
from repro.hermeneutics import (
    ALGORITHMIC_READER,
    CircleStatus,
    cut_circle,
    formalization,
    interpretation_drift,
    run_circle,
)

interpreter = trespass_interpreter()
print(f"The text: {TRESPASS_TEXT}")
print(f"In-text features only: {sorted(TRESPASS_TEXT.features)}\n")

# ---------------------------------------------------------------------- #
# the same text across situations and readers
# ---------------------------------------------------------------------- #

for situation in (ON_BUILDING_DOOR, IN_SIGN_SHOP, AS_NEWSPAPER_HEADLINE):
    reading = interpreter.interpret(TRESPASS_TEXT, situation, WESTERN_ADULT)
    print(f"{situation.name}:")
    print(f"  speech act: {reading.speech_act or '(indeterminate)'}")
    for proposition in sorted(reading.propositions):
        print(f"    {proposition}")

reading = interpreter.interpret(TRESPASS_TEXT, ON_BUILDING_DOOR, PROPERTYLESS_READER)
print(f"\n{PROPERTYLESS_READER.name}, on the door:")
print(f"  speech act: {reading.speech_act or '(indeterminate)'}")
print(f"  derived: {sorted(reading.propositions) or '(nothing)'}")

bare = interpreter.interpret(TRESPASS_TEXT, None, ALGORITHMIC_READER)
gap = interpreter.situated_gap(TRESPASS_TEXT, ON_BUILDING_DOOR, WESTERN_ADULT)
print(
    f"\nText-only algorithmic reading: {len(bare.propositions)} propositions; "
    f"situated reading adds {len(gap)}: none of the understanding was in the text."
)

# ---------------------------------------------------------------------- #
# re-coding drift
# ---------------------------------------------------------------------- #

recode = formalization("forall x. trespasses(x) -> prosecuted(x)", kept=["speech"])
drift = interpretation_drift(
    interpreter, TRESPASS_TEXT, recode(TRESPASS_TEXT), all_scenarios()
)
print(
    f"\nRe-coding the sign into a controlled vocabulary: interpretation "
    f"changes in {drift.drift:.0%} of (situation, reader) scenarios:"
)
for situation_name, reader_name in drift.divergent:
    print(f"  {situation_name} / {reader_name}")

# ---------------------------------------------------------------------- #
# the hermeneutic circle, and ontology's cut
# ---------------------------------------------------------------------- #

parts = {
    "trespassers": frozenset({"you_the_reader", "trespassers_in_general"}),
    "will_be_prosecuted": frozenset({"a_threat_to_you", "a_reported_fact"}),
}
wholes = frozenset({"warning_sign", "news_item"})

def compatible(whole, part, sense):
    table = {
        ("warning_sign", "trespassers", "you_the_reader"): True,
        ("warning_sign", "will_be_prosecuted", "a_threat_to_you"): True,
        ("news_item", "trespassers", "trespassers_in_general"): True,
        ("news_item", "will_be_prosecuted", "a_reported_fact"): True,
    }
    return table.get((whole, part, sense), False)

open_reading = run_circle(parts, wholes, compatible)
print(f"\nHermeneutic circle with no situation: {open_reading.status.value}")

door_reading = run_circle(parts, frozenset({"warning_sign"}), compatible)
print(f"With the door situation selecting the whole: {door_reading.status.value}")
print(f"  'trespassers' settles to: {door_reading.sense_of('trespassers')}")

bad_cut = cut_circle(
    parts,
    frozenset({"warning_sign"}),
    compatible,
    {"trespassers": "trespassers_in_general", "will_be_prosecuted": "a_reported_fact"},
)
print(
    f"Ontology's cut (senses codified for the news reading, sign on a door): "
    f"{bad_cut.status.value} — the codified meaning cannot reach this situation."
)
