"""Rigidity analysis: what the intensional machinery CAN do.

Once worlds are given extensionally (the paper's point is that Guarino's
framework cannot conjure them from intensions), modal metaproperties
become computable.  This example classifies properties of a small
person/student/employee world space as rigid/anti-rigid and runs the
OntoClean backbone check on two candidate taxonomies — catching the
classic ``person ⊑ student`` modelling error mechanically.

Run:  python examples/ontoclean_rigidity.py
"""

from repro.core import critique
from repro.dl import parse_tbox
from repro.intensional import (
    IntensionalRelation,
    World,
    WorldSpace,
    check_taxonomy,
    rigidity_profile,
)
from repro.logic import Structure

# ---------------------------------------------------------------------- #
# 1. a world space: three years in the lives of alice, bob and carol
# ---------------------------------------------------------------------- #

PEOPLE = ["alice", "bob", "carol"]


def year(name: str, students, employees) -> World:
    return World(
        name,
        Structure(
            PEOPLE,
            relations={
                "person": [(p,) for p in PEOPLE],
                "student": [(s,) for s in students],
                "employee": [(e,) for e in employees],
            },
        ),
    )


space = WorldSpace(
    [
        year("2004", students=["alice", "bob"], employees=["carol"]),
        year("2005", students=["alice"], employees=["bob", "carol"]),
        year("2006", students=[], employees=["alice", "bob", "carol"]),
    ]
)

# ---------------------------------------------------------------------- #
# 2. lift the predicates and classify their rigidity
# ---------------------------------------------------------------------- #

properties = [
    IntensionalRelation.from_predicate(name, 1, space)
    for name in ("person", "student", "employee")
]
profile = rigidity_profile(properties)
print("Rigidity profile over the three-year space:")
for name, rigidity in profile.items():
    print(f"  {name:<10} {rigidity.value}")

# ---------------------------------------------------------------------- #
# 3. the backbone check on two candidate taxonomies
# ---------------------------------------------------------------------- #

good = [("student", "person"), ("employee", "person")]
bad = [("person", "student")]

print("\nTaxonomy A: student ⊑ person, employee ⊑ person")
violations = check_taxonomy(profile, good)
print("  violations:", violations or "none — rigid properties sit at the top")

print("\nTaxonomy B: person ⊑ student (everyone is enrolled, surely?)")
for violation in check_taxonomy(profile, bad):
    print(f"  ✗ {violation}")

# ---------------------------------------------------------------------- #
# 4. the same check inside the critique engine
# ---------------------------------------------------------------------- #

tbox = parse_tbox("person [= student")
report = critique(
    tbox,
    label="campus ontology (taxonomy B)",
    rigidity=profile,
    include_discipline_findings=False,
)
print()
print(report.render())
