#!/usr/bin/env python
"""CI smoke test: the multi-worker serving mode survives a worker kill.

Boots ``python -m repro serve --workers 2`` as a real subprocess, then:

* routes named checks through the pool and verifies the health block
  (2 workers up, fork/spawn start method, zero version skew);
* starts a background mixed load from several keep-alive threads;
* SIGKILLs one worker pid (taken from ``/v1/health``) **mid-load** and
  asserts that

  - no in-flight or subsequent request is lost — every response across
    the kill is a 200 (the front retries a dying worker's proxies on
    its sibling, so acked requests never evaporate),
  - the front's supervisor restarts the dead worker and the pool
    returns to 2-up with a fresh pid at the current TBox version;

* hot-swaps the TBox mid-load and checks the new version is visible
  with zero per-worker skew, and that the aggregated ``/v1/metrics``
  merges worker recorders (proxied counters present).

Exits non-zero (with a message) on any violated expectation.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

TBOX_V1 = """
car [= motorvehicle & some size.small
pickup [= motorvehicle & some size.big
motorvehicle [= some uses.gasoline
"""

TBOX_V2 = TBOX_V1 + "\nvan [= motorvehicle & some size.big\n"

SERVE_FLAGS = ["--port", "0", "--workers", "2", "--soft-limit", "8"]


def fail(message):
    print(f"worker_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        return response.status, (json.loads(raw) if raw else {})
    finally:
        conn.close()


def worker_block(port):
    status, body = request(port, "GET", "/v1/health")
    if status != 200 or body.get("status") != "ok":
        fail(f"health not green: {status} {body}")
    block = body.get("workers")
    if not block:
        fail(f"health carries no workers block: {body}")
    return block


def wait_for(probe, what, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if probe():
                return
        except OSError:
            pass
        time.sleep(0.05)
    fail(f"timed out waiting for {what}")


def main():
    with tempfile.NamedTemporaryFile(
        "w", suffix=".tbox", delete=False, encoding="utf-8"
    ) as handle:
        handle.write(TBOX_V1)
        tbox_path = handle.name

    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    env.pop("REPRO_FAULTS", None)  # this smoke measures routing, not faults
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--tbox", tbox_path, *SERVE_FLAGS],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO,
    )
    try:
        port = None
        for _ in range(20):
            line = proc.stdout.readline()
            if not line:
                break
            match = re.search(r"serving .* on http://[\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            fail("no address in server banner")
        print(f"worker_smoke: front up on port {port}")

        # 1. the pool is up and routing
        block = worker_block(port)
        if block["count"] != 2 or block["up"] != 2:
            fail(f"pool not 2-up: {block}")
        if block["max_version_skew"] != 0:
            fail(f"boot-time version skew: {block}")
        status, body = request(
            port,
            "POST",
            "/v1/subsumes",
            {"general": "motorvehicle", "specific": "car"},
        )
        if (status, body.get("answer")) != (200, True):
            fail(f"routed subsumption: {status} {body}")

        # 2. background mixed load over keep-alive connections
        statuses = {}
        errors = []
        stop = threading.Event()
        lock = threading.Lock()

        def hammer():
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
            try:
                while not stop.is_set():
                    conn.request(
                        "POST",
                        "/v1/subsumes",
                        body=json.dumps(
                            {"general": "motorvehicle", "specific": "pickup"}
                        ),
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    response.read()
                    with lock:
                        statuses[response.status] = (
                            statuses.get(response.status, 0) + 1
                        )
            except OSError as exc:
                with lock:
                    errors.append(f"{type(exc).__name__}: {exc}")
            finally:
                conn.close()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        wait_for(
            lambda: sum(statuses.values()) >= 20, "load to ramp up"
        )

        # 3. SIGKILL one worker mid-load: zero lost acked requests
        victim = worker_block(port)["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        print(f"worker_smoke: killed worker pid {victim} mid-load")
        wait_for(
            lambda: (
                lambda b: b["up"] == 2
                and b["restarts"] >= 1
                and b["max_version_skew"] == 0
            )(worker_block(port)),
            "supervisor to restart the dead worker",
        )
        if victim in {w["pid"] for w in worker_block(port)["workers"]}:
            fail("dead worker pid still in the pool")

        # 4. hot swap mid-load: applied once, visible pool-wide
        status, body = request(port, "POST", "/v1/tbox", {"tbox": TBOX_V2})
        if status != 200 or body.get("tbox_version") != 2:
            fail(f"hot swap: {status} {body}")
        wait_for(
            lambda: worker_block(port)["max_version_skew"] == 0,
            "swap propagation to every worker",
        )
        status, body = request(
            port,
            "POST",
            "/v1/subsumes",
            {"general": "motorvehicle", "specific": "van"},
        )
        if (status, body.get("answer"), body.get("tbox_version")) != (
            200,
            True,
            2,
        ):
            fail(f"post-swap subsumption: {status} {body}")

        # wind the load down and audit every response across the kill
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        if errors:
            fail(f"load thread errors across the kill: {errors[:3]}")
        if set(statuses) != {200}:
            fail(f"non-200 responses across the kill: {statuses}")
        served = sum(statuses.values())
        print(f"worker_smoke: {served} requests across the kill, all 200")

        # 5. aggregated metrics merge worker recorders
        status, body = request(port, "GET", "/v1/metrics")
        counters = body.get("metrics", {}).get("counters", {})
        if status != 200 or counters.get("workers.proxied", 0) < served:
            fail(f"aggregated metrics: {status} {counters}")
        if counters.get("workers.deaths", 0) < 1:
            fail(f"worker death not counted: {counters}")
        if body.get("serve", {}).get("workers", {}).get("up") != 2:
            fail(f"metrics workers block: {body.get('serve')}")

        print("worker_smoke: OK")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=15)
        os.unlink(tbox_path)


if __name__ == "__main__":
    start = time.perf_counter()
    main()
    print(f"worker_smoke: done in {time.perf_counter() - start:.2f}s")
