#!/bin/sh
# Tier-1 tests plus a bench smoke pass (same as `make check`).
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== bench smoke (assertions only, timing disabled) =="
python -m pytest benchmarks/ --benchmark-disable -q
