#!/usr/bin/env python
"""CI smoke test: kill-and-recover with zero lost acknowledged edits.

Boots ``python -m repro serve`` as a real subprocess with ``--edit-log``
and a deliberately huge ``--min-swap-interval-ms``, streams TBox edits
at it (every one is acknowledged 200 with a ``deferred``/``coalesced``
status but, thanks to the throttle, *never published* before the
crash), then SIGKILLs the process mid-swap — the acknowledged edits
exist nowhere but the durable edit log.  A restarted server on the
same log directory must:

* print a recovery banner naming the recovered version;
* report the last *acknowledged* version from ``/v1/health``;
* answer ``/v1/classify`` with exactly the hierarchy of the last
  acknowledged TBox (computed independently in this process);
* expose the recovery in ``/v1/metrics`` (``editlog.recovered``).

Run it twice in CI: once clean, once with ``REPRO_FAULTS=torn-write``
so every edit-log append tears on its first attempt and is recovered
before the 200 is returned — durability must hold either way.  Exits
non-zero (with a message) on any violated expectation.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.dl import Reasoner, parse_tbox  # noqa: E402

BOOT_TBOX = """
car [= motorvehicle & some size.small
pickup [= motorvehicle & some size.big
motorvehicle [= some uses.gasoline
"""

#: each edit is a full TBox text; later edits coalesce earlier ones
EDITS = [
    BOOT_TBOX + "van [= motorvehicle\n",
    BOOT_TBOX + "van [= motorvehicle\nbus [= motorvehicle\n",
    BOOT_TBOX + "van [= motorvehicle\nbus [= motorvehicle\ntruck [= motorvehicle\n",
]

#: ten minutes: no edit is ever published before the kill
THROTTLE_MS = "600000"

faults_armed = bool(os.environ.get("REPRO_FAULTS"))


def fail(message):
    print(f"recover_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        return response.status, (json.loads(raw) if raw else {})
    finally:
        conn.close()


def spawn(tbox_path, log_dir):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--tbox",
            tbox_path,
            "--port",
            "0",
            "--edit-log",
            log_dir,
            "--min-swap-interval-ms",
            THROTTLE_MS,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO,
    )
    port = None
    banner_lines = []
    for _ in range(20):
        line = proc.stdout.readline()
        if not line:
            break
        banner_lines.append(line.rstrip("\n"))
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        fail(f"no address in server banner: {banner_lines!r}")
    return proc, port, banner_lines


def terminate(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=15)


def main():
    with tempfile.NamedTemporaryFile(
        "w", suffix=".tbox", delete=False, encoding="utf-8"
    ) as handle:
        handle.write(BOOT_TBOX)
        tbox_path = handle.name
    log_dir = tempfile.mkdtemp(prefix="recover_smoke_editlog_")

    # ---- phase 1: stream edits, then SIGKILL with all of them pending
    proc, port, _banner = spawn(tbox_path, log_dir)
    try:
        print(
            f"recover_smoke: server up on port {port} "
            f"(faults_armed={faults_armed})"
        )
        acked = 1
        for index, text in enumerate(EDITS):
            status, body = request(port, "POST", "/v1/tbox", {"tbox": text})
            if status != 200:
                fail(f"edit {index}: {status} {body}")
            if body.get("swap_status") not in {"deferred", "coalesced"}:
                fail(f"edit {index} should be throttled, got: {body}")
            acked = body["tbox_version"]
        if acked != 1 + len(EDITS):
            fail(f"acknowledged version {acked}, want {1 + len(EDITS)}")
        status, health = request(port, "GET", "/v1/health")
        if health.get("tbox_version") != 1 or not health.get("pending_swap"):
            fail(f"pre-kill health should still serve v1 pending a swap: {health}")
        if faults_armed:
            # the counter lives in the process doing the appends: check
            # it here, before the kill wipes the in-memory recorder
            # (env-armed faults fire on a schedule, so >= 1, not == all)
            status, metrics = request(port, "GET", "/v1/metrics")
            counters = metrics.get("metrics", {}).get("counters", {})
            torn = counters.get("editlog.torn_writes_recovered", 0)
            if torn < 1:
                fail(f"armed torn-write never tore an append: {counters}")
        print(f"recover_smoke: {len(EDITS)} edit(s) acked through v{acked}, killing")
    finally:
        # the crash: no flush, no shutdown hook, mid-pending-swap
        proc.kill()
        proc.wait(timeout=15)

    # ---- phase 2: restart on the same log; the acks must all be there
    proc, port, banner = spawn(tbox_path, log_dir)
    try:
        recovery_lines = [line for line in banner if "recovered edit log" in line]
        if not recovery_lines:
            fail(f"no recovery banner after restart: {banner!r}")
        if f"v{acked}" not in recovery_lines[0]:
            fail(f"recovery banner names wrong version: {recovery_lines[0]!r}")
        status, health = request(port, "GET", "/v1/health")
        if (status, health.get("tbox_version")) != (200, acked):
            fail(f"recovered health: {status} {health}")

        status, body = request(port, "POST", "/v1/classify", {})
        expected = Reasoner(parse_tbox(EDITS[-1])).classify()
        want = sorted(sorted(group) for group in expected.groups())
        if status != 200 or body.get("groups") != want:
            fail(f"recovered hierarchy differs: {status} {body.get('groups')}")

        status, metrics = request(port, "GET", "/v1/metrics")
        stats = metrics.get("serve", {}).get("editlog", {})
        recovered = stats.get("recovered") or {}
        if recovered.get("fresh") is not False:
            fail(f"metrics do not report a replay recovery: {stats}")
        if recovered.get("replayed", 0) < 1:
            fail(f"recovery replayed no records: {stats}")
        print(
            f"recover_smoke: OK (recovered v{acked}, "
            f"replayed {recovered.get('replayed')} record(s), "
            f"torn {recovered.get('torn')})"
        )
    finally:
        terminate(proc)
        os.unlink(tbox_path)


if __name__ == "__main__":
    start = time.perf_counter()
    main()
    print(f"recover_smoke: done in {time.perf_counter() - start:.2f}s")
