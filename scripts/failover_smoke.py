#!/usr/bin/env python
"""CI smoke test: warm-standby failover with zero lost acknowledged edits.

Boots a primary ``python -m repro serve`` with ``--edit-log``, then a
follower on ``--follow`` pointed at it, and streams TBox edits at the
primary.  Once the follower reports having applied every acknowledged
record, the primary is SIGKILLed mid-flight — the acknowledged edits
exist nowhere reachable but the two edit logs.  The smoke then:

* promotes the follower via ``POST /v1/promote`` and checks the
  promotion response names the exact last acknowledged version
  (``lost acked edits == 0``);
* queries ``/v1/classify`` on the new primary and compares it against
  the hierarchy of the last acknowledged TBox, computed independently
  in this process;
* writes one post-promotion edit and requires it to land at
  ``acked + 1``;
* resurrects the dead ex-primary on its original port and requires it
  to come back *fenced*: writes refused with 503 and a ``primary``
  pointer at the promoted follower.

Run it twice in CI: once clean, once with ``REPRO_FAULTS=torn-write``
(appends tear on both logs and must be recovered before any ack) —
failover must lose nothing either way.  Exits non-zero with a message
on any violated expectation.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.dl import Reasoner, parse_tbox  # noqa: E402

BOOT_TBOX = """
car [= motorvehicle & some size.small
pickup [= motorvehicle & some size.big
motorvehicle [= some uses.gasoline
"""

#: each edit is a full TBox text; later edits coalesce earlier ones
EDITS = [
    BOOT_TBOX + "van [= motorvehicle\n",
    BOOT_TBOX + "van [= motorvehicle\nbus [= motorvehicle\n",
    BOOT_TBOX + "van [= motorvehicle\nbus [= motorvehicle\ntruck [= motorvehicle\n",
]

POST_PROMOTION_EDIT = EDITS[-1] + "tractor [= motorvehicle\n"

faults_armed = bool(os.environ.get("REPRO_FAULTS"))


def fail(message):
    print(f"failover_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        return response.status, (json.loads(raw) if raw else {})
    finally:
        conn.close()


def spawn(args):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO,
    )
    port = None
    banner_lines = []
    for _ in range(20):
        line = proc.stdout.readline()
        if not line:
            break
        banner_lines.append(line.rstrip("\n"))
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        fail(f"no address in server banner: {banner_lines!r}")
    return proc, port, banner_lines


def terminate(proc):
    if proc.poll() is not None:
        return
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=15)


def wait_until(predicate, what, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if predicate():
                return
        except OSError:
            pass
        time.sleep(0.05)
    fail(f"timed out waiting for {what}")


def main():
    with tempfile.NamedTemporaryFile(
        "w", suffix=".tbox", delete=False, encoding="utf-8"
    ) as handle:
        handle.write(BOOT_TBOX)
        tbox_path = handle.name
    primary_log = tempfile.mkdtemp(prefix="failover_smoke_primary_")
    follower_log = tempfile.mkdtemp(prefix="failover_smoke_follower_")

    # ---- phase 1: primary + follower, stream edits, wait for catch-up
    primary, primary_port, _ = spawn(
        ["--tbox", tbox_path, "--edit-log", primary_log]
    )
    follower = None
    try:
        follower, follower_port, _ = spawn(
            [
                "--edit-log",
                follower_log,
                "--follow",
                f"http://127.0.0.1:{primary_port}",
                "--probe-interval-ms",
                "40",
            ]
        )
        print(
            f"failover_smoke: primary on {primary_port}, follower on "
            f"{follower_port} (faults_armed={faults_armed})"
        )
        acked = 1
        for index, text in enumerate(EDITS):
            status, body = request(primary_port, "POST", "/v1/tbox", {"tbox": text})
            if status != 200:
                fail(f"edit {index}: {status} {body}")
            acked = body["tbox_version"]
        if acked != 1 + len(EDITS):
            fail(f"acknowledged version {acked}, want {1 + len(EDITS)}")

        def caught_up():
            status, health = request(follower_port, "GET", "/v1/health")
            repl = health.get("replication") or {}
            return (
                status == 200
                and repl.get("last_applied_version") == acked
                and health.get("tbox_version") == acked
            )

        wait_until(caught_up, f"follower to apply v{acked}")

        # the follower is read-only: writes bounce with the primary URL
        status, refused = request(
            follower_port, "POST", "/v1/tbox", {"tbox": EDITS[-1]}
        )
        if status != 503 or f":{primary_port}" not in (refused.get("primary") or ""):
            fail(f"follower accepted a write: {status} {refused}")
        print(f"failover_smoke: follower caught up through v{acked}, killing primary")
    except BaseException:
        if follower is not None:
            terminate(follower)
        raise
    finally:
        # the crash: SIGKILL, no flush, no shutdown hook
        primary.kill()
        primary.wait(timeout=15)

    # ---- phase 2: promote the follower; nothing acknowledged may vanish
    try:
        status, promoted = request(follower_port, "POST", "/v1/promote")
        if status != 200 or promoted.get("promoted") is not True:
            fail(f"promotion failed: {status} {promoted}")
        if promoted.get("logged_version") != acked:
            fail(
                f"lost acknowledged edits: promoted at "
                f"v{promoted.get('logged_version')}, acked v{acked}"
            )

        status, body = request(follower_port, "POST", "/v1/classify", {})
        expected = Reasoner(parse_tbox(EDITS[-1])).classify()
        want = sorted(sorted(group) for group in expected.groups())
        if status != 200 or body.get("groups") != want:
            fail(f"promoted hierarchy differs: {status} {body.get('groups')}")

        status, body = request(
            follower_port, "POST", "/v1/tbox", {"tbox": POST_PROMOTION_EDIT}
        )
        if status != 200 or body.get("tbox_version") != acked + 1:
            fail(f"post-promotion write: {status} {body}")
        print(f"failover_smoke: promoted at v{acked}, first write landed v{acked + 1}")

        # ---- phase 3: the resurrected ex-primary must come back fenced
        zombie, zombie_port, _ = spawn(
            [
                "--tbox",
                tbox_path,
                "--edit-log",
                primary_log,
                "--port",
                str(primary_port),
            ]
        )
        try:
            def fenced():
                status, health = request(zombie_port, "GET", "/v1/health")
                repl = health.get("replication") or {}
                return status == 200 and repl.get("fenced") is True

            wait_until(fenced, "ex-primary to observe its fence")
            status, refused = request(
                zombie_port, "POST", "/v1/tbox", {"tbox": POST_PROMOTION_EDIT}
            )
            if status != 503 or f":{follower_port}" not in (
                refused.get("primary") or ""
            ):
                fail(f"fenced ex-primary accepted a write: {status} {refused}")
            print(
                f"failover_smoke: OK (0 lost acked edits, ex-primary fenced, "
                f"writes redirected to {refused.get('primary')})"
            )
        finally:
            terminate(zombie)
    finally:
        terminate(follower)
        os.unlink(tbox_path)


if __name__ == "__main__":
    start = time.perf_counter()
    main()
    print(f"failover_smoke: done in {time.perf_counter() - start:.2f}s")
