#!/usr/bin/env python
"""CI smoke test: a real ``python -m repro serve`` process stays healthy.

Boots the serving CLI as a subprocess on an ephemeral port with a
deliberately small node allowance, then drives the mixed traffic the
acceptance criteria call out:

* named subsumption/satisfiability checks (hierarchy path — must be
  definite 200s even with ``REPRO_FAULTS`` armed, because the
  pre-classified hierarchy never consults a budget);
* a budget-exhausting deep query (must degrade to **206 + UNKNOWN**,
  never 5xx);
* a hot TBox swap (``POST /v1/tbox``) with answers checked on both
  sides of the swap;
* a burst of concurrent keep-alive requests;
* health and metrics probes interleaved throughout — ``/v1/health``
  must report ``ok`` after every step.

Run it twice in CI: once clean, once with ``REPRO_FAULTS=deadline`` so
injected deadline faults exercise the degradation path in a real
process.  Exits non-zero (with a message) on any violated expectation.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

TBOX_V1 = """
car [= motorvehicle & some size.small
pickup [= motorvehicle & some size.big
motorvehicle [= some uses.gasoline
"""

TBOX_V2 = "car [= toy\ntoy [= artifact\n"

#: allowance 20 over soft limit 4 = 5 nodes per request: the deep query
#: below needs 13, so it exhausts deterministically (without faults)
SERVE_FLAGS = ["--port", "0", "--node-allowance", "20", "--soft-limit", "4"]

DEEP_QUERY = ">= 12 uses.gasoline"

faults_armed = bool(os.environ.get("REPRO_FAULTS"))


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        return response.status, (json.loads(raw) if raw else {})
    finally:
        conn.close()


def expect_health(port, version):
    status, body = request(port, "GET", "/v1/health")
    if status != 200 or body.get("status") != "ok":
        fail(f"health not green: {status} {body}")
    if body.get("tbox_version") != version:
        fail(f"health reports version {body.get('tbox_version')}, want {version}")


def main():
    with tempfile.NamedTemporaryFile(
        "w", suffix=".tbox", delete=False, encoding="utf-8"
    ) as handle:
        handle.write(TBOX_V1)
        tbox_path = handle.name

    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--tbox", tbox_path, *SERVE_FLAGS],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        if not match:
            fail(f"no address in server banner: {banner!r}")
        port = int(match.group(1))
        print(f"serve_smoke: server up on port {port} (faults_armed={faults_armed})")

        expect_health(port, version=1)

        # 1. named checks: hierarchy-answered, definite even under faults
        status, body = request(
            port,
            "POST",
            "/v1/subsumes",
            {"general": "motorvehicle", "specific": "car"},
        )
        if (status, body.get("answer")) != (200, True):
            fail(f"named subsumption: {status} {body}")
        status, body = request(port, "POST", "/v1/satisfiable", {"concept": "car"})
        if (status, body.get("answer")) != (200, True):
            fail(f"named satisfiability: {status} {body}")

        # 2. tableau-path check: definite normally; an armed fault may
        #    legitimately degrade it to 206, never to 5xx
        status, body = request(
            port, "POST", "/v1/satisfiable", {"concept": "car & ~car"}
        )
        allowed = {200, 206} if faults_armed else {200}
        if status not in allowed:
            fail(f"tableau satisfiability: {status} {body}")

        # 3. the budget-exhausting query: 5-node slice vs a 13-node proof
        status, body = request(
            port, "POST", "/v1/satisfiable", {"concept": DEEP_QUERY}
        )
        if status != 206 or body.get("answer") is not None:
            fail(f"deep query should exhaust to 206/UNKNOWN: {status} {body}")
        if not body.get("reason"):
            fail(f"206 body carries no reason: {body}")
        expect_health(port, version=1)

        # 4. concurrent keep-alive burst of named checks: all definite
        statuses = []
        lock = threading.Lock()

        def burst():
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            try:
                for _ in range(10):
                    conn.request(
                        "POST",
                        "/v1/subsumes",
                        body=json.dumps(
                            {"general": "motorvehicle", "specific": "pickup"}
                        ),
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    response.read()
                    with lock:
                        statuses.append(response.status)
            finally:
                conn.close()

        threads = [threading.Thread(target=burst) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if statuses.count(200) != 40:
            fail(f"concurrent burst: {statuses}")

        # 5. hot TBox swap, then answers from the new snapshot
        status, body = request(port, "POST", "/v1/tbox", {"tbox": TBOX_V2})
        if status != 200 or body.get("tbox_version") != 2:
            fail(f"hot swap: {status} {body}")
        status, body = request(
            port, "POST", "/v1/subsumes", {"general": "toy", "specific": "car"}
        )
        if (status, body.get("answer"), body.get("tbox_version")) != (200, True, 2):
            fail(f"post-swap subsumption: {status} {body}")
        expect_health(port, version=2)

        # 6. metrics reflect everything above
        status, body = request(port, "GET", "/v1/metrics")
        counters = body.get("metrics", {}).get("counters", {})
        if status != 200 or counters.get("serve.tbox_swaps") != 1:
            fail(f"metrics: {status} {counters}")
        fast_path = counters.get("serve.batched_hits", 0) + counters.get(
            "serve.dedup_hits", 0
        )
        if fast_path < 40:  # the 40-request burst never reaches the tableau
            fail(f"hierarchy fast path unused: {counters}")
        if counters.get("serve.internal_errors", 0) != 0:
            fail(f"server logged internal errors: {counters}")

        print("serve_smoke: OK")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=15)
        os.unlink(tbox_path)


if __name__ == "__main__":
    start = time.perf_counter()
    main()
    print(f"serve_smoke: done in {time.perf_counter() - start:.2f}s")
